#!/usr/bin/env python3
"""Raw packet captures: seeing the amplification floods scan tools miss.

The paper warns that loop-amplified Time Exceeded floods are invisible to
scanning tools and "only visible in raw packet captures" (§7).  This
example probes a few looping subnets twice — once through the scanner's
matched-reply view, once writing the raw traffic to a pcap file — and
shows the discrepancy, plus the Appendix C null-route fix an operator
would deploy.

Run:  python examples/raw_capture.py [output.pcap]
"""

import sys

from repro import SimulationEngine, ZMapV6Scanner, build_world, tiny_config
from repro.netsim import capture_scan, read_pcap
from repro.scanner import ScanConfig
from repro.topology import render_null_route_config


def main() -> None:
    pcap_path = sys.argv[1] if len(sys.argv) > 1 else "loops.pcap"
    world = build_world(tiny_config(seed=13))

    # Target the injected loop regions directly (a BGP /48 sweep would
    # find them too — see examples/loop_hunting.py).
    targets = []
    for region in world.loop_regions:
        for index in range(min(4, region.slash48_count())):
            targets.append(region.prefix.network | (index << 80) | 0x1)
    print(f"probing {len(targets)} addresses in looping space (hop limit 64)\n")

    engine = SimulationEngine(world, epoch=0)
    scanner = ZMapV6Scanner(engine, ScanConfig(pps=100, seed=1))
    result = scanner.scan(targets, name="loop-probe")
    print("scan-tool view (matched replies only):")
    print(f"  replies matched : {result.received}")
    print(f"  flood duplicates: {result.flood_packets} (hidden in most tools)")

    counters = capture_scan(
        world, targets, pcap_path, epoch=1, pps=100, max_duplicates=500
    )
    packets = read_pcap(pcap_path)
    print(f"\nraw capture view ({pcap_path}):")
    print(f"  probes written   : {counters['probes']}")
    print(f"  replies written  : {counters['replies']}")
    print(
        f"  flood packets    : {counters['flood_packets']} written, "
        f"{counters['flood_truncated']} truncated at the cap"
    )
    print(f"  total packets    : {len(packets)}")

    amplifying = [
        region
        for region in world.loop_regions
        if world.routers[region.customer_router_id].replication_factor > 1.0
    ]
    if amplifying:
        region = amplifying[0]
        print("\noperator fix for the worst region (Appendix C):")
        print("  Cisco IOS : " + render_null_route_config(region, "cisco"))
        print("  Junos     : " + render_null_route_config(region, "juniper"))


if __name__ == "__main__":
    main()
