#!/usr/bin/env python3
"""The paper's full measurement campaign, end to end (Table 2 / Fig. 4).

Builds all five input sets (BGP plain, BGP /48, BGP /64, Route(6) /64,
Hitlist /64), scans each, applies the alias filter, and prints the
per-input-set effectiveness table plus the Echo/Error/Both classification.

Run:  python examples/full_survey.py [--seed N]
"""

import argparse

from repro import SRASurvey, SurveyConfig, build_world, tiny_config
from repro.analysis import format_count, format_percent, render_table
from repro.datasets import harvest_hitlist, published_alias_list


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("building world and community datasets ...")
    world = build_world(tiny_config(seed=args.seed))
    hitlist = harvest_hitlist(world)
    alias_list = published_alias_list(world)
    print(
        f"  hitlist: {len(hitlist)} host addresses, "
        f"alias list: {len(alias_list)} prefixes"
    )

    config = SurveyConfig(
        seed=args.seed,
        slash48_per_prefix=96,
        max_bgp_48=30_000,
        slash64_per_prefix=128,
        max_bgp_64=15_000,
        route6_per_prefix=48,
        max_route6=25_000,
    )
    survey = SRASurvey(world, hitlist, alias_list=alias_list, config=config)

    print("running the five-scan SRA survey ...")
    result = survey.run()

    rows = [
        (
            row["source"],
            format_count(row["addresses"]),
            format_count(row["replies"]),
            format_percent(row["reply_rate"]),
            format_count(row["router_ips"]),
            format_percent(row["discovery_rate"], 2),
        )
        for row in result.table2_rows()
    ]
    print()
    print(
        render_table(
            ("source", "targets", "replies", "reply-rate", "routers", "discovery"),
            rows,
            title="Input-set effectiveness (the paper's Table 2)",
        )
    )

    print()
    share_rows = []
    for name, input_result in result.input_sets.items():
        shares = input_result.response_type_shares()
        share_rows.append(
            (
                name,
                format_percent(shares["echo"]),
                format_percent(shares["error"]),
                format_percent(shares["both"]),
            )
        )
    print(
        render_table(
            ("scan", "echo", "error", "both"),
            share_rows,
            title="Response classes per scan (the paper's Fig. 4)",
        )
    )

    alias_dropped = sum(
        r.alias_stats.dropped for r in result.input_sets.values() if r.alias_stats
    )
    print(f"\nalias filter dropped {alias_dropped} records across all scans")


if __name__ == "__main__":
    main()
