#!/usr/bin/env python3
"""Stability study: why SRA probing beats random probing (Figs. 5 & 6).

Re-scans the same hitlist-derived /64 subnets several times with both
methods, then re-probes the discovered routers directly, reproducing the
paper's three headline stability findings:

* SRA discovers ~10 % more router IPs per scan than random probing,
* the Echo-reply population is stable (no ICMPv6 error rate limiting),
* most discovered routers never answer a direct Echo request, yet keep
  answering through their SRA address.

Run:  python examples/stability_study.py
"""

from repro import build_world, tiny_config
from repro.analysis import format_count, format_percent, render_table
from repro.core import run_sra_vs_random, run_stability, run_visibility
from repro.datasets import harvest_hitlist


def main() -> None:
    world = build_world(tiny_config(seed=23))
    hitlist = harvest_hitlist(world)
    targets = hitlist.unique_slash64s()
    print(f"probing {len(targets)} hitlist-derived /64 subnets, 4 scans ...")

    series = run_sra_vs_random(world, targets, epochs=4)
    rows = [
        (
            scan.epoch + 1,
            format_count(len(scan.router_ips)),
            format_count(len(scan.echo_router_ips)),
            format_count(len(random_scan.router_ips)),
        )
        for scan, random_scan in zip(series.sra, series.random)
    ]
    print()
    print(
        render_table(
            ("scan", "SRA routers", "SRA echo", "random routers"),
            rows,
            title="SRA vs random probing (Fig. 5)",
        )
    )
    advantages = series.advantage_per_epoch()
    print(
        f"\nmean SRA advantage: "
        f"{format_percent(sum(advantages) / len(advantages))} "
        f"(paper: ~10%)"
    )
    print(
        f"router IPs seen only by SRA probing: "
        f"{format_count(len(series.sra_exclusive()))}"
    )

    print("\nre-probing the same SRA addresses across 6 epochs (Fig. 6b) ...")
    stability = run_stability(world, targets, epochs=6)
    print(
        render_table(
            ("scan", "same router", "changed", "no response"),
            [
                (
                    index + 1,
                    format_percent(epoch["same"]),
                    format_percent(epoch["changed"]),
                    format_percent(epoch["no_response"]),
                )
                for index, epoch in enumerate(stability.epochs)
            ],
        )
    )

    discovered = set(series.sra[0].router_ips)
    print(f"\ndirectly probing {len(discovered)} routers daily for 7 days (Fig. 6a) ...")
    visibility = run_visibility(world, discovered, days=7)
    for name, share in visibility.shares().items():
        print(f"  {name:<10} {format_percent(share)}")
    print("  (paper: >70% of SRA-discovered routers never answer directly)")


if __name__ == "__main__":
    main()
