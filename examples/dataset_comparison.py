#!/usr/bin/env python3
"""Comparing SRA probing to community datasets (§5, Table 3, Fig. 7).

Runs the SRA survey plus the four comparison datasets — CAIDA-Ark-style
traceroutes, RIPE-Atlas-style traceroutes, a TUM-style hitlist, and
sampled IXP flow data — then reports IP-level and AS-level overlap.

Run:  python examples/dataset_comparison.py
"""

from repro import SRASurvey, SurveyConfig, build_world, tiny_config
from repro.analysis import SourceComparison, format_percent, render_table
from repro.datasets import (
    AddressDataset,
    harvest_hitlist,
    published_alias_list,
    run_ark_campaign,
    run_atlas_campaign,
    run_ixp_capture,
)
from repro.metadata import ASNMapper


def main() -> None:
    world = build_world(tiny_config(seed=19))
    hitlist = harvest_hitlist(world)
    mapper = ASNMapper(world.bgp)

    print("running the SRA survey ...")
    survey = SRASurvey(
        world,
        hitlist,
        alias_list=published_alias_list(world),
        config=SurveyConfig(max_bgp_48=20_000, max_bgp_64=10_000, max_route6=15_000),
    ).run()
    sra = AddressDataset(name="sra", addresses=survey.all_router_ips())

    print("collecting comparison datasets ...")
    ark = run_ark_campaign(world, max_prefixes=80)
    atlas = run_atlas_campaign(world, hitlist, max_targets=400)
    ixp = run_ixp_capture(world, packets=500_000, sample_rate=64)
    tum = AddressDataset(name="tum-hitlist", addresses=set(hitlist.addresses()))

    comparison = SourceComparison(mapper=mapper)
    for dataset in (sra, ark, atlas, ixp.as_dataset(), tum):
        comparison.add(dataset)

    print()
    print(
        render_table(
            ("source", "addresses", "ASes", "exclusive"),
            [
                (
                    name,
                    len(dataset),
                    len(dataset.asns(mapper)),
                    format_percent(comparison.exclusive_fraction(name)),
                )
                for name, dataset in comparison.datasets.items()
            ],
            title="Dataset sizes and exclusivity",
        )
    )

    print()
    print(
        render_table(
            ("source", "top AS", "share"),
            [
                (name, f"AS{rows[0][0]}", format_percent(rows[0][1]))
                for name, rows in comparison.table3(1).items()
                if rows
            ],
            title="Most-represented AS per source (Table 3, rank 1)",
        )
    )

    print()
    upset = sorted(
        comparison.upset_counts().items(), key=lambda kv: kv[1], reverse=True
    )
    print(
        render_table(
            ("AS-set combination", "count"),
            [("+".join(sorted(combo)), count) for combo, count in upset[:8]],
            title="AS-level overlap (Fig. 7 UpSet data, top 8)",
        )
    )
    print(
        "\nSRA AS-level coverage by other sources: "
        + format_percent(comparison.as_coverage("sra"), 2)
    )
    print(
        "SRA IP-level exclusivity: "
        + format_percent(comparison.exclusive_fraction("sra"), 2)
        + "  (paper: 97-99.9% of SRA addresses are new)"
    )


if __name__ == "__main__":
    main()
