#!/usr/bin/env python3
"""Hunting routing loops and the amplification bug (§6 of the paper).

Scans the /48 partition of the BGP table, extracts looping subnets and
amplification factors from the Time Exceeded replies, attributes them to
countries, and then runs a responsible-disclosure campaign: contacted
operators install the Appendix C null routes, and a re-scan confirms the
loops are gone.

Run:  python examples/loop_hunting.py
"""

import random

from repro import SimulationEngine, ZMapV6Scanner, build_world, tiny_config
from repro.analysis import LoopAnalysis, render_ccdf, render_table
from repro.metadata import GeoIPDatabase
from repro.scanner import ScanConfig, bgp_slash48_targets
from repro.topology import run_disclosure_campaign

HOP_LIMIT = 64  # the paper's recommendation to bound amplification


def scan_for_loops(world, *, epoch):
    targets = bgp_slash48_targets(
        world.bgp, max_per_prefix=192, rng=random.Random(epoch)
    )
    engine = SimulationEngine(world, epoch=epoch)
    scanner = ZMapV6Scanner(
        engine, ScanConfig(pps=len(targets) / 6.0, hop_limit=HOP_LIMIT, seed=epoch)
    )
    return scanner.scan(targets, name=f"loop-scan-{epoch}", epoch=epoch)


def main() -> None:
    world = build_world(tiny_config(seed=13))
    geo = GeoIPDatabase.from_world(world)
    truth = sum(region.slash48_count() for region in world.loop_regions)
    print(f"world contains {truth} looping /48s (ground truth)\n")

    print(f"scanning the /48 partition with hop limit {HOP_LIMIT} ...")
    scan = scan_for_loops(world, epoch=0)
    analysis = LoopAnalysis.from_scans(scan)
    print(f"  probes: {scan.sent}, replies: {scan.received}")
    print(f"  looping /48s observed : {len(analysis.looping_slash48s)}")
    print(f"  looping router IPs    : {len(analysis.looping_routers)}")
    print(f"  amplifying routers    : {len(analysis.amplifying_routers)}")
    print(
        "  unsolicited flood packets from amplification: "
        f"{scan.flood_packets}"
    )

    print()
    print(render_ccdf(analysis.amplification_ccdf(), title="amplification factors"))
    print()
    rows = [
        (row["country"], row["looping_48s"], row["router_ips"])
        for row in analysis.table4a(geo, n=5)
    ]
    print(render_table(("country", "looping /48", "routers"), rows,
                       title="top countries by looping subnets"))

    print("\nrunning the responsible-disclosure campaign ...")
    report = run_disclosure_campaign(world, response_rate=0.6)
    print(
        f"  contacted {report.contacted_asns} operators; "
        f"{len(report.fixed_asns)} applied null routes, "
        f"fixing {report.loops_fixed} looping /48s"
    )

    rescan = scan_for_loops(world, epoch=1)
    after = LoopAnalysis.from_scans(rescan)
    print(
        f"\nre-scan: looping /48s observed "
        f"{len(analysis.looping_slash48s)} -> {len(after.looping_slash48s)}"
    )


if __name__ == "__main__":
    main()
