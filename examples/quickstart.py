#!/usr/bin/env python3
"""Quickstart: build a simulated IPv6 Internet and run one SRA scan.

This walks the library's core loop in ~40 lines:

1. generate a world (ASes, BGP table, routers, subnets),
2. derive Subnet-Router anycast targets from the BGP announcements,
3. scan them with the stateless ZMapv6-style scanner,
4. look at what came back.

Run:  python examples/quickstart.py
"""

from repro import SimulationEngine, ZMapV6Scanner, build_world, tiny_config
from repro.addr import format_address, stage1_targets
from repro.scanner import ScanConfig


def main() -> None:
    print("building a small simulated IPv6 Internet ...")
    world = build_world(tiny_config(seed=7))
    print(
        f"  {len(world.ases)} ASes, {len(world.bgp)} BGP announcements, "
        f"{len(world.subnets)} active /64 subnets, "
        f"{len(world.routers)} routers"
    )

    # Stage 1 of the paper's method: the SRA address of every announced
    # prefix — the prefix with all host bits zero.
    targets = list(stage1_targets(world.bgp.prefixes()))
    print(f"probing the SRA address of all {len(targets)} announcements ...")

    engine = SimulationEngine(world, epoch=0)
    scanner = ZMapV6Scanner(engine, ScanConfig(pps=1_000, seed=1))
    result = scanner.scan(targets, name="quickstart")

    print(f"  sent      : {result.sent}")
    print(f"  replies   : {result.received}")
    print(f"  reply rate: {result.reply_rate:.1%}")

    classes = result.classify_sources()
    print(
        f"  router IPs: {len(result.sources())} "
        f"(echo-only {len(classes['echo'])}, "
        f"error-only {len(classes['error'])}, "
        f"both {len(classes['both'])})"
    )

    print("\nfirst five Echo-replying routers:")
    for source in sorted(result.echo_sources())[:5]:
        asn = world.bgp.origin_of(source)
        print(f"  {format_address(source):<40} AS{asn}")


if __name__ == "__main__":
    main()
