#!/usr/bin/env python3
"""Measuring a router's ICMPv6 error rate limit from the outside.

The paper leaves "to what extent rate limiting techniques beyond RFC 4443
are deployed" as future work (§7) and cites the NDSS'23 side channel of
Pan et al.  This example implements the measurement against the simulator:
probe trains at increasing rates into unassigned space behind a router,
watch the pass fraction, and estimate the token bucket's refill rate —
then compare against the vendor's configured ground truth.

Run:  python examples/ratelimit_probe.py
"""

from repro import build_world, tiny_config
from repro.analysis import infer_error_rate_limit, render_table


def main() -> None:
    world = build_world(tiny_config(seed=29))

    # Pick a few quiet routers with different vendors (quiet = the on-off
    # background gate does not distort the estimate much).
    candidates = []
    seen_vendors = set()
    for subnet in world.subnets.values():
        router = world.routers[subnet.router_id]
        if (
            subnet.flaky
            or subnet.death_epoch is not None
            or subnet.aliased
            or not router.emits_unreachables
            or router.background_error_load > 0.05
            or router.vendor.name in seen_vendors
        ):
            continue
        seen_vendors.add(router.vendor.name)
        candidates.append(subnet)
        if len(candidates) == 3:
            break

    rows = []
    for subnet in candidates:
        router = world.routers[subnet.router_id]
        estimate = infer_error_rate_limit(world, subnet, duration=30.0)
        rows.append(
            (
                f"router {router.router_id} ({router.vendor.name})",
                f"{router.vendor.error_rate:.0f}/s",
                f"{estimate.rate:.1f}/s",
                f"{router.vendor.error_burst}",
                f"{estimate.burst:.0f}",
            )
        )
    print(
        render_table(
            ("router", "true rate", "inferred", "true burst", "inferred"),
            rows,
            title="ICMPv6 error rate-limit inference (token-bucket side channel)",
        )
    )
    print(
        "\nEach train probes one unassigned address behind the router at a "
        "fixed rate;\nabove the bucket rate the pass fraction collapses to "
        "rate/probe_rate."
    )


if __name__ == "__main__":
    main()
