"""Hot-path determinism regression tests.

The batched probe engine, the LPM/trie result caches, and the memoised
stable-randomness hashers are all pure throughput work: results must be
bit-identical to the original per-probe path.  These tests pin that
contract on the paper's two headline workloads — the Table 2 survey and
the Fig. 5 SRA-vs-random campaign — through the single-probe path, the
batched path, and 1/4/8-way sharded execution.
"""

import random
from dataclasses import asdict

import pytest

from repro.core.probing import run_sra_vs_random
from repro.core.survey import INPUT_SET_NAMES, SRASurvey, SurveyConfig
from repro.netsim.engine import SimulationEngine
from repro.scanner.sharded import ShardedScanRunner
from repro.scanner.stream import (
    CsvSink,
    JsonlSink,
    LazyStream,
    MemorySink,
    TeeSink,
)
from repro.scanner.targets import bgp_slash48_targets
from repro.scanner.zmapv6 import ScanConfig, ZMapV6Scanner
from repro.telemetry import ScanTelemetry


@pytest.fixture(scope="module")
def stress_targets(tiny_world):
    """Targets covering every engine behaviour: routed subnets (SRA, rate
    limiting), unassigned space, and amplifying loop regions."""
    targets = list(
        bgp_slash48_targets(
            tiny_world.bgp,
            max_per_prefix=12,
            max_targets=2_000,
            rng=random.Random(3),
        )
    )
    for region in tiny_world.loop_regions[:2]:
        targets.extend(region.prefix.network | offset for offset in range(1, 30))
    return targets


def scan_snapshot(result):
    """Everything a scan produced, in comparable form."""
    return (
        result.records,
        result.sent,
        result.lost,
        result.loops_observed,
        result.duration,
        asdict(result.engine_stats),
    )


class TestBatchPathEquivalence:
    """probe_batch vs probe: identical ScanResults for any batch size."""

    def _scan(self, world, targets, *, batch_size, epoch=0):
        engine = SimulationEngine(world, epoch=epoch)
        scanner = ZMapV6Scanner(
            engine, ScanConfig(pps=150_000.0, seed=5, batch_size=batch_size)
        )
        return scanner.scan(targets, name="scan", epoch=epoch)

    @pytest.mark.parametrize("batch_size", [2, 7, 256, 1024, 10**6])
    def test_batched_scan_matches_single(
        self, tiny_world, stress_targets, batch_size
    ):
        single = self._scan(tiny_world, stress_targets, batch_size=1)
        batched = self._scan(
            tiny_world, stress_targets, batch_size=batch_size
        )
        assert scan_snapshot(batched) == scan_snapshot(single)

    def test_engine_probe_batch_matches_probe(self, tiny_world, stress_targets):
        """Engine-level contract, independent of the scanner plumbing."""
        targets = stress_targets[:600]
        times = [i / 150_000.0 for i in range(len(targets))]
        ids = [i for i in range(len(targets))]
        serial_engine = SimulationEngine(tiny_world, epoch=2)
        serial = [
            serial_engine.probe(target, time, probe_id=probe_id)
            for target, time, probe_id in zip(targets, times, ids)
        ]
        batch_engine = SimulationEngine(tiny_world, epoch=2)
        batched = batch_engine.probe_batch(targets, times, probe_ids=ids)
        assert batched == serial
        assert batch_engine.stats == serial_engine.stats

    def test_probe_columns_match_serial_probe(self, tiny_world, stress_targets):
        """Column-level contract: the packed verdict/source/TTL columns
        hold, row for row, exactly what the per-probe dataclass path
        produces — the columnar kernel vs dataclass bit-identity pin."""
        from repro.netsim.engine import FLAG_LOOPED, FLAG_LOST, FLAG_REPLY

        targets = stress_targets[:600]
        times = [i / 150_000.0 for i in range(len(targets))]
        ids = list(range(len(targets)))
        serial_engine = SimulationEngine(tiny_world, epoch=2)
        serial = [
            serial_engine.probe(target, time, probe_id=probe_id)
            for target, time, probe_id in zip(targets, times, ids)
        ]
        col_engine = SimulationEngine(tiny_world, epoch=2)
        cols = col_engine.probe_columns(targets, times, probe_ids=ids)
        assert cols.n == len(serial)
        assert col_engine.stats == serial_engine.stats
        for i, expected in enumerate(serial):
            flags = cols.flags[i]
            assert bool(flags & FLAG_LOST) == expected.lost, i
            if expected.lost:
                continue
            assert bool(flags & FLAG_LOOPED) == expected.looped, i
            assert bool(flags & FLAG_REPLY) == expected.replied, i
            assert cols.transit[i] == expected.transit_hops, i
            if expected.replied:
                (reply,) = expected.replies
                assert cols.source(i) == reply.source, i
                assert cols.icmp_type[i] == int(reply.icmp_type), i
                assert cols.code[i] == reply.code, i
                assert cols.count[i] == reply.count, i
                rid = cols.router_id[i]
                assert (None if rid < 0 else rid) == reply.router_id, i


class TestFig5Determinism:
    """Fig. 5 campaign: single-probe vs batched vs sharded."""

    @pytest.fixture(scope="class")
    def sra_targets(self, tiny_hitlist):
        return tiny_hitlist.unique_slash64s()[:1200]

    def _series_snapshots(self, world, sra_targets, **kwargs):
        series = run_sra_vs_random(world, sra_targets, epochs=2, **kwargs)
        return [
            scan_snapshot(scan.result) for scan in series.sra + series.random
        ]

    def test_batched_matches_single_probe(self, tiny_world, sra_targets):
        single = self._series_snapshots(tiny_world, sra_targets, batch_size=1)
        batched = self._series_snapshots(
            tiny_world, sra_targets, batch_size=512
        )
        assert batched == single

    @pytest.mark.parametrize("shards", [4, 8])
    def test_sharded_matches_serial(self, tiny_world, sra_targets, shards):
        serial = self._series_snapshots(tiny_world, sra_targets)
        runner = ShardedScanRunner(
            tiny_world, shards=shards, executor="thread"
        )
        sharded = self._series_snapshots(tiny_world, sra_targets, runner=runner)
        assert sharded == serial


class TestTable2Determinism:
    """Table 2 survey: discovered router-IP sets and EngineStats are
    invariant under batching and 1/4/8-way sharding."""

    BUDGETS = dict(
        seed=13,
        slash48_per_prefix=8,
        max_bgp_48=1_500,
        slash64_per_prefix=8,
        max_bgp_64=1_200,
        route6_per_prefix=4,
        max_route6=1_500,
        max_hitlist=1_500,
    )

    def _run(self, world, hitlist, alias_list, **overrides):
        config = SurveyConfig(**{**self.BUDGETS, **overrides})
        survey = SRASurvey(
            world, hitlist, alias_list=alias_list, config=config
        )
        return survey.run()

    def _snapshots(self, survey_result):
        return {
            name: scan_snapshot(result.result)
            for name, result in survey_result.input_sets.items()
        }

    @pytest.fixture(scope="class")
    def baseline(self, tiny_world, tiny_hitlist, tiny_alias_list):
        """The single-probe, single-shard survey everything must match."""
        return self._run(
            tiny_world, tiny_hitlist, tiny_alias_list, batch_size=1
        )

    def test_batched_survey_matches(
        self, tiny_world, tiny_hitlist, tiny_alias_list, baseline
    ):
        batched = self._run(
            tiny_world, tiny_hitlist, tiny_alias_list, batch_size=256
        )
        assert self._snapshots(batched) == self._snapshots(baseline)
        assert batched.table2_rows() == baseline.table2_rows()

    @pytest.mark.parametrize("shards", [4, 8])
    def test_sharded_survey_matches(
        self, tiny_world, tiny_hitlist, tiny_alias_list, baseline, shards
    ):
        sharded = self._run(
            tiny_world,
            tiny_hitlist,
            tiny_alias_list,
            shards=shards,
            parallel="thread",
        )
        assert set(sharded.input_sets) == set(INPUT_SET_NAMES)
        for name, expected in baseline.input_sets.items():
            got = sharded.input_sets[name]
            assert got.router_ips == expected.router_ips, name
            assert scan_snapshot(got.result) == scan_snapshot(
                expected.result
            ), name
        assert sharded.all_router_ips() == baseline.all_router_ips()


class TestEpochIsolation:
    """Batching must not leak the memoised hasher across epochs."""

    def test_new_epoch_changes_draws(self, tiny_world, stress_targets):
        targets = stress_targets[:400]
        times = [i / 150_000.0 for i in range(len(targets))]

        def run(epoch):
            engine = SimulationEngine(tiny_world, epoch=epoch)
            return engine.probe_batch(
                targets, times, probe_ids=list(range(len(targets)))
            )

        assert run(0) == run(0)
        assert run(0) != run(4)


class TestTelemetryDeterminism:
    """Telemetry invariance contract on the stress workload.

    The Prometheus export must be byte-identical across batch sizes and
    shard counts, the ``loop_detected`` / ``rate_limit_engaged`` /
    ``scan_finished`` events must be shard-count invariant (first
    occurrences in virtual time are global properties), and the progress
    stream must be batch-size invariant.  Two identical runs must produce
    byte-identical JSONL.
    """

    CFG = dict(pps=200_000.0, seed=5, progress_every=500)
    EPOCH = 2

    def _serial(self, world, targets, *, batch_size=1024):
        telemetry = ScanTelemetry()
        engine = SimulationEngine(world, epoch=self.EPOCH)
        scanner = ZMapV6Scanner(
            engine,
            ScanConfig(batch_size=batch_size, **self.CFG),
            telemetry=telemetry,
        )
        scanner.scan(targets, name="scan", epoch=self.EPOCH)
        return telemetry

    def _sharded(self, world, targets, *, shards, executor="thread"):
        telemetry = ScanTelemetry()
        runner = ShardedScanRunner(
            world, shards=shards, executor=executor, telemetry=telemetry
        )
        runner.scan(
            targets, ScanConfig(**self.CFG), name="scan", epoch=self.EPOCH
        )
        return telemetry

    @staticmethod
    def _invariant_events(telemetry):
        """The shard-count-invariant event subset.

        ``seq`` and ``scan_started.shards`` are the *only* fields allowed
        to differ between a serial and a sharded run of the same scan —
        one is stream position, the other reports the run's own config.
        """
        return [
            {
                key: value
                for key, value in event.items()
                if key != "seq"
                and not (event["event"] == "scan_started" and key == "shards")
            }
            for event in telemetry.events
            if event["event"]
            in ("scan_started", "loop_detected", "rate_limit_engaged",
                "scan_finished")
        ]

    @pytest.fixture(scope="class")
    def serial_telemetry(self, tiny_world, stress_targets):
        telemetry = self._serial(tiny_world, stress_targets)
        # The workload must exercise loops and the rate limiter, or the
        # invariance assertions below prove nothing.
        kinds = {event["event"] for event in telemetry.events}
        assert "loop_detected" in kinds
        assert "rate_limit_engaged" in kinds
        assert "progress" in kinds
        return telemetry

    @pytest.mark.parametrize("shards", [1, 4, 8])
    def test_prometheus_shard_invariant(
        self, tiny_world, stress_targets, serial_telemetry, shards
    ):
        sharded = self._sharded(tiny_world, stress_targets, shards=shards)
        assert sharded.to_prometheus() == serial_telemetry.to_prometheus()

    def test_prometheus_batch_invariant(
        self, tiny_world, stress_targets, serial_telemetry
    ):
        single = self._serial(tiny_world, stress_targets, batch_size=1)
        assert single.to_prometheus() == serial_telemetry.to_prometheus()

    @pytest.mark.parametrize("shards", [4, 8])
    def test_events_shard_invariant(
        self, tiny_world, stress_targets, serial_telemetry, shards
    ):
        sharded = self._sharded(tiny_world, stress_targets, shards=shards)
        assert self._invariant_events(sharded) == self._invariant_events(
            serial_telemetry
        )

    def test_progress_stream_batch_invariant(
        self, tiny_world, stress_targets, serial_telemetry
    ):
        single = self._serial(tiny_world, stress_targets, batch_size=1)
        assert single.to_jsonl() == serial_telemetry.to_jsonl()

    def test_repeat_runs_byte_identical(self, tiny_world, stress_targets):
        first = self._sharded(tiny_world, stress_targets, shards=4)
        second = self._sharded(tiny_world, stress_targets, shards=4)
        assert first.to_jsonl() == second.to_jsonl()
        assert first.to_prometheus() == second.to_prometheus()

    def test_telemetry_never_changes_scan_results(
        self, tiny_world, stress_targets
    ):
        def run(telemetry):
            engine = SimulationEngine(tiny_world, epoch=self.EPOCH)
            scanner = ZMapV6Scanner(
                engine, ScanConfig(**self.CFG), telemetry=telemetry
            )
            return scanner.scan(stress_targets, name="scan", epoch=self.EPOCH)

        observed = run(ScanTelemetry())
        bare = run(None)
        assert scan_snapshot(observed) == scan_snapshot(bare)


class TestStreamVsListEquivalence:
    """The streaming pipeline is pure plumbing: target streams and record
    sinks change memory behaviour, never bytes.

    Pinned across batch sizes 1/1024 and 1/4/8 shards: identical
    ``ScanResult`` snapshots, identical sink record sequences, identical
    JSONL/CSV output files, and byte-identical telemetry exports (the
    ``records_buffered`` gauge is the one *documented* difference between
    buffered and sink mode, and is asserted exactly).
    """

    CFG = dict(pps=200_000.0, seed=5, progress_every=500)
    EPOCH = 2

    def _scan(
        self, world, targets, *, batch_size=1024, sink=None, telemetry=None
    ):
        engine = SimulationEngine(world, epoch=self.EPOCH)
        scanner = ZMapV6Scanner(
            engine,
            ScanConfig(batch_size=batch_size, **self.CFG),
            telemetry=telemetry,
        )
        return scanner.scan(
            targets, name="scan", epoch=self.EPOCH, sink=sink
        )

    def _stream(self, stress_targets):
        return LazyStream(lambda: list(stress_targets), name="stress")

    @pytest.mark.parametrize("batch_size", [1, 1024])
    def test_stream_targets_match_list(
        self, tiny_world, stress_targets, batch_size
    ):
        expected = self._scan(
            tiny_world, list(stress_targets), batch_size=batch_size
        )
        got = self._scan(
            tiny_world, self._stream(stress_targets), batch_size=batch_size
        )
        assert scan_snapshot(got) == scan_snapshot(expected)

    @pytest.mark.parametrize("batch_size", [1, 1024])
    def test_memory_sink_records_identical(
        self, tiny_world, stress_targets, batch_size
    ):
        buffered = self._scan(
            tiny_world, stress_targets, batch_size=batch_size
        )
        sink = MemorySink()
        streamed = self._scan(
            tiny_world, stress_targets, batch_size=batch_size, sink=sink
        )
        assert sink.records == buffered.records
        assert streamed.records == []
        assert streamed.records_streamed == len(buffered.records)
        assert streamed.received == buffered.received
        assert streamed.sent == buffered.sent
        assert streamed.engine_stats == buffered.engine_stats

    def test_file_sinks_byte_identical_to_writers(
        self, tiny_world, stress_targets, tmp_path
    ):
        buffered = self._scan(tiny_world, stress_targets)
        buffered.write_jsonl(tmp_path / "buffered.jsonl")
        buffered.write_csv(tmp_path / "buffered.csv")
        sink = TeeSink(
            (JsonlSink(tmp_path / "stream.jsonl"), CsvSink(tmp_path / "stream.csv"))
        )
        with sink:
            self._scan(tiny_world, stress_targets, sink=sink)
        assert (tmp_path / "stream.jsonl").read_bytes() == (
            tmp_path / "buffered.jsonl"
        ).read_bytes()
        assert (tmp_path / "stream.csv").read_bytes() == (
            tmp_path / "buffered.csv"
        ).read_bytes()

    @pytest.mark.parametrize("shards", [1, 4, 8])
    def test_sharded_sink_drains_serial_order(
        self, tiny_world, stress_targets, shards
    ):
        serial = self._scan(tiny_world, list(stress_targets))
        sink = MemorySink()
        runner = ShardedScanRunner(
            tiny_world, shards=shards, executor="thread"
        )
        result = runner.scan(
            self._stream(stress_targets),
            ScanConfig(**self.CFG),
            name="scan",
            epoch=self.EPOCH,
            sink=sink,
        )
        assert sink.records == serial.records
        assert result.records == []
        assert result.records_streamed == len(serial.records)

    def test_telemetry_byte_identical_stream_vs_list(
        self, tiny_world, stress_targets
    ):
        with_list = ScanTelemetry()
        self._scan(tiny_world, list(stress_targets), telemetry=with_list)
        with_stream = ScanTelemetry()
        self._scan(
            tiny_world, self._stream(stress_targets), telemetry=with_stream
        )
        assert with_stream.to_jsonl() == with_list.to_jsonl()
        assert with_stream.to_prometheus() == with_list.to_prometheus()

    @pytest.mark.parametrize("shards", [4, 8])
    def test_sharded_stream_telemetry_matches_sharded_list(
        self, tiny_world, stress_targets, shards
    ):
        def run(targets):
            telemetry = ScanTelemetry()
            runner = ShardedScanRunner(
                tiny_world, shards=shards, executor="thread",
                telemetry=telemetry,
            )
            runner.scan(
                targets, ScanConfig(**self.CFG), name="scan", epoch=self.EPOCH
            )
            return telemetry

        with_list = run(list(stress_targets))
        with_stream = run(self._stream(stress_targets))
        assert with_stream.to_jsonl() == with_list.to_jsonl()
        assert with_stream.to_prometheus() == with_list.to_prometheus()

    def test_sink_telemetry_differs_only_in_buffered_gauge(
        self, tiny_world, stress_targets
    ):
        """Streaming's one observable telemetry delta, pinned exactly."""
        buffered = ScanTelemetry()
        self._scan(tiny_world, stress_targets, telemetry=buffered)
        streaming = ScanTelemetry()
        self._scan(
            tiny_world, stress_targets, telemetry=streaming, sink=MemorySink()
        )

        def without_gauge(text):
            return [
                line
                for line in text.splitlines()
                if "sra_scan_records_buffered" not in line
            ]

        assert without_gauge(streaming.to_prometheus()) == without_gauge(
            buffered.to_prometheus()
        )
        assert streaming.to_prometheus() != buffered.to_prometheus()
        assert streaming.to_jsonl() == buffered.to_jsonl()

    @pytest.mark.parametrize("shards", [1, 4])
    def test_sink_mode_exports_shard_invariant(
        self, tiny_world, stress_targets, shards
    ):
        """With a sink, even the gauges agree across shard counts (the
        sharded merge drains before closing telemetry)."""
        serial = ScanTelemetry()
        self._scan(tiny_world, stress_targets, telemetry=serial, sink=MemorySink())
        sharded = ScanTelemetry()
        runner = ShardedScanRunner(
            tiny_world, shards=shards, executor="thread", telemetry=sharded
        )
        runner.scan(
            stress_targets,
            ScanConfig(**self.CFG),
            name="scan",
            epoch=self.EPOCH,
            sink=MemorySink(),
        )
        assert sharded.to_prometheus() == serial.to_prometheus()


class TestCrashResumeDeterminism:
    """Kill-at-shard-N → resume must equal the uninterrupted run, byte
    for byte: merged records, Prometheus export, telemetry JSONL, and
    streamed JSONL output files.

    The interrupted run uses a :class:`ChaosEngine` to self-interrupt
    mid-scan (exactly what the SIGINT/SIGTERM handlers do) and salvages
    completed shards into a checkpoint; the resume re-runs only the
    missing index windows.  The baseline runs with checkpointing enabled
    too — recovery mode is one code path at every shard count, so this
    also pins "journal on, never interrupted" against "journal on,
    killed, resumed".
    """

    CFG = dict(pps=200_000.0, seed=5, progress_every=500)
    EPOCH = 2

    def _runner(self, world, shards):
        return ShardedScanRunner(
            world, shards=shards, executor="thread", retry_backoff=0.0
        )

    def _scan(self, world, targets, *, shards, checkpoint, sink_path=None,
              resume=False, chaos=None):
        from repro.scanner.stream import JsonlSink

        telemetry = ScanTelemetry()
        sink = JsonlSink(sink_path) if sink_path else None
        try:
            result = self._runner(world, shards).scan(
                targets,
                ScanConfig(**self.CFG),
                name="scan",
                epoch=self.EPOCH,
                telemetry=telemetry,
                sink=sink,
                checkpoint=checkpoint,
                resume=resume,
                chaos=chaos,
            )
        except BaseException:
            if sink is not None:
                sink.abort()
            raise
        if sink is not None:
            sink.close()
        return result, telemetry

    @pytest.mark.parametrize("shards", [1, 4, 8])
    def test_resume_is_byte_identical(
        self, tiny_world, stress_targets, tmp_path, shards
    ):
        from repro.netsim.faults import ChaosEngine, FaultPlan
        from repro.scanner.sharded import ScanInterrupted

        checkpoint = tmp_path / f"scan-{shards}.ckpt"
        baseline, base_telemetry = self._scan(
            tiny_world,
            stress_targets,
            shards=shards,
            checkpoint=checkpoint,
            sink_path=tmp_path / "baseline.jsonl",
        )
        assert not checkpoint.exists()

        chaos = ChaosEngine(
            plan=FaultPlan(interrupt_after_shards=max(1, shards // 2))
        )
        with pytest.raises(ScanInterrupted) as excinfo:
            self._scan(
                tiny_world,
                stress_targets,
                shards=shards,
                checkpoint=checkpoint,
                sink_path=tmp_path / "resumed.jsonl",
                chaos=chaos,
            )
        assert checkpoint.exists()
        assert excinfo.value.completed >= 1
        # The kill left only a .partial output, never a torn destination.
        assert not (tmp_path / "resumed.jsonl").exists()

        resumed, resumed_telemetry = self._scan(
            tiny_world,
            stress_targets,
            shards=shards,
            checkpoint=checkpoint,
            sink_path=tmp_path / "resumed.jsonl",
            resume=True,
        )
        assert not checkpoint.exists()
        assert resumed.records == baseline.records
        assert resumed.records_streamed == baseline.records_streamed
        assert asdict(resumed.engine_stats) == asdict(baseline.engine_stats)
        assert resumed_telemetry.to_jsonl() == base_telemetry.to_jsonl()
        assert (
            resumed_telemetry.to_prometheus() == base_telemetry.to_prometheus()
        )
        assert (tmp_path / "resumed.jsonl").read_bytes() == (
            tmp_path / "baseline.jsonl"
        ).read_bytes()

    def test_recovery_mode_equals_plain_run(
        self, tiny_world, stress_targets, tmp_path
    ):
        """Checkpointing itself must not perturb results: a journalled,
        uninterrupted run equals the no-journal fast path."""
        plain = ScanTelemetry()
        plain_result = ShardedScanRunner(
            tiny_world, shards=4, executor="thread"
        ).scan(
            stress_targets,
            ScanConfig(**self.CFG),
            name="scan",
            epoch=self.EPOCH,
            telemetry=plain,
        )
        journalled_result, journalled = self._scan(
            tiny_world,
            stress_targets,
            shards=4,
            checkpoint=tmp_path / "scan.ckpt",
        )
        assert journalled_result.records == plain_result.records
        assert journalled.to_jsonl() == plain.to_jsonl()
        assert journalled.to_prometheus() == plain.to_prometheus()

    def test_table2_survey_interrupt_and_resume(self, tmp_path):
        """The paper's Table 2 mini-survey, killed mid-campaign and
        resumed from its checkpoint directory: identical survey output."""
        from repro.core.survey import SRASurvey, SurveyConfig
        from repro.netsim.faults import ChaosEngine, FaultPlan
        from repro.scanner.sharded import ScanInterrupted
        from repro.datasets.tum import harvest_hitlist, published_alias_list
        from repro.topology.config import tiny_config
        from repro.topology.generator import build_world

        world = build_world(tiny_config(seed=7))
        hitlist = harvest_hitlist(world, seed=97)
        aliases = published_alias_list(world, seed=101)
        budgets = dict(
            seed=13,
            slash48_per_prefix=4,
            max_bgp_48=600,
            slash64_per_prefix=4,
            max_bgp_64=500,
            route6_per_prefix=2,
            max_route6=600,
            max_hitlist=600,
        )
        checkpoint_dir = tmp_path / "journals"

        def survey(runner):
            return SRASurvey(
                world,
                hitlist,
                alias_list=aliases,
                config=SurveyConfig(**budgets),
                runner=runner,
            ).run()

        def runner(chaos=None):
            return ShardedScanRunner(
                world,
                shards=4,
                executor="thread",
                retry_backoff=0.0,
                checkpoint_dir=checkpoint_dir,
                chaos=chaos,
            )

        baseline = survey(
            ShardedScanRunner(world, shards=4, executor="thread")
        )
        chaos = ChaosEngine(plan=FaultPlan(interrupt_after_shards=2))
        with pytest.raises(ScanInterrupted):
            survey(runner(chaos=chaos))
        assert list(checkpoint_dir.glob("*.ckpt"))
        # Re-running the same campaign auto-resumes from the journals.
        resumed = survey(runner())
        assert not list(checkpoint_dir.glob("*.ckpt"))
        assert set(resumed.input_sets) == set(baseline.input_sets)
        for name, expected in baseline.input_sets.items():
            got = resumed.input_sets[name]
            assert got.router_ips == expected.router_ips, name
            assert scan_snapshot(got.result) == scan_snapshot(
                expected.result
            ), name
        assert resumed.table2_rows() == baseline.table2_rows()

    @pytest.mark.parametrize("shards", [1, 4])
    def test_fig5_campaign_interrupt_and_resume(
        self, tiny_world, tiny_hitlist, tmp_path, shards
    ):
        """The Fig. 5 SRA-vs-random campaign, killed mid-epoch and
        resumed from its checkpoint directory: identical series."""
        from repro.netsim.faults import ChaosEngine, FaultPlan
        from repro.scanner.sharded import ScanInterrupted

        sra_targets = tiny_hitlist.unique_slash64s()[:1200]
        checkpoint_dir = tmp_path / "journals"
        checkpoint_dir.mkdir()

        def campaign(runner):
            series = run_sra_vs_random(
                tiny_world, sra_targets, epochs=2, runner=runner
            )
            return [
                scan_snapshot(scan.result)
                for scan in series.sra + series.random
            ]

        def runner(chaos=None):
            return ShardedScanRunner(
                tiny_world,
                shards=shards,
                executor="thread",
                retry_backoff=0.0,
                checkpoint_dir=checkpoint_dir,
                chaos=chaos,
            )

        baseline = campaign(
            ShardedScanRunner(tiny_world, shards=shards, executor="thread")
        )
        chaos = ChaosEngine(
            plan=FaultPlan(interrupt_after_shards=max(1, shards // 2))
        )
        with pytest.raises(ScanInterrupted):
            campaign(runner(chaos=chaos))
        assert list(checkpoint_dir.glob("*.ckpt"))
        # Re-running the same campaign auto-resumes from the journals.
        resumed = campaign(runner())
        assert not list(checkpoint_dir.glob("*.ckpt"))
        assert resumed == baseline
