"""Tests for the extension features: pcap capture, rate-limit inference,
hitlist feedback, artifact export, the campaign orchestrator, and the CLIs."""

import json

import pytest

from repro.analysis.hitlist_feedback import contribute_to_hitlist
from repro.analysis.ratelimit_infer import infer_error_rate_limit, probe_train
from repro.core.campaign import MeasurementPlan, run_measurement_plan
from repro.core.survey import SurveyConfig
from repro.hitlist.aliases import AliasedPrefixList
from repro.hitlist.hitlist import Hitlist
from repro.addr.ipv6 import IPv6Prefix
from repro.netsim.engine import SimulationEngine
from repro.netsim.pcap import (
    LINKTYPE_RAW,
    PcapWriter,
    capture_scan,
    read_pcap,
)
from repro.packet.icmpv6 import ICMPv6Type
from repro.packet.ipv6hdr import IPv6Header
from repro.scanner.records import ScanRecord, ScanResult
from repro.topology.export import export_artifacts, load_artifacts
from repro.topology.profiles import SRABehavior


class TestPcap:
    def test_writer_reader_roundtrip(self, tmp_path):
        path = tmp_path / "test.pcap"
        with PcapWriter.open(path) as pcap:
            pcap.write(1.5, b"\x60" + b"\x00" * 39)
            pcap.write(2.25, b"\x60" + b"\x11" * 50)
        packets = read_pcap(path)
        assert len(packets) == 2
        assert packets[0][0] == pytest.approx(1.5)
        assert packets[1][1][1] == 0x11

    def test_global_header_linktype(self, tmp_path):
        path = tmp_path / "test.pcap"
        with PcapWriter.open(path):
            pass
        raw = path.read_bytes()
        assert int.from_bytes(raw[20:24], "little") == LINKTYPE_RAW

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 40)
        with pytest.raises(ValueError):
            read_pcap(path)

    def test_snaplen_truncates(self, tmp_path):
        path = tmp_path / "snap.pcap"
        with PcapWriter.open(path, snaplen=10) as pcap:
            pcap.write(0.0, b"\xab" * 100)
        packets = read_pcap(path)
        assert len(packets[0][1]) == 10

    def test_capture_scan_writes_probes_and_replies(self, tiny_world, tmp_path):
        subnets = [
            s
            for s in tiny_world.subnets.values()
            if tiny_world.routers[s.router_id].vendor.sra_behavior
            is SRABehavior.REPLY
            and not s.flaky and s.death_epoch is None and not s.aliased
        ][:20]
        targets = [s.sra_address for s in subnets]
        path = tmp_path / "scan.pcap"
        counters = capture_scan(tiny_world, targets, path, epoch=500)
        assert counters["probes"] == len(targets)
        assert counters["replies"] > 0
        packets = read_pcap(path)
        assert len(packets) == counters["probes"] + counters["replies"] + (
            counters["flood_packets"]
        )
        # Every captured packet is valid IPv6.
        for _, raw in packets[:10]:
            IPv6Header.decode(raw)

    def test_capture_scan_materialises_flood(self, tiny_world, tmp_path):
        buggy_regions = [
            region
            for region in tiny_world.loop_regions
            if tiny_world.routers[region.customer_router_id].replication_factor
            > 1.05
        ]
        if not buggy_regions:
            pytest.skip("no buggy loop in tiny world")
        region = buggy_regions[0]
        targets = [region.prefix.network | 0x31]
        path = tmp_path / "flood.pcap"
        counters = capture_scan(
            tiny_world, targets, path, epoch=501, max_duplicates=50
        )
        assert counters["flood_packets"] + counters["flood_truncated"] >= 1


class TestRateLimitInference:
    def _reply_subnet(self, world):
        # A healthy subnet whose router emits unreachables and is quiet.
        for subnet in world.subnets.values():
            router = world.routers[subnet.router_id]
            if (
                not subnet.flaky
                and subnet.death_epoch is None
                and not subnet.aliased
                and router.emits_unreachables
                and router.background_error_load < 0.05
            ):
                return subnet
        pytest.skip("no suitable subnet")

    def test_probe_train_counts(self, tiny_world):
        subnet = self._reply_subnet(tiny_world)
        engine = SimulationEngine(tiny_world, epoch=600)
        point = probe_train(
            engine,
            subnet,
            probe_rate=2.0,
            duration=5.0,
            start_time=0.0,
            probe_id_base=0,
        )
        assert point.sent == 10
        assert 0 <= point.received <= point.sent

    def test_inferred_rate_close_to_configured(self, tiny_world):
        subnet = self._reply_subnet(tiny_world)
        router = tiny_world.routers[subnet.router_id]
        configured = router.vendor.error_rate
        estimate = infer_error_rate_limit(tiny_world, subnet, duration=30.0)
        # The side channel should land within 3x of the configured rate
        # (background load and loss blur the estimate).
        assert configured / 3 <= estimate.rate <= configured * 3

    def test_estimate_reports_points(self, tiny_world):
        subnet = self._reply_subnet(tiny_world)
        estimate = infer_error_rate_limit(
            tiny_world, subnet, probe_rates=(2.0, 50.0), duration=10.0
        )
        assert len(estimate.points) == 2
        assert estimate.points[0].probe_rate == 2.0


class TestHitlistFeedback:
    def _scan(self):
        echo = int(ICMPv6Type.ECHO_REPLY)
        unreach = int(ICMPv6Type.DESTINATION_UNREACHABLE)
        result = ScanResult(name="x", sent=4)
        result.records = [
            ScanRecord(target=1, source=100, icmp_type=echo, code=0),
            ScanRecord(target=2, source=200, icmp_type=echo, code=0),
            ScanRecord(target=3, source=300, icmp_type=unreach, code=0),
        ]
        return result

    def test_contributes_echo_sources(self):
        hitlist = Hitlist()
        report = contribute_to_hitlist(hitlist, [self._scan()])
        assert report.added == 2
        assert 100 in hitlist and 200 in hitlist
        assert 300 not in hitlist
        assert report.rejected_error_only == 1

    def test_already_known_counted(self):
        hitlist = Hitlist()
        hitlist.add(100)
        report = contribute_to_hitlist(hitlist, [self._scan()])
        assert report.added == 1
        assert report.already_known == 1

    def test_alias_rejection(self):
        hitlist = Hitlist()
        alias_list = AliasedPrefixList([IPv6Prefix(0, 120)])  # covers 100/200
        report = contribute_to_hitlist(
            hitlist, [self._scan()], alias_list=alias_list
        )
        assert report.added == 0
        assert report.rejected_aliased == 2
        assert report.rejected_error_only == 1
        assert report.considered == 3

    def test_aliased_error_only_counted_as_aliased(self):
        # The error-only source 300 sits inside the aliased prefix: it
        # must count as rejected_aliased, exactly like an echo source
        # would, not leak into rejected_error_only (the pre-fix code
        # skipped the alias check for error-only sources).
        hitlist = Hitlist()
        alias_list = AliasedPrefixList([IPv6Prefix(256, 120)])  # covers 300
        report = contribute_to_hitlist(
            hitlist, [self._scan()], alias_list=alias_list
        )
        assert report.added == 2
        assert report.rejected_aliased == 1
        assert report.rejected_error_only == 0
        assert report.considered == 3

    def test_extended_mode_includes_error_sources(self):
        hitlist = Hitlist()
        report = contribute_to_hitlist(
            hitlist, [self._scan()], include_error_sources=True
        )
        assert report.added == 3
        assert 300 in hitlist


class TestArtifactExport:
    def test_roundtrip(self, tiny_world, tiny_hitlist, tiny_alias_list, tmp_path):
        directory = export_artifacts(
            tiny_world,
            tmp_path / "artifacts",
            hitlist=tiny_hitlist,
            alias_list=tiny_alias_list,
        )
        bundle = load_artifacts(directory)
        assert len(bundle.bgp) == len(tiny_world.bgp)
        assert len(bundle.irr) == len(tiny_world.irr)
        assert bundle.hitlist is not None
        assert len(bundle.hitlist) == len(tiny_hitlist)
        assert len(bundle.aliases) == len(tiny_alias_list)
        assert bundle.summary["ases"] == len(tiny_world.ases)
        assert bundle.summary["seed"] == tiny_world.seed

    def test_default_ground_truth_export(self, tiny_world, tmp_path):
        directory = export_artifacts(tiny_world, tmp_path / "gt")
        bundle = load_artifacts(directory)
        assert bundle.summary["hitlist_entries"] == sum(
            1 for _ in tiny_world.all_hosts()
        )

    def test_summary_is_valid_json(self, tiny_world, tmp_path):
        directory = export_artifacts(tiny_world, tmp_path / "json")
        summary = json.loads((directory / "summary.json").read_text())
        assert summary["looping_slash48s"] == sum(
            region.slash48_count() for region in tiny_world.loop_regions
        )


class TestCampaign:
    def test_full_plan(self, tiny_world, tiny_hitlist, tiny_alias_list):
        plan = MeasurementPlan(
            survey_config=SurveyConfig(
                seed=9,
                slash48_per_prefix=16,
                max_bgp_48=3000,
                slash64_per_prefix=16,
                max_bgp_64=2000,
                route6_per_prefix=8,
                max_route6=3000,
                max_hitlist=2000,
            ),
            visibility_days=2,
            stability_scans=2,
            comparison_scans=2,
            max_stability_targets=1500,
            max_visibility_routers=1500,
        )
        report = run_measurement_plan(
            tiny_world, tiny_hitlist, alias_list=tiny_alias_list, plan=plan
        )
        headline = report.headline()
        assert headline["router_ips"] > 0
        assert 0 <= headline["never_answer_directly"] <= 1
        assert headline["stable_same_router_last_scan"] > 0.4
        assert "sra_advantage_over_random" in headline
        # SRA discovers more than direct probing of the same routers.
        assert headline["sra_gain_over_direct"] > 0


class TestCLIs:
    def test_sra_scan_writes_csv(self, tmp_path, capsys):
        from repro.scanner.cli import main

        output = tmp_path / "scan.csv"
        code = main(
            [
                "--seed", "7",
                "--input-set", "bgp-plain",
                "--output", str(output),
                "--summary",
            ]
        )
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "router IPs" in out

    def test_sra_scan_pcap(self, tmp_path):
        from repro.scanner.cli import main

        pcap_path = tmp_path / "scan.pcap"
        code = main(
            [
                "--seed", "7",
                "--input-set", "bgp-plain",
                "--max-targets", "30",
                "--pcap", str(pcap_path),
            ]
        )
        assert code == 0
        assert read_pcap(pcap_path)

    def test_sra_repro_list(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig8" in out

    @pytest.mark.parametrize(
        "flags,message",
        [
            (["--pps", "0"], "--pps must be positive"),
            (["--pps", "-10"], "--pps must be positive"),
            (["--batch-size", "0"], "--batch-size must be >= 1"),
            (["--batch-size", "-2"], "--batch-size must be >= 1"),
            (["--max-targets", "-5"], "--max-targets must be >= 0"),
        ],
    )
    def test_sra_scan_rejects_bad_knobs(self, capsys, flags, message):
        """Bad numeric knobs exit 2 with one stderr line, never a
        traceback or a silently nonsense scan."""
        from repro.scanner.cli import main

        code = main(["--seed", "7", "--input-set", "bgp-plain", *flags])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err == f"sra-scan: {message}\n"

    @pytest.mark.parametrize(
        "flags,message",
        [
            (["--pps", "0"], "--pps must be positive"),
            (["--pps", "-1"], "--pps must be positive"),
            (["--batch-size", "0"], "--batch-size must be >= 1"),
        ],
    )
    def test_sra_repro_rejects_bad_knobs(self, capsys, flags, message):
        from repro.experiments.runner import main

        code = main(["table2", "--scale", "quick", *flags])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err == f"sra-repro: {message}\n"


class TestCampaignVariants:
    def test_plan_without_comparison(self, tiny_world, tiny_hitlist):
        plan = MeasurementPlan(
            survey_config=SurveyConfig(
                seed=10,
                slash48_per_prefix=8,
                max_bgp_48=1500,
                slash64_per_prefix=8,
                max_bgp_64=1000,
                route6_per_prefix=4,
                max_route6=1500,
                max_hitlist=1000,
            ),
            visibility_days=1,
            stability_scans=2,
            run_comparison=False,
            max_stability_targets=800,
            max_visibility_routers=800,
        )
        report = run_measurement_plan(tiny_world, tiny_hitlist, plan=plan)
        assert report.comparison is None
        headline = report.headline()
        assert "sra_advantage_over_random" not in headline
        assert headline["router_ips"] > 0


class TestCLIVariants:
    @pytest.mark.parametrize("input_set", ["bgp-48", "route6-64"])
    def test_other_input_sets(self, input_set, tmp_path):
        from repro.scanner.cli import main

        output = tmp_path / "scan.jsonl"
        code = main(
            [
                "--seed", "7",
                "--input-set", input_set,
                "--max-targets", "500",
                "--jsonl", str(output),
                "--no-alias-filter",
            ]
        )
        assert code == 0
        assert output.exists()

    def test_explicit_pps(self, capsys):
        from repro.scanner.cli import main

        code = main(
            [
                "--seed", "7",
                "--input-set", "bgp-plain",
                "--pps", "500",
                "--summary",
            ]
        )
        assert code == 0
        assert "500 pps" in capsys.readouterr().out


class TestPcapStreamOwnership:
    def test_non_owning_stream_left_open(self, tmp_path):
        import io

        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(0.0, b"\x60" + b"\x00" * 39)
        writer.close()
        # The writer did not own the stream, so it must stay usable.
        assert not buffer.closed
        assert buffer.getvalue()
