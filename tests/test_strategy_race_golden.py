"""Golden-file regression test for the strategy-race comparison table.

A fixed-seed race on the tiny world must emit a byte-identical JSONL
table, forever: the golden pins the table schema (field names, key
order, number formatting) *and* the behaviour of every strategy — any
change to window generation, feedback folding, the telescope, or the
scan substrate shows up as a diff here.

Regenerate deliberately (after verifying the change is intended) with::

    PYTHONPATH=src python tests/test_strategy_race_golden.py --regenerate
"""

from pathlib import Path

from repro.experiments.strategy_race import run_strategy_race

GOLDEN_DIR = Path(__file__).parent / "goldens"
RACE_GOLDEN = GOLDEN_DIR / "strategy_race_tiny.jsonl"

# Small enough to run in ~a second, large enough that every strategy
# yields, adaptive feedback fires, and the rate limiter engages.
RACE_BUDGETS = dict(epochs=2, budget=200, seed=5)


def run_golden_race(world):
    """The exact race the golden was generated from."""
    return run_strategy_race(world, **RACE_BUDGETS)


class TestStrategyRaceGolden:
    def test_table_matches_golden(self, tiny_world):
        race = run_golden_race(tiny_world)
        assert race.to_table_jsonl() == RACE_GOLDEN.read_text()

    def test_golden_exercises_the_interesting_paths(self):
        """The pinned table must actually cover the vocabulary — a
        golden of nothing would regress silently."""
        text = RACE_GOLDEN.read_text()
        assert '"kind": "epoch"' in text
        assert '"kind": "summary"' in text
        for strategy in (
            "sra-anycast",
            "random-baseline",
            "entropy-clustered",
            "hitlist-feedback",
        ):
            assert strategy in text, strategy
        import json

        rows = [json.loads(line) for line in text.splitlines()]
        assert any(row.get("overlap") is None for row in rows)  # epoch 0
        # The rate limiter engaged and the scans actually yielded.
        assert any(row["suppressed_errors"] > 0 for row in rows)
        assert all(
            row["router_ips"] > 0
            for row in rows
            if row["kind"] == "summary"
        )


def _regenerate() -> None:
    from repro.topology.config import tiny_config
    from repro.topology.generator import build_world

    world = build_world(tiny_config(seed=7))
    race = run_golden_race(world)
    GOLDEN_DIR.mkdir(exist_ok=True)
    RACE_GOLDEN.write_text(race.to_table_jsonl())
    print(f"wrote {RACE_GOLDEN} ({len(race.rows)} rows)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
