"""Tests for the stateless scanner: records, targets, the zmap driver."""

import csv
import json
import random

import pytest

from repro.packet.icmpv6 import ICMPv6Type
from repro.scanner.records import (
    ScanRecord,
    ScanResult,
    iter_router_ips,
    merge_results,
)
from repro.scanner.targets import (
    bgp_plain_targets,
    bgp_slash48_targets,
    bgp_slash64_targets,
    hitlist_slash64_targets,
    prefixes_of_targets,
    route6_slash64_targets,
)
from repro.scanner.zmapv6 import ScanConfig, ZMapV6Scanner
from repro.netsim.engine import SimulationEngine

ECHO = int(ICMPv6Type.ECHO_REPLY)
UNREACH = int(ICMPv6Type.DESTINATION_UNREACHABLE)
TIMEX = int(ICMPv6Type.TIME_EXCEEDED)


def record(target, source, icmp_type, count=1):
    return ScanRecord(target=target, source=source, icmp_type=icmp_type, code=0, count=count)


class TestScanRecord:
    def test_classification_properties(self):
        assert record(1, 2, ECHO).is_echo
        assert not record(1, 2, ECHO).is_error
        assert record(1, 2, UNREACH).is_error
        assert record(1, 2, TIMEX).is_time_exceeded


class TestScanResult:
    def _result(self):
        result = ScanResult(name="test", sent=10)
        result.records = [
            record(1, 100, ECHO),
            record(2, 100, UNREACH),  # source 100 is "both"
            record(3, 101, ECHO),
            record(4, 102, UNREACH),
            record(5, 103, TIMEX, count=50),
        ]
        return result

    def test_received_excludes_flood_duplicates(self):
        result = self._result()
        assert result.received == 5
        assert result.flood_packets == 49

    def test_responsive_targets(self):
        assert self._result().responsive_targets == 5

    def test_reply_rate(self):
        assert self._result().reply_rate == 0.5

    def test_source_views(self):
        result = self._result()
        assert result.sources() == {100, 101, 102, 103}
        assert result.echo_sources() == {100, 101}
        assert result.error_sources() == {100, 102, 103}

    def test_classify_sources(self):
        classes = self._result().classify_sources()
        assert classes["both"] == {100}
        assert classes["echo"] == {101}
        assert classes["error"] == {102, 103}

    def test_echo_targets(self):
        assert self._result().echo_targets() == {1, 3}

    def test_target_to_source_first_wins(self):
        result = ScanResult(name="x", sent=1)
        result.records = [record(1, 100, ECHO), record(1, 999, ECHO)]
        assert result.target_to_source() == {1: 100}

    def test_amplified_records(self):
        assert len(self._result().amplified_records(threshold=2)) == 1

    def test_write_csv_roundtrip(self, tmp_path):
        result = self._result()
        path = tmp_path / "scan.csv"
        result.write_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5
        assert rows[0]["icmp_type"] == str(ECHO)

    def test_write_jsonl(self, tmp_path):
        result = self._result()
        path = tmp_path / "scan.jsonl"
        result.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        parsed = json.loads(lines[-1])
        assert parsed["count"] == 50

    def test_merge_results(self):
        merged = merge_results("all", [self._result(), self._result()])
        assert merged.sent == 20
        assert len(merged.records) == 10

    def test_iter_router_ips_dedup_order(self):
        ips = list(iter_router_ips([self._result(), self._result()]))
        assert ips == [100, 101, 102, 103]


class TestTargetLists:
    def test_bgp_plain(self, tiny_world):
        targets = bgp_plain_targets(tiny_world.bgp)
        assert len(targets) == len(set(targets.targets))
        assert targets.name == "bgp-plain"

    def test_max_targets_cap(self, tiny_world):
        targets = bgp_plain_targets(tiny_world.bgp, max_targets=5)
        assert len(targets) == 5

    def test_bgp_slash48_inside_announcements(self, tiny_world):
        rng = random.Random(0)
        targets = bgp_slash48_targets(
            tiny_world.bgp, max_per_prefix=4, rng=rng
        )
        assert targets.subnet_length == 48
        from repro.addr.ipv6 import IPv6Prefix

        for target in list(targets)[:100]:
            # Either the target is routed, or it is the SRA of the /48
            # supernet of a more-specific (e.g. /52) announcement — the
            # paper's lifting rule produces those deliberately.
            slash48 = IPv6Prefix.of(target, 48)
            assert tiny_world.bgp.is_routed(target) or any(
                True for _ in tiny_world.bgp.more_specifics(slash48)
            )

    def test_bgp_slash64(self, tiny_world):
        rng = random.Random(0)
        targets = bgp_slash64_targets(tiny_world.bgp, max_per_prefix=4, rng=rng)
        assert targets.subnet_length == 64
        slash48s = tiny_world.bgp.prefixes_of_length(48)
        for target in targets:
            assert any(target in prefix for prefix in slash48s)

    def test_route6_targets(self, tiny_world):
        rng = random.Random(0)
        targets = route6_slash64_targets(
            tiny_world.irr, per_prefix=4, rng=rng, max_targets=100
        )
        assert len(targets) == 100

    def test_hitlist_targets(self, tiny_hitlist):
        targets = hitlist_slash64_targets(tiny_hitlist)
        assert len(targets) == len(set(targets.targets))
        for target in list(targets)[:50]:
            assert target & ((1 << 64) - 1) == 0

    def test_prefixes_of_targets(self, tiny_hitlist):
        targets = hitlist_slash64_targets(tiny_hitlist, max_targets=10)
        prefixes = prefixes_of_targets(targets)
        assert all(prefix.length == 64 for prefix in prefixes)

    def test_prefixes_of_targets_requires_length(self, tiny_world):
        with pytest.raises(ValueError):
            prefixes_of_targets(bgp_plain_targets(tiny_world.bgp))

    def test_sample(self, tiny_hitlist):
        targets = hitlist_slash64_targets(tiny_hitlist)
        sample = targets.sample(7, random.Random(1))
        assert len(sample) == 7
        assert set(sample.targets) <= set(targets.targets)

    def test_sample_covering_everything_returns_a_copy(self, tiny_hitlist):
        # Regression: sample(k >= len) used to return `self`, so mutating
        # the "sample" corrupted the original target list.
        targets = hitlist_slash64_targets(tiny_hitlist)
        original = list(targets.targets)
        sample = targets.sample(10**9, random.Random(1))
        assert sample is not targets
        assert sample.targets == original
        sample.targets.append(0)
        assert targets.targets == original


class TestScanConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScanConfig(pps=0)
        with pytest.raises(ValueError):
            ScanConfig(hop_limit=0)
        with pytest.raises(ValueError):
            ScanConfig(shard=2, shards=2)


class TestZMapScanner:
    def test_scan_probes_every_target_once(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=1000, seed=5))
        targets = list(bgp_plain_targets(tiny_world.bgp))
        result = scanner.scan(targets, name="t")
        assert result.sent == len(targets)
        assert engine.stats.probes == len(targets)

    def test_sharding_partitions_targets(self, tiny_world):
        targets = list(bgp_plain_targets(tiny_world.bgp))
        sent = 0
        for shard in range(3):
            engine = SimulationEngine(tiny_world, epoch=0)
            scanner = ZMapV6Scanner(
                engine, ScanConfig(pps=1000, seed=5, shard=shard, shards=3)
            )
            result = scanner.scan(targets, name=f"shard{shard}")
            sent += result.sent
        assert sent == len(targets)

    def test_permutation_off_is_sequential(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=1000, permute=False))
        order = list(scanner._probe_order(5))
        assert order == [0, 1, 2, 3, 4]

    def test_epoch_reseeds_order(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=1000, seed=5))
        order0 = list(scanner._probe_order(100))
        engine.new_epoch(1)
        order1 = list(scanner._probe_order(100))
        assert order0 != order1
        assert sorted(order0) == sorted(order1)

    def test_wire_format_equivalent_results(self, tiny_world):
        """The byte-accurate path must match every structured reply."""
        targets = list(bgp_plain_targets(tiny_world.bgp))[:60]
        fast = ZMapV6Scanner(
            SimulationEngine(tiny_world, epoch=3),
            ScanConfig(pps=1000, seed=5),
        ).scan(targets, name="fast", epoch=3)
        wire = ZMapV6Scanner(
            SimulationEngine(tiny_world, epoch=3),
            ScanConfig(pps=1000, seed=5, wire_format=True),
        ).scan(targets, name="wire", epoch=3)
        fast_rows = sorted((r.target, r.source, r.icmp_type) for r in fast.records)
        wire_rows = sorted((r.target, r.source, r.icmp_type) for r in wire.records)
        assert fast_rows == wire_rows

    def test_scan_times_follow_pps(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=100, seed=1))
        targets = list(bgp_plain_targets(tiny_world.bgp))[:10]
        result = scanner.scan(targets, name="paced")
        assert result.duration == pytest.approx(10 / 100)
        for record_ in result.records:
            assert 0 <= record_.time <= result.duration

    def test_loops_observed_counter(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=1000, seed=1))
        region = tiny_world.loop_regions[0]
        targets = [region.prefix.network | i for i in range(1, 30)]
        result = scanner.scan(targets, name="loops")
        assert result.loops_observed > 0


class TestTargetListIO:
    def test_save_load_roundtrip(self, tiny_hitlist, tmp_path):
        targets = hitlist_slash64_targets(tiny_hitlist, max_targets=200)
        path = tmp_path / "targets.txt"
        targets.save(path)
        loaded = type(targets).load(path, subnet_length=64)
        assert loaded.targets == targets.targets
        assert loaded.subnet_length == 64

    def test_load_skips_comments_and_dedups(self, tmp_path):
        from repro.scanner.targets import TargetList

        path = tmp_path / "t.txt"
        path.write_text("# header\n2001:db8::\n\n2001:db8::\n2001:db9::\n")
        loaded = TargetList.load(path)
        assert len(loaded) == 2

    def test_load_reports_bad_line(self, tmp_path):
        from repro.addr.ipv6 import AddressError
        from repro.scanner.targets import TargetList

        path = tmp_path / "bad.txt"
        path.write_text("2001:db8::\nnot-an-address\n")
        # The error must carry the file, the line number, and the
        # offending line text itself.
        with pytest.raises(AddressError, match=r"bad\.txt:2: 'not-an-address'"):
            TargetList.load(path)
