"""The reusable ProbeBackend contract suite.

Any probe backend — the stock ``sim``/``wire-sim``/``raw`` or an
extension — must honour one contract so the scanner, the sharded runner,
and the checkpoint journals can treat them interchangeably:

* it is registered (``backend_names()``) and declares its capability
  flags (``supports_columns``, ``deterministic``, ``requires_privilege``),
* its :class:`BackendSpec` round-trips: picklable, rebuildable via
  ``build_backend`` into an equivalent backend (what sharded pool
  workers do — no live backend ever crosses the pickle boundary),
* ``send_batch`` returns one outcome per probe, aligned with the
  requested targets/times/ids, and counts probes into ``stats``,
* every *deterministic* backend produces records, main-channel
  telemetry, and Prometheus output **byte-identical** to the ``sim``
  baseline, at 1, 4 and 8 shards (the property that makes the backend a
  pure execution dial, like batch size and shard count),
* privileged backends (``raw``) enrol for spec/validation only: they
  must be constructible and spec-checkable without ever opening a
  socket, and must refuse construction without explicit authorization.

Import the suite and parametrise it with :class:`BackendCase` rows::

    from backend_contract import BackendCase, BackendContract, default_cases

    @pytest.fixture(params=default_cases(), ids=lambda c: c.id)
    def backend_case(request):
        return request.param

    class TestContract(BackendContract):
        pass

``default_cases()`` enrols every registered backend automatically, so a
newly registered backend joins the suite for free.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import pytest

from repro.netsim.faults import ChaosEngine, FaultPlan, FaultyBackend
from repro.scanner.backends import (
    BackendAuthorizationError,
    ProbeBackend,
    ResilientBackend,
    RetryPolicy,
    backend_class,
    backend_names,
    build_backend,
    make_backend_spec,
)
from repro.scanner.records import record_jsonl_line
from repro.scanner.sharded import ShardedScanRunner
from repro.scanner.zmapv6 import ScanConfig
from repro.telemetry.scan import ScanTelemetry

# Epoch band for contract scans, clear of the campaigns', the race's,
# and the strategy contract's (5000s).
CASE_EPOCH = 7000
CASE_SEED = 5


@dataclass(frozen=True)
class BackendCase:
    """One parametrisation of the contract suite."""

    id: str
    name: str  # registered backend name
    # Privileged backends enrol for registration/spec/validation only:
    # probing them would touch real networks or need capabilities.
    probes: bool = True


def default_cases() -> list[BackendCase]:
    """Every registered backend; privileged ones spec/validation-only."""
    return [
        BackendCase(
            id=f"backend-{name}",
            name=name,
            probes=not backend_class(name).requires_privilege,
        )
        for name in backend_names()
    ]


def _build(case: BackendCase, world) -> ProbeBackend:
    """A fresh backend for a case, the way ScanConfig/workers build one."""
    if backend_class(case.name).requires_privilege:
        # Authorized construction, but never open(): the contract for
        # privileged backends is validation without sockets.
        spec = make_backend_spec(case.name, authorized=True)
    else:
        spec = ScanConfig(backend=case.name).backend_spec()
    return build_backend(spec, world=world, epoch=CASE_EPOCH)


def _world_targets(world, count: int = 64) -> list[int]:
    # bgp-plain probes prefix base addresses — the subnet-router anycast
    # targets that actually reply in the tiny world, so the byte-identity
    # checks below compare non-trivial record sets.
    from repro.scanner.cli import build_targets

    return list(
        build_targets(world, "bgp-plain", max_targets=count, seed=CASE_SEED)
    )


def _scan_output(
    world,
    backend_name: str,
    shards: int,
    *,
    retry_policy: "RetryPolicy | None" = None,
    chaos: "ChaosEngine | None" = None,
):
    """(records, main telemetry, Prometheus, result, telemetry facade) of
    one sharded scan — optionally under a resilience policy and a chaos
    plan (the first three entries are the byte-identity surfaces)."""
    targets = _world_targets(world, 96)
    telemetry = ScanTelemetry()
    runner = ShardedScanRunner(
        world, shards=shards, executor="thread", telemetry=telemetry, chaos=chaos
    )
    result = runner.scan(
        targets,
        ScanConfig(
            pps=10_000.0,
            seed=CASE_SEED,
            backend=backend_name,
            progress_every=25,
            retry_policy=retry_policy,
        ),
        name="backend-contract",
        epoch=CASE_EPOCH + 100,
    )
    records = "".join(record_jsonl_line(r) for r in result.records)
    assert records, "vacuous comparison: the contract scan got no replies"
    return records, telemetry.to_jsonl(), telemetry.to_prometheus(), result, telemetry


class BackendContract:
    """The suite.  Subclass it next to a ``backend_case`` fixture."""

    # -- registration + capabilities -- #

    def test_registered_with_capability_flags(self, backend_case):
        cls = backend_class(backend_case.name)
        assert issubclass(cls, ProbeBackend)
        assert cls.name == backend_case.name
        for flag in ("supports_columns", "deterministic", "requires_privilege"):
            assert isinstance(getattr(cls, flag), bool), flag
        # A backend that probes real networks can never be deterministic.
        if cls.requires_privilege:
            assert not cls.deterministic

    # -- spec round-trip -- #

    def test_spec_round_trip(self, backend_case, tiny_world):
        backend = _build(backend_case, tiny_world)
        spec = backend.spec()
        assert spec.name == backend_case.name
        # The spec is what crosses the pickle boundary to pool workers.
        assert pickle.loads(pickle.dumps(spec)) == spec
        rebuilt = build_backend(spec, world=tiny_world, epoch=CASE_EPOCH)
        assert type(rebuilt) is type(backend)
        assert rebuilt.spec() == spec
        rebuilt.close()
        backend.close()

    def test_spec_arguments_are_plain_data(self, backend_case, tiny_world):
        backend = _build(backend_case, tiny_world)
        for key, value in backend.spec().arguments().items():
            assert isinstance(key, str)
            assert isinstance(value, (str, bytes, int, float, bool, type(None)))
        backend.close()

    # -- probing: outcome alignment -- #

    def test_send_batch_aligns_outcomes(self, backend_case, tiny_world):
        if not backend_case.probes:
            pytest.skip("privileged backend: spec/validation only")
        backend = _build(backend_case, tiny_world)
        backend.open()
        try:
            backend.new_epoch(CASE_EPOCH)
            targets = _world_targets(tiny_world, 16)
            times = [index / 1000.0 for index in range(len(targets))]
            ids = [(CASE_EPOCH << 32) | index for index in range(len(targets))]
            outcomes = backend.send_batch(targets, times, probe_ids=ids)
            assert len(outcomes) == len(targets)
            for target, time, outcome in zip(targets, times, outcomes):
                assert outcome.target == target
                assert outcome.time == time
                assert outcome.epoch == CASE_EPOCH
            assert backend.stats.probes == len(targets)
        finally:
            backend.close()

    # -- privileged backends validate without sockets -- #

    def test_privileged_backend_requires_authorization(self, backend_case):
        cls = backend_class(backend_case.name)
        if not cls.requires_privilege:
            pytest.skip("unprivileged backend")
        with pytest.raises(BackendAuthorizationError):
            build_backend(make_backend_spec(backend_case.name))

    # -- deterministic backends are byte-identical to sim -- #

    @pytest.mark.parametrize("shards", (1, 4, 8))
    def test_byte_identical_to_sim_baseline(
        self, backend_case, tiny_world, shards
    ):
        """Records, main-channel telemetry, and Prometheus output of any
        deterministic backend equal the ``sim`` baseline's, bit for bit,
        at every shard count — backend choice is an execution dial, not
        an output dial."""
        if not backend_case.probes:
            pytest.skip("privileged backend: spec/validation only")
        if not backend_class(backend_case.name).deterministic:
            pytest.skip("non-deterministic backend")
        baseline = _scan_output(tiny_world, "sim", shards)
        got = _scan_output(tiny_world, backend_case.name, shards)
        assert got[0] == baseline[0], "records diverged from sim"
        assert got[1] == baseline[1], "telemetry events diverged from sim"
        assert got[2] == baseline[2], "Prometheus output diverged from sim"

    # -- resilience layer: every backend enrols under chaos -- #

    def _chaos_skip(self, backend_case):
        if not backend_case.probes:
            pytest.skip("privileged backend: spec/validation only")
        if not backend_class(backend_case.name).deterministic:
            pytest.skip("non-deterministic backend")

    @pytest.mark.parametrize("shards", (1, 4, 8))
    def test_resilient_wrapper_is_identity(
        self, backend_case, tiny_world, shards
    ):
        """With no injected faults the resilience wrapper changes nothing:
        records, main telemetry, and Prometheus are byte-identical to the
        policy-less scan at every shard count."""
        self._chaos_skip(backend_case)
        policy = RetryPolicy(
            max_retries=2, timeout=30.0, breaker_threshold=0.5
        )
        baseline = _scan_output(tiny_world, backend_case.name, shards)
        got = _scan_output(
            tiny_world, backend_case.name, shards, retry_policy=policy
        )
        assert got[0] == baseline[0], "records changed under the wrapper"
        assert got[1] == baseline[1], "telemetry changed under the wrapper"
        assert got[2] == baseline[2], "Prometheus changed under the wrapper"
        assert got[3].faulted_probes == 0

    def test_transient_faults_reproduce_fault_free_bytes(
        self, backend_case, tiny_world, tmp_path
    ):
        """Retried transient transport faults leave no trace on the
        deterministic surfaces: the record stream, main telemetry, and
        Prometheus export equal the fault-free run's, byte for byte."""
        self._chaos_skip(backend_case)
        policy = RetryPolicy(max_retries=3, backoff=0.0, seed=CASE_SEED)
        chaos = ChaosEngine(
            FaultPlan(
                seed=CASE_SEED,
                backend_error_probability=0.9,
                backend_error_attempts=1,
            )
        )
        baseline = _scan_output(
            tiny_world, backend_case.name, 4, retry_policy=policy
        )
        got = _scan_output(
            tiny_world, backend_case.name, 4, retry_policy=policy, chaos=chaos
        )
        telemetry = got[4]
        # Ops stream to disk first: CI uploads *.ops.jsonl on failure.
        telemetry.write_ops_jsonl(
            tmp_path / f"{backend_case.name}-transient.ops.jsonl"
        )
        assert got[0] == baseline[0], "records diverged under transient faults"
        assert got[1] == baseline[1], "telemetry diverged under transient faults"
        assert got[2] == baseline[2], "Prometheus diverged under transient faults"
        assert got[3].faulted_probes == 0
        # Non-vacuity: the chaos plan really injected (and the resilience
        # layer really retried) — visible on the ops channel only.
        ops = telemetry.to_ops_jsonl()
        assert '"backend_resilience"' in ops

    def test_permanent_faults_quarantine_honestly(
        self, backend_case, tiny_world, tmp_path
    ):
        """A permanently-dead shard transport quarantines instead of
        killing the scan: the run completes, the dead shard's probes are
        quiet rows counted by ``faulted_probes``, and the quarantine is
        visible on the ops channel."""
        self._chaos_skip(backend_case)
        policy = RetryPolicy(max_retries=1, backoff=0.0, seed=CASE_SEED)
        chaos = ChaosEngine(
            FaultPlan(
                seed=CASE_SEED,
                backend_error_shard=2,
                backend_error_attempts=None,
            )
        )
        records, _, _, result, telemetry = _scan_output(
            tiny_world, backend_case.name, 4, retry_policy=policy, chaos=chaos
        )
        telemetry.write_ops_jsonl(
            tmp_path / f"{backend_case.name}-permanent.ops.jsonl"
        )
        assert result.sent == 96, "quarantined probes must stay counted"
        assert result.faulted_probes == 24, "one dead shard of four"
        ops = telemetry.to_ops_jsonl()
        assert '"batch_quarantined"' in ops
        assert '"reason":"exhausted"' in ops

    def test_breaker_cycles_open_half_open_closed(
        self, backend_case, tiny_world
    ):
        """The circuit breaker walks its full state cycle over a transport
        that recovers: consecutive failures open it, the next batch
        fast-fails without touching the transport, cooldown expiry admits
        a half-open trial, and its success closes the breaker."""
        self._chaos_skip(backend_case)
        inner = _build(backend_case, tiny_world)
        faulty = FaultyBackend(
            inner,
            FaultPlan(backend_error_batches=2, backend_error_attempts=None),
        )
        clock = [0.0]
        policy = RetryPolicy(
            max_retries=0,
            backoff=0.0,
            max_split_depth=0,
            breaker_threshold=0.5,
            breaker_window=4,
            breaker_min_batches=2,
            breaker_cooldown=10.0,
        )
        backend = ResilientBackend(
            faulty, policy, sleep=lambda _delay: None, clock=lambda: clock[0]
        )
        backend.open()
        try:
            backend.new_epoch(CASE_EPOCH)
            targets = _world_targets(tiny_world, 16)
            batches = [targets[i : i + 4] for i in range(0, 16, 4)]
            times = [0.0, 0.001, 0.002, 0.003]
            outcomes = [backend.send_batch(batches[0], times)]
            assert backend.breaker.state == "closed"
            outcomes.append(backend.send_batch(batches[1], times))
            assert backend.breaker.state == "open"
            # Open breaker: quarantined without touching the transport.
            outcomes.append(backend.send_batch(batches[2], times))
            assert backend.resilience.breaker_fastfails == 1
            # Cooldown expiry -> half-open trial -> success closes it.
            clock[0] = 100.0
            outcomes.append(backend.send_batch(batches[3], times))
            assert backend.breaker.state == "closed"
            assert backend.resilience.transitions == [
                ("closed", "open"),
                ("open", "half-open"),
                ("half-open", "closed"),
            ]
            assert [len(batch) for batch in outcomes] == [4, 4, 4, 4]
            assert backend.resilience.faulted_probes == 12
            assert backend.resilience.quarantined_batches == 3
        finally:
            backend.close()
