"""Fault injection: the recovery paths, exercised deterministically.

Every failure mode the runner claims to survive is staged here with a
:class:`~repro.netsim.faults.ChaosEngine` and checked against a no-fault
run of the same scan: crashes at an exact probe index, retry budgets,
broken process pools (hard ``os._exit`` crashes), operator interrupts
with salvage, straggler shards, and sink write failures.  Fault draws
are keyed hashes of (seed, shard, attempt), so every one of these tests
reproduces from its seed alone.
"""

import random

import pytest

from repro.netsim.faults import (
    HARD_CRASH_EXIT,
    ChaosEngine,
    CrashingSequence,
    FailingSink,
    FaultPlan,
    InjectedCrash,
    InjectedSinkError,
    truncate_tail,
)
from repro.scanner.sharded import (
    ScanInterrupted,
    ShardedScanRunner,
    ShardFailedError,
)
from repro.scanner.stream import MemorySink
from repro.scanner.targets import bgp_slash48_targets
from repro.scanner.zmapv6 import ScanConfig
from repro.telemetry.scan import ScanTelemetry

CONFIG = ScanConfig(pps=200_000.0, seed=5)


@pytest.fixture(scope="module")
def fault_targets(tiny_world):
    return list(
        bgp_slash48_targets(
            tiny_world.bgp,
            max_per_prefix=8,
            max_targets=1_200,
            rng=random.Random(11),
        )
    )


def run_scan(world, targets, *, shards, chaos=None, retries=0, **kwargs):
    telemetry = ScanTelemetry()
    runner = ShardedScanRunner(
        world,
        shards=shards,
        executor=kwargs.pop("executor", "thread"),
        max_shard_retries=retries,
        retry_backoff=0.0,
    )
    result = runner.scan(
        targets,
        CONFIG,
        name="faulted",
        epoch=1,
        telemetry=telemetry,
        chaos=chaos,
        **kwargs,
    )
    return result, telemetry


class TestFaultPlanUnits:
    def test_empty_plan_injects_nothing(self):
        engine = ChaosEngine()
        targets = [1, 2, 3]
        assert engine.wrap_targets(targets, shard=0, attempt=0) is targets
        assert engine.wrap_sink(None) is None
        sink = MemorySink()
        assert engine.wrap_sink(sink) is sink
        assert not engine.wants_interrupt(100)

    def test_planned_crash_is_per_attempt(self):
        engine = ChaosEngine(
            plan=FaultPlan(crash_shard=2, crash_attempts=2)
        )
        assert engine.should_crash(2, 0)
        assert engine.should_crash(2, 1)
        assert not engine.should_crash(2, 2)
        assert not engine.should_crash(1, 0)

    def test_stochastic_crashes_are_deterministic(self):
        plan = FaultPlan(seed=3, crash_probability=0.5)
        first = [
            ChaosEngine(plan=plan).should_crash(shard, attempt)
            for shard in range(8)
            for attempt in range(3)
        ]
        second = [
            ChaosEngine(plan=plan).should_crash(shard, attempt)
            for shard in range(8)
            for attempt in range(3)
        ]
        assert first == second
        assert any(first) and not all(first)

    def test_crashing_sequence_counts_accesses(self):
        sequence = CrashingSequence([10, 20, 30, 40], at_probe=2, hard=False)
        assert len(sequence) == 4
        assert sequence[0] == 10
        assert sequence[3] == 40
        with pytest.raises(InjectedCrash, match="probe access"):
            sequence[1]

    def test_failing_sink_fails_after_n(self):
        inner = MemorySink()
        sink = FailingSink(inner, fail_after=2)
        sink.emit("a")
        sink.emit("b")
        assert sink.emitted == 2
        with pytest.raises(InjectedSinkError):
            sink.emit("c")
        assert inner.records == ["a", "b"]

    def test_truncate_tail(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_bytes(b"0123456789")
        truncate_tail(path, 4)
        assert path.read_bytes() == b"012345"
        truncate_tail(path, 100)
        assert path.read_bytes() == b""

    def test_hard_crash_exit_code_is_distinctive(self):
        assert HARD_CRASH_EXIT not in (0, 1, 2)


class TestCrashRetry:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_crashed_shard_retries_transparently(
        self, tiny_world, fault_targets, executor
    ):
        clean, clean_telemetry = run_scan(
            tiny_world, fault_targets, shards=4, retries=2, executor=executor
        )
        chaos = ChaosEngine(
            plan=FaultPlan(crash_shard=2, crash_at_probe=25, crash_attempts=2)
        )
        faulted, telemetry = run_scan(
            tiny_world,
            fault_targets,
            shards=4,
            retries=2,
            executor=executor,
            chaos=chaos,
        )
        assert faulted.records == clean.records
        assert faulted.engine_stats == clean.engine_stats
        # The deterministic channel is fault-invariant...
        assert telemetry.to_jsonl() == clean_telemetry.to_jsonl()
        assert telemetry.to_prometheus() == clean_telemetry.to_prometheus()
        # ...and the ops channel records exactly the injected retries.
        retried = [
            event
            for event in telemetry.ops_events
            if event["event"] == "shard_retried"
        ]
        assert [event["shard"] for event in retried] == [2, 2]
        assert [event["attempt"] for event in retried] == [1, 2]
        assert all("InjectedCrash" in event["error"] for event in retried)

    def test_retry_budget_exhaustion_raises(self, tiny_world, fault_targets):
        chaos = ChaosEngine(
            plan=FaultPlan(crash_shard=1, crash_at_probe=5, crash_attempts=99)
        )
        with pytest.raises(ShardFailedError, match="shard 1 failed 2"):
            run_scan(
                tiny_world, fault_targets, shards=4, retries=1, chaos=chaos
            )

    def test_zero_retry_budget_fails_fast(self, tiny_world, fault_targets):
        chaos = ChaosEngine(plan=FaultPlan(crash_shard=0, crash_at_probe=1))
        with pytest.raises(ShardFailedError) as excinfo:
            run_scan(tiny_world, fault_targets, shards=2, retries=0, chaos=chaos)
        assert excinfo.value.shard == 0
        assert isinstance(excinfo.value.error, InjectedCrash)

    def test_stochastic_crashes_recover(self, tiny_world, fault_targets):
        clean, _ = run_scan(tiny_world, fault_targets, shards=4, retries=3)
        # seed=4 fates shards 0/1/2 to crash on their first attempt and
        # every shard to succeed within the retry budget (keyed hashing
        # makes this a fixed property of the seed, not a flaky draw).
        chaos = ChaosEngine(
            plan=FaultPlan(seed=4, crash_probability=0.45)
        )
        faulted, telemetry = run_scan(
            tiny_world, fault_targets, shards=4, retries=3, chaos=chaos
        )
        assert faulted.records == clean.records
        # seed=7 at p=0.45 fates at least one (shard, attempt) to crash.
        assert any(
            event["event"] == "shard_retried"
            for event in telemetry.ops_events
        )

    def test_slow_shards_change_nothing(self, tiny_world, fault_targets):
        clean, _ = run_scan(tiny_world, fault_targets, shards=4)
        chaos = ChaosEngine(
            plan=FaultPlan(slow_shards={0: 0.05, 3: 0.1})
        )
        slowed, _ = run_scan(
            tiny_world, fault_targets, shards=4, retries=1, chaos=chaos
        )
        assert slowed.records == clean.records
        assert slowed.engine_stats == clean.engine_stats


class TestHardCrash:
    def test_hard_crash_breaks_pool_and_recovers(
        self, tiny_world, fault_targets
    ):
        """A worker dying mid-shard (os._exit, as a kill -9 would) breaks
        the pool; the next round's fresh pool completes the scan."""
        clean, _ = run_scan(
            tiny_world, fault_targets, shards=2, retries=2, executor="process"
        )
        chaos = ChaosEngine(
            plan=FaultPlan(
                crash_shard=1, crash_at_probe=10, crash_attempts=1, hard=True
            )
        )
        faulted, telemetry = run_scan(
            tiny_world,
            fault_targets,
            shards=2,
            retries=2,
            executor="process",
            chaos=chaos,
        )
        assert faulted.records == clean.records
        assert faulted.engine_stats == clean.engine_stats
        # Collateral shards on the broken pool may retry too; the planned
        # victim must be among them.
        retried = {
            event["shard"]
            for event in telemetry.ops_events
            if event["event"] == "shard_retried"
        }
        assert 1 in retried


class TestInterruptSalvage:
    def test_interrupt_salvages_completed_shards(
        self, tiny_world, fault_targets, tmp_path
    ):
        from repro.scanner.checkpoint import load_checkpoint

        checkpoint = tmp_path / "salvage.ckpt"
        telemetry = ScanTelemetry()
        runner = ShardedScanRunner(
            tiny_world, shards=4, executor="thread", retry_backoff=0.0
        )
        chaos = ChaosEngine(plan=FaultPlan(interrupt_after_shards=2))
        with pytest.raises(ScanInterrupted) as excinfo:
            runner.scan(
                fault_targets,
                CONFIG,
                name="salvage",
                epoch=1,
                telemetry=telemetry,
                checkpoint=checkpoint,
                chaos=chaos,
            )
        interrupted = excinfo.value
        assert interrupted.checkpoint_path == checkpoint
        assert interrupted.completed >= 2
        assert interrupted.remaining == 4 - interrupted.completed
        journal = load_checkpoint(checkpoint)
        assert journal.completed_shards == sorted(
            event["shard"]
            for event in telemetry.ops_events
            if event["event"] == "scan_checkpointed"
        )
        assert len(journal.remaining_shards) == interrupted.remaining

    def test_request_interrupt_before_scan(self, tiny_world, fault_targets):
        """A pre-set interrupt flag is cleared at scan start, not obeyed."""
        runner = ShardedScanRunner(tiny_world, shards=2, executor="thread")
        runner.request_interrupt()
        result = runner.scan(
            fault_targets,
            CONFIG,
            name="fresh",
            epoch=1,
            chaos=ChaosEngine(),
        )
        assert result.sent == len(fault_targets)

    def test_salvage_counter_on_resume(self, tiny_world, fault_targets, tmp_path):
        checkpoint = tmp_path / "count.ckpt"
        runner = ShardedScanRunner(
            tiny_world, shards=4, executor="thread", retry_backoff=0.0
        )
        with pytest.raises(ScanInterrupted):
            runner.scan(
                fault_targets,
                CONFIG,
                name="count",
                epoch=1,
                telemetry=ScanTelemetry(),
                checkpoint=checkpoint,
                chaos=ChaosEngine(plan=FaultPlan(interrupt_after_shards=2)),
            )
        telemetry = ScanTelemetry()
        ShardedScanRunner(tiny_world, shards=4, executor="thread").scan(
            fault_targets,
            CONFIG,
            name="count",
            epoch=1,
            telemetry=telemetry,
            checkpoint=checkpoint,
            resume=True,
        )
        resumed = [
            event
            for event in telemetry.ops_events
            if event["event"] == "scan_resumed"
        ]
        assert len(resumed) == 1
        assert resumed[0]["completed"] >= 2
        metrics = telemetry.to_ops_prometheus()
        assert "sra_scan_resumes_total 1" in metrics
        assert "sra_scan_shards_salvaged_total" in metrics


class TestArtifactWorldFaults:
    def test_crash_resume_against_artifact_world(
        self, tiny_world, fault_targets, tmp_path
    ):
        """Crash-resume over the zero-pickle worker path: shard workers
        bootstrap from a WorldRef (artifact path + fingerprint), a planned
        interrupt checkpoints the scan, and the resumed run completes
        byte-identically to an uninterrupted eager-world scan."""
        from repro.topology.config import tiny_config
        from repro.topology.generator import build_world_artifact

        world = build_world_artifact(
            tiny_config(seed=7), tmp_path / "faulted.sraw"
        )
        clean, _ = run_scan(
            tiny_world, fault_targets, shards=4, executor="process"
        )
        checkpoint = tmp_path / "artifact.ckpt"
        runner = ShardedScanRunner(
            world, shards=4, executor="process", retry_backoff=0.0
        )
        with pytest.raises(ScanInterrupted):
            runner.scan(
                fault_targets,
                CONFIG,
                name="faulted",
                epoch=1,
                telemetry=ScanTelemetry(),
                checkpoint=checkpoint,
                chaos=ChaosEngine(plan=FaultPlan(interrupt_after_shards=2)),
            )
        telemetry = ScanTelemetry()
        resumed = ShardedScanRunner(world, shards=4, executor="process").scan(
            fault_targets,
            CONFIG,
            name="faulted",
            epoch=1,
            telemetry=telemetry,
            checkpoint=checkpoint,
            resume=True,
        )
        assert resumed.records == clean.records
        assert resumed.engine_stats == clean.engine_stats
        assert any(
            event["event"] == "scan_resumed"
            for event in telemetry.ops_events
        )

    def test_hard_crash_recovers_on_artifact_world(
        self, fault_targets, tmp_path
    ):
        """A worker hard-crash breaks the pool; the recovery round's fresh
        pool re-resolves the WorldRef and completes the scan."""
        from repro.topology.config import tiny_config
        from repro.topology.generator import build_world_artifact

        world = build_world_artifact(
            tiny_config(seed=7), tmp_path / "crashy.sraw"
        )
        clean, _ = run_scan(
            world, fault_targets, shards=2, retries=2, executor="process"
        )
        chaos = ChaosEngine(
            plan=FaultPlan(
                crash_shard=1, crash_at_probe=10, crash_attempts=1, hard=True
            )
        )
        faulted, telemetry = run_scan(
            world,
            fault_targets,
            shards=2,
            retries=2,
            executor="process",
            chaos=chaos,
        )
        assert faulted.records == clean.records
        assert 1 in {
            event["shard"]
            for event in telemetry.ops_events
            if event["event"] == "shard_retried"
        }


class TestAdaptiveStrategyFaults:
    """Crash tolerance of feedback-driven discovery strategies.

    The invariant under test: a scan interrupted mid-epoch and resumed
    from its checkpoint journal reproduces the epoch's records
    byte-identically, so ``observe()`` folds the *same* record set into
    the feedback state — and every later window is unchanged.
    """

    @pytest.mark.parametrize(
        "name", ["hitlist-feedback", "entropy-clustered"]
    )
    def test_resume_reconstructs_identical_next_window(
        self, tiny_world, tmp_path, name
    ):
        from repro.scanner.strategies import build_strategy

        def fresh(executor="thread", **kwargs):
            return ShardedScanRunner(
                tiny_world,
                shards=4,
                executor=executor,
                retry_backoff=0.0,
                **kwargs,
            )

        def strategy():
            return build_strategy(name, tiny_world, seed=5, budget=400)

        # Clean reference: epoch 0 uninterrupted, observe, next window.
        clean = strategy()
        result = fresh().scan(
            clean.window(0),
            CONFIG,
            name=f"adaptive-{name}",
            epoch=1,
        )
        clean.observe(result.records)

        # Faulted run: interrupt after 2 of 4 shards with a checkpoint.
        checkpoint = tmp_path / f"{name}.ckpt"
        crashed = strategy()
        with pytest.raises(ScanInterrupted):
            fresh().scan(
                crashed.window(0),
                CONFIG,
                name=f"adaptive-{name}",
                epoch=1,
                checkpoint=checkpoint,
                chaos=ChaosEngine(plan=FaultPlan(interrupt_after_shards=2)),
            )
        # The crash wiped all in-memory state: rebuild the strategy cold
        # (epoch-0 windows are pure functions of the world, so the
        # journal's target fingerprint still matches) and resume.
        resumed = strategy()
        replayed = fresh().scan(
            resumed.window(0),
            CONFIG,
            name=f"adaptive-{name}",
            epoch=1,
            checkpoint=checkpoint,
            resume=True,
        )
        assert replayed.records == result.records
        resumed.observe(replayed.records)
        assert resumed.feedback_state() == clean.feedback_state()
        assert resumed.feedback_state()  # the scan actually taught it
        assert list(resumed.window(1)) == list(clean.window(1))
        assert resumed.window_spec(1) == clean.window_spec(1)

    def test_interrupted_race_resumes_to_identical_table(
        self, tiny_world, tmp_path
    ):
        """The acceptance criterion end to end: interrupt the race mid
        strategy, re-run the same command, get byte-identical JSONL."""
        from repro.experiments.strategy_race import run_strategy_race

        kwargs = dict(epochs=2, budget=200, seed=5)
        clean = run_strategy_race(tiny_world, **kwargs).to_table_jsonl()

        checkpoint_dir = str(tmp_path / "race-ckpt")

        class InterruptingRunner(ShardedScanRunner):
            """Injects one mid-scan interrupt into the Nth scan call."""

            def __init__(self, *args, interrupt_call, **kw):
                super().__init__(*args, **kw)
                self._calls = 0
                self._interrupt_call = interrupt_call

            def scan(self, *args, **kw):
                self._calls += 1
                if self._calls == self._interrupt_call:
                    kw["chaos"] = ChaosEngine(
                        plan=FaultPlan(interrupt_after_shards=2)
                    )
                return super().scan(*args, **kw)

        # Crash inside the 3rd scan — mid-way through the second
        # strategy, after adaptive feedback has already evolved.
        faulted_runner = InterruptingRunner(
            tiny_world,
            shards=4,
            executor="thread",
            retry_backoff=0.0,
            checkpoint_dir=checkpoint_dir,
            interrupt_call=3,
        )
        with pytest.raises(ScanInterrupted):
            run_strategy_race(tiny_world, runner=faulted_runner, **kwargs)

        # "Re-run the same command": a fresh runner over the same
        # checkpoint dir auto-resumes every journalled scan.
        resumed_runner = ShardedScanRunner(
            tiny_world,
            shards=4,
            executor="thread",
            checkpoint_dir=checkpoint_dir,
        )
        resumed = run_strategy_race(
            tiny_world, runner=resumed_runner, **kwargs
        )
        assert resumed.to_table_jsonl() == clean


class TestSinkFaults:
    def test_sink_failure_surfaces_and_aborts_cleanly(
        self, tiny_world, fault_targets, tmp_path
    ):
        from repro.scanner.stream import JsonlSink

        path = tmp_path / "out.jsonl"
        sink = JsonlSink(path)
        chaos = ChaosEngine(plan=FaultPlan(sink_fail_after=5))
        runner = ShardedScanRunner(tiny_world, shards=2, executor="thread")
        with pytest.raises(InjectedSinkError):
            try:
                runner.scan(
                    fault_targets,
                    CONFIG,
                    name="sinkfail",
                    epoch=1,
                    sink=chaos.wrap_sink(sink),
                    chaos=chaos,
                )
            finally:
                sink.abort()
        # The destination was never promoted: only the .partial remains.
        assert not path.exists()
        partial = path.with_name(path.name + ".partial")
        assert partial.exists()
