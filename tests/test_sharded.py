"""Sharded parallel scan execution: partitioning, merge, determinism."""

import random

import pytest

from repro.core.survey import SRASurvey, SurveyConfig
from repro.datasets.tum import harvest_hitlist, published_alias_list
from repro.netsim.engine import EngineStats, SimulationEngine
from repro.scanner.pacing import paced_pps
from repro.scanner.records import (
    ScanRecord,
    ScanResult,
    merge_engine_stats,
    merge_results,
)
from repro.scanner.sharded import (
    ShardedScanRunner,
    auto_shard_count,
    merge_shard_outcomes,
    scan_shard,
)
from repro.scanner.targets import bgp_plain_targets, bgp_slash48_targets
from repro.scanner.zmapv6 import ScanConfig, ZMapV6Scanner


@pytest.fixture(scope="module")
def stress_targets(tiny_world):
    """Targets that exercise every stateful engine path: enough error
    traffic to saturate RFC 4443 buckets, plus loop-region addresses."""
    targets = list(
        bgp_slash48_targets(
            tiny_world.bgp,
            max_per_prefix=16,
            max_targets=2_500,
            rng=random.Random(0),
        )
    )
    region = tiny_world.loop_regions[0]
    targets.extend(region.prefix.network | offset for offset in range(1, 40))
    return targets


def serial_scan(world, targets, *, epoch, pps=200_000.0, seed=5):
    engine = SimulationEngine(world, epoch=epoch)
    scanner = ZMapV6Scanner(engine, ScanConfig(pps=pps, seed=seed))
    return scanner.scan(targets, name="scan", epoch=epoch)


class TestShardPartitioning:
    """Per-shard index streams are pairwise disjoint and cover range(size)."""

    @pytest.mark.parametrize("permute", [True, False])
    @pytest.mark.parametrize(
        "size,shards", [(1, 2), (10, 3), (97, 4), (256, 2), (500, 7)]
    )
    def test_disjoint_cover(self, tiny_world, size, shards, permute):
        streams = []
        for shard in range(shards):
            engine = SimulationEngine(tiny_world, epoch=0)
            scanner = ZMapV6Scanner(
                engine,
                ScanConfig(
                    pps=1000, seed=9, shard=shard, shards=shards, permute=permute
                ),
            )
            streams.append(list(scanner._probe_order(size)))
        seen = set()
        for stream in streams:
            as_set = set(stream)
            assert len(as_set) == len(stream)  # no duplicates within a shard
            assert not (as_set & seen)  # pairwise disjoint
            seen |= as_set
        assert seen == set(range(size))  # union is exactly the index space

    def test_positions_interleave_serial_order(self, tiny_world):
        """Concatenating shard streams by global position reproduces the
        serial visit order exactly."""
        size, shards = 200, 3
        serial_engine = SimulationEngine(tiny_world, epoch=0)
        serial = list(
            ZMapV6Scanner(
                serial_engine, ScanConfig(pps=1000, seed=9)
            )._probe_positions(size)
        )
        sharded = []
        for shard in range(shards):
            engine = SimulationEngine(tiny_world, epoch=0)
            scanner = ZMapV6Scanner(
                engine, ScanConfig(pps=1000, seed=9, shard=shard, shards=shards)
            )
            sharded.extend(scanner._probe_positions(size))
        assert sorted(sharded) == serial


class TestScanConfigValidation:
    def test_zero_shards_has_its_own_error(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ScanConfig(shards=0)

    def test_negative_shards(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ScanConfig(shards=-3)

    def test_shard_range_still_checked(self):
        with pytest.raises(ValueError, match=r"shard must be in \[0, shards\)"):
            ScanConfig(shard=2, shards=2)


class TestPacedPps:
    def test_caps_at_ceiling(self):
        assert paced_pps(10**9, 6.0, 50_000.0) == 50_000.0

    def test_floors_at_minimum(self):
        assert paced_pps(10, 6.0, 50_000.0) == 100.0

    def test_zero_duration_disables_pacing(self):
        assert paced_pps(1000, 0.0, 50_000.0) == 50_000.0
        assert paced_pps(1000, -1.0, 50_000.0) == 50_000.0

    def test_no_targets_disables_pacing(self):
        assert paced_pps(0, 6.0, 50_000.0) == 50_000.0

    def test_paces_to_duration(self):
        assert paced_pps(6000, 6.0, 50_000.0) == pytest.approx(1000.0)

    @pytest.mark.parametrize("ceiling", [0.0, -1.0, -50_000.0])
    def test_nonpositive_ceiling_raises(self, ceiling):
        """A zero/negative ceiling used to leak through as a nonsense
        probe rate; now it is rejected at the door."""
        with pytest.raises(ValueError, match="ceiling must be positive"):
            paced_pps(1000, 6.0, ceiling)
        # Even in the "pacing disabled" corners the ceiling is validated.
        with pytest.raises(ValueError, match="ceiling must be positive"):
            paced_pps(0, 6.0, ceiling)
        with pytest.raises(ValueError, match="ceiling must be positive"):
            paced_pps(1000, 0.0, ceiling)


class TestMergeResults:
    def _result(self, *, epoch, duration, sent=4):
        result = ScanResult(name="shard", epoch=epoch, sent=sent, duration=duration)
        result.records = [
            ScanRecord(target=1, source=2, icmp_type=129, code=0, time=0.1)
        ]
        return result

    def test_duration_is_max_not_sum(self):
        merged = merge_results(
            "all",
            [
                self._result(epoch=3, duration=2.0),
                self._result(epoch=3, duration=5.0),
                self._result(epoch=3, duration=1.0),
            ],
        )
        assert merged.duration == 5.0

    def test_epoch_preserved(self):
        merged = merge_results(
            "all",
            [self._result(epoch=7, duration=1.0), self._result(epoch=7, duration=2.0)],
        )
        assert merged.epoch == 7

    def test_counters_still_sum(self):
        merged = merge_results(
            "all",
            [self._result(epoch=0, duration=1.0), self._result(epoch=0, duration=1.0)],
        )
        assert merged.sent == 8
        assert len(merged.records) == 2

    def test_engine_stats_summed(self):
        first = self._result(epoch=0, duration=1.0)
        second = self._result(epoch=0, duration=1.0)
        first.engine_stats = EngineStats(probes=10, suppressed_errors=2)
        second.engine_stats = EngineStats(probes=5, suppressed_errors=1)
        merged = merge_results("all", [first, second])
        assert merged.engine_stats == EngineStats(probes=15, suppressed_errors=3)

    def test_empty_merge(self):
        merged = merge_results("all", [])
        assert merged.sent == 0 and merged.epoch == 0 and merged.duration == 0.0

    def test_stats_less_inputs_mixed_with_stats_bearing(self):
        with_stats = self._result(epoch=0, duration=1.0)
        with_stats.engine_stats = EngineStats(probes=4, echo_replies=2)
        without_stats = self._result(epoch=0, duration=1.0)
        assert without_stats.engine_stats is None
        merged = merge_results("all", [without_stats, with_stats])
        # None inputs are skipped, not treated as zeros that poison the sum
        assert merged.engine_stats == EngineStats(probes=4, echo_replies=2)

    def test_all_inputs_stats_less_leaves_none(self):
        merged = merge_results(
            "all",
            [self._result(epoch=0, duration=1.0) for _ in range(3)],
        )
        assert merged.engine_stats is None

    def test_generator_input(self):
        merged = merge_results(
            "all",
            (self._result(epoch=2, duration=float(i)) for i in range(3)),
        )
        assert merged.sent == 12
        assert merged.duration == 2.0
        assert merged.epoch == 2


class TestMergeEngineStats:
    def test_empty_iterable_yields_zero_stats(self):
        assert merge_engine_stats([]) == EngineStats()
        assert merge_engine_stats(iter([])) == EngineStats()

    def test_single_input_copies_not_aliases(self):
        original = EngineStats(probes=7, lost=1)
        merged = merge_engine_stats([original])
        assert merged == original
        assert merged is not original
        merged.probes += 1
        assert original.probes == 7

    def test_inputs_never_mutated(self):
        first = EngineStats(probes=1, error_replies=2)
        second = EngineStats(probes=3, suppressed_errors=4)
        merge_engine_stats([first, second])
        assert first == EngineStats(probes=1, error_replies=2)
        assert second == EngineStats(probes=3, suppressed_errors=4)

    def test_every_field_sums(self):
        first = EngineStats(
            probes=1, lost=2, echo_replies=3, error_replies=4,
            suppressed_errors=5, loops_hit=6, amplified_replies=7,
        )
        merged = merge_engine_stats([first, first, first])
        assert merged == EngineStats(
            probes=3, lost=6, echo_replies=9, error_replies=12,
            suppressed_errors=15, loops_hit=18, amplified_replies=21,
        )

    def test_generator_input(self):
        merged = merge_engine_stats(
            EngineStats(probes=i) for i in range(4)
        )
        assert merged.probes == 6


class TestDeterminism:
    """A sharded run is bit-for-bit identical to the serial run."""

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_identical_to_serial(self, tiny_world, stress_targets, shards, executor):
        serial = serial_scan(tiny_world, stress_targets, epoch=2)
        # The scan must actually exercise the stateful rate limiter and the
        # loop amplifier, else this test proves nothing.
        assert serial.engine_stats.suppressed_errors > 0
        assert serial.loops_observed > 0
        runner = ShardedScanRunner(tiny_world, shards=shards, executor=executor)
        merged = runner.scan(
            stress_targets, ScanConfig(pps=200_000.0, seed=5), name="scan", epoch=2
        )
        assert merged.records == serial.records  # full record list, in order
        assert merged.sources() == serial.sources()
        assert merged.sent == serial.sent
        assert merged.lost == serial.lost
        assert merged.loops_observed == serial.loops_observed
        assert merged.duration == serial.duration
        assert merged.epoch == serial.epoch
        assert merged.engine_stats == serial.engine_stats

    def test_identical_across_epochs(self, tiny_world, stress_targets):
        for epoch in (0, 1, 4):
            serial = serial_scan(tiny_world, stress_targets, epoch=epoch)
            runner = ShardedScanRunner(tiny_world, shards=3, executor="thread")
            merged = runner.scan(
                stress_targets,
                ScanConfig(pps=200_000.0, seed=5),
                name="scan",
                epoch=epoch,
            )
            assert merged.records == serial.records

    def test_process_pool_identical(self, tiny_world):
        targets = list(bgp_plain_targets(tiny_world.bgp))[:300]
        serial = serial_scan(tiny_world, targets, epoch=1, pps=50_000.0)
        runner = ShardedScanRunner(tiny_world, shards=2, executor="process")
        merged = runner.scan(
            targets, ScanConfig(pps=50_000.0, seed=5), name="scan", epoch=1
        )
        assert merged.records == serial.records

    def test_process_pool_ships_stream_spec(self, tiny_world):
        """A spec-carrying stream crosses the pool as its recipe: workers
        rebuild the targets from the world and the results still match a
        serial scan of the materialised list."""
        from repro.scanner.cli import build_targets

        stream = build_targets(
            tiny_world, "bgp-48", max_targets=400, seed=21
        )
        assert stream.spec() is not None
        serial = serial_scan(
            tiny_world, list(stream), epoch=1, pps=50_000.0
        )
        runner = ShardedScanRunner(tiny_world, shards=2, executor="process")
        merged = runner.scan(
            stream, ScanConfig(pps=50_000.0, seed=5), name="scan", epoch=1
        )
        assert merged.records == serial.records
        assert merged.sent == serial.sent
        assert merged.engine_stats == serial.engine_stats

    def test_single_shard_short_circuits(self, tiny_world, stress_targets):
        serial = serial_scan(tiny_world, stress_targets, epoch=0)
        runner = ShardedScanRunner(tiny_world, shards=1)
        merged = runner.scan(
            stress_targets, ScanConfig(pps=200_000.0, seed=5), name="scan", epoch=0
        )
        assert merged.records == serial.records

    def test_more_shards_than_targets(self, tiny_world):
        targets = list(bgp_plain_targets(tiny_world.bgp))[:3]
        serial = serial_scan(tiny_world, targets, epoch=0, pps=1000.0)
        runner = ShardedScanRunner(tiny_world, shards=8, executor="serial")
        merged = runner.scan(
            targets, ScanConfig(pps=1000.0, seed=5), name="scan", epoch=0
        )
        assert merged.records == serial.records
        assert merged.sent == len(targets)

    def test_empty_targets(self, tiny_world):
        runner = ShardedScanRunner(tiny_world, shards=4, executor="serial")
        merged = runner.scan([], ScanConfig(pps=1000.0), name="scan", epoch=0)
        assert merged.sent == 0 and merged.records == []


class TestShardPrimitives:
    def test_scan_shard_records_checks(self, tiny_world, stress_targets):
        outcome = scan_shard(
            tiny_world,
            ScanConfig(pps=200_000.0, seed=5),
            stress_targets,
            name="scan",
            epoch=2,
            shard=0,
            shards=2,
        )
        assert outcome.shard == 0
        assert outcome.checks  # deferred rate-limit checks were recorded
        # Deferred mode never suppresses during the shard run itself.
        assert outcome.stats.suppressed_errors == 0
        times = [time for time, _ in outcome.checks]
        assert times == sorted(times)

    def test_merge_applies_rate_limit(self, tiny_world, stress_targets):
        outcomes = [
            scan_shard(
                tiny_world,
                ScanConfig(pps=200_000.0, seed=5),
                stress_targets,
                name="scan",
                epoch=2,
                shard=shard,
                shards=2,
            )
            for shard in range(2)
        ]
        merged = merge_shard_outcomes(
            tiny_world, outcomes, name="scan", epoch=2
        )
        assert merged.engine_stats.suppressed_errors > 0
        provisional = sum(len(o.result.records) for o in outcomes)
        assert len(merged.records) == provisional  # records already pruned

    def test_auto_shard_count_bounds(self):
        assert 1 <= auto_shard_count() <= 8

    def test_invalid_executor_rejected(self, tiny_world):
        with pytest.raises(ValueError, match="executor"):
            ShardedScanRunner(tiny_world, shards=2, executor="rocket")

    def test_invalid_shards_rejected(self, tiny_world):
        with pytest.raises(ValueError, match="shards"):
            ShardedScanRunner(tiny_world, shards=0)


class TestWindowValidation:
    """``merge_shard_outcomes`` must refuse anything but an exact tiling
    of the permutation — a gap or overlap would merge into a plausible
    but silently wrong result (the crash-recovery failure mode)."""

    @pytest.fixture(scope="class")
    def outcomes(self, tiny_world, stress_targets):
        return [
            scan_shard(
                tiny_world,
                ScanConfig(pps=200_000.0, seed=5),
                stress_targets,
                name="scan",
                epoch=2,
                shard=shard,
                shards=3,
            )
            for shard in range(3)
        ]

    def test_exact_tiling_merges(self, tiny_world, outcomes):
        merged = merge_shard_outcomes(
            tiny_world, outcomes, name="scan", epoch=2
        )
        assert merged.sent > 0

    def test_empty_outcomes_rejected(self, tiny_world):
        with pytest.raises(ValueError, match="no shard outcomes"):
            merge_shard_outcomes(tiny_world, [], name="scan", epoch=2)

    def test_gap_rejected(self, tiny_world, outcomes):
        with pytest.raises(ValueError, match=r"gaps.*missing shard\(s\) \[1\]"):
            merge_shard_outcomes(
                tiny_world,
                [outcomes[0], outcomes[2]],
                name="scan",
                epoch=2,
            )

    def test_overlap_rejected(self, tiny_world, outcomes):
        with pytest.raises(ValueError, match="overlapping shard windows"):
            merge_shard_outcomes(
                tiny_world,
                [outcomes[0], outcomes[0], outcomes[1], outcomes[2]],
                name="scan",
                epoch=2,
            )

    def test_denominator_mismatch_rejected(
        self, tiny_world, stress_targets, outcomes
    ):
        foreign = scan_shard(
            tiny_world,
            ScanConfig(pps=200_000.0, seed=5),
            stress_targets,
            name="scan",
            epoch=2,
            shard=1,
            shards=4,
        )
        with pytest.raises(ValueError, match="window mismatch"):
            merge_shard_outcomes(
                tiny_world,
                [outcomes[0], foreign, outcomes[2]],
                name="scan",
                epoch=2,
            )

    def test_out_of_range_shard_rejected(self, tiny_world, outcomes):
        from dataclasses import replace as dc_replace

        rogue = dc_replace(outcomes[1], shard=7)
        with pytest.raises(ValueError, match="outside the"):
            merge_shard_outcomes(
                tiny_world,
                [outcomes[0], rogue, outcomes[2]],
                name="scan",
                epoch=2,
            )


class TestShmRingTransport:
    """The shared-memory shard→merge channel: payload fidelity, segment
    lifetime, pickle fallback, and parent-side transport accounting."""

    def _outcome(self, world, targets, shard=0, shards=2):
        return scan_shard(
            world,
            ScanConfig(pps=200_000.0, seed=5),
            targets,
            name="scan",
            epoch=2,
            shard=shard,
            shards=shards,
        )

    @staticmethod
    def _segment_gone(name):
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_pack_drain_round_trip(self, tiny_world, stress_targets):
        from repro.scanner.shmring import (
            RingStats,
            drain_outcome,
            pack_outcome,
        )

        outcome = self._outcome(tiny_world, stress_targets)
        expected_records = list(outcome.result.records)
        expected_checks = list(outcome.checks)
        assert expected_records and expected_checks

        assert pack_outcome(outcome) is True
        # The payload now lives in the frame, not the pickled outcome.
        assert outcome.result.records == []
        assert outcome.checks == []
        assert outcome.ring is not None
        assert outcome.ring.records == len(expected_records)
        assert outcome.ring.checks == len(expected_checks)
        name = outcome.ring.name

        stats = RingStats()
        drain_outcome(outcome, stats)
        assert outcome.result.records == expected_records
        assert outcome.checks == expected_checks
        assert outcome.ring is None
        assert stats.segments == 1
        assert stats.records == len(expected_records)
        assert stats.checks == len(expected_checks)
        assert stats.bytes > 0
        assert stats.fallbacks == 0
        self._segment_gone(name)  # parent unlinked on drain

    def test_drain_is_idempotent(self, tiny_world, stress_targets):
        from repro.scanner.shmring import (
            RingStats,
            drain_outcome,
            pack_outcome,
        )

        outcome = self._outcome(tiny_world, stress_targets)
        expected = list(outcome.result.records)
        pack_outcome(outcome)
        stats = RingStats()
        drain_outcome(outcome, stats)
        drain_outcome(outcome, stats)  # no frame left: must be a no-op
        assert outcome.result.records == expected
        assert stats.segments == 1

    def test_unavailable_platform_falls_back_to_pickle(
        self, tiny_world, stress_targets, monkeypatch
    ):
        from repro.scanner import shmring

        monkeypatch.setattr(shmring, "shared_memory", None)
        assert not shmring.ring_available()
        outcome = self._outcome(tiny_world, stress_targets)
        expected = list(outcome.result.records)
        assert shmring.pack_outcome(outcome) is False
        # Fallback leaves the payload on the ordinary pickled path.
        assert outcome.ring is None
        assert outcome.ring_fallback is True
        assert outcome.result.records == expected
        monkeypatch.undo()
        stats = shmring.RingStats()
        shmring.drain_outcome(outcome, stats)
        assert outcome.result.records == expected
        assert stats.fallbacks == 1
        assert stats.segments == 0

    def test_release_unlinks_undrained_frame(self, tiny_world, stress_targets):
        from repro.scanner.shmring import pack_outcome, release_outcome

        outcome = self._outcome(tiny_world, stress_targets)
        pack_outcome(outcome)
        name = outcome.ring.name
        release_outcome(outcome)
        assert outcome.ring is None
        self._segment_gone(name)
        release_outcome(outcome)  # second release is a harmless no-op

    def test_process_pool_rides_the_ring(self, tiny_world):
        """End to end: a process-pool scan ships every shard through the
        ring (no fallbacks), matches the serial scan byte for byte, and
        leaves nothing behind in shared memory."""
        targets = list(bgp_plain_targets(tiny_world.bgp))[:300]
        serial = serial_scan(tiny_world, targets, epoch=1, pps=50_000.0)
        runner = ShardedScanRunner(tiny_world, shards=2, executor="process")
        merged = runner.scan(
            targets, ScanConfig(pps=50_000.0, seed=5), name="scan", epoch=1
        )
        assert merged.records == serial.records
        assert merged.engine_stats == serial.engine_stats
        stats = runner.ring_stats
        assert stats.segments == 2
        assert stats.fallbacks == 0
        # Frames carry the shards' provisional records; the merge then
        # prunes the ones the serial-order rate limiter suppresses.
        assert stats.records == (
            len(serial.records) + serial.engine_stats.suppressed_errors
        )
        assert stats.bytes > 0

    def test_thread_executor_never_packs(self, tiny_world, stress_targets):
        """Same-process shards have nothing to transport: the ring stays
        untouched and results are unchanged."""
        runner = ShardedScanRunner(tiny_world, shards=3, executor="thread")
        runner.scan(
            stress_targets,
            ScanConfig(pps=200_000.0, seed=5),
            name="scan",
            epoch=2,
        )
        assert runner.ring_stats.segments == 0
        assert runner.ring_stats.fallbacks == 0


class TestSurveyParallel:
    def test_sharded_survey_matches_serial(self, tiny_world):
        hitlist = harvest_hitlist(tiny_world, seed=97)
        alias_list = published_alias_list(tiny_world, seed=101)

        def run(shards):
            config = SurveyConfig(
                seed=11,
                max_bgp_48=2_000,
                max_bgp_64=2_000,
                max_route6=2_000,
                max_hitlist=2_000,
                shards=shards,
                parallel="thread",
            )
            return SRASurvey(
                tiny_world, hitlist, alias_list=alias_list, config=config
            ).run()

        serial = run(1)
        sharded = run(3)
        assert sharded.table2_rows() == serial.table2_rows()
        for name, result in serial.input_sets.items():
            other = sharded.input_sets[name]
            assert other.result.records == result.result.records
            assert other.router_ips == result.router_ips


class TestRunnerCLI:
    def test_experiment_ids_deduped_in_order(self):
        from repro.experiments.runner import resolve_experiment_ids

        assert resolve_experiment_ids(["table2", "table2"]) == ["table2"]
        assert resolve_experiment_ids(["fig5", "table2", "fig5"]) == [
            "fig5",
            "table2",
        ]

    def test_all_expands_sorted(self):
        from repro.experiments.runner import EXPERIMENTS, resolve_experiment_ids

        assert resolve_experiment_ids(["all"]) == sorted(EXPERIMENTS)
        assert resolve_experiment_ids([]) == sorted(EXPERIMENTS)

    def test_unknown_id_raises(self):
        from repro.experiments.runner import resolve_experiment_ids

        with pytest.raises(ValueError, match="unknown experiment"):
            resolve_experiment_ids(["table99"])

    def test_sra_scan_cli_sharded(self, capsys):
        from repro.scanner import cli

        code = cli.main(
            [
                "--world",
                "tiny",
                "--seed",
                "7",
                "--input-set",
                "bgp-plain",
                "--shards",
                "2",
                "--parallel",
                "thread",
                "--summary",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards     : 2 (thread)" in out
