"""Tests for ASN/prefix stability analysis and null-route config rendering."""

import pytest

from repro.addr.ipv6 import IPv6Prefix
from repro.analysis.asn_stability import SetStability, asn_stability
from repro.bgp.table import Announcement, BGPTable
from repro.packet.icmpv6 import ICMPv6Type
from repro.scanner.records import ScanRecord, ScanResult
from repro.topology.entities import LoopRegion
from repro.topology.mitigation import render_null_route_config


class TestSetStability:
    def test_persistence(self):
        stability = SetStability()
        stability.add({1, 2, 3})
        stability.add({2, 3, 4})
        stability.add({2, 3, 4})
        assert stability.persistence() == [pytest.approx(2 / 3), 1.0]

    def test_stable_core(self):
        stability = SetStability()
        stability.add({1, 2, 3})
        stability.add({2, 3, 4})
        assert stability.stable_core_share() == pytest.approx(2 / 4)

    def test_empty(self):
        stability = SetStability()
        assert stability.persistence() == []
        assert stability.stable_core_share() == 0.0
        assert stability.mean_persistence() == 0.0


class TestASNStability:
    def _scan(self, sources):
        result = ScanResult(name="x", sent=len(sources))
        result.records = [
            ScanRecord(
                target=i,
                source=source,
                icmp_type=int(ICMPv6Type.ECHO_REPLY),
                code=0,
            )
            for i, source in enumerate(sources)
        ]
        return result

    def test_maps_to_prefixes_and_asns(self):
        p1 = IPv6Prefix.parse("2001:db8::/32")
        p2 = IPv6Prefix.parse("2001:db9::/32")
        bgp = BGPTable([Announcement(p1, 1), Announcement(p2, 2)])
        scans = [
            self._scan([p1.network + 1, p2.network + 1]),
            self._scan([p1.network + 2, p2.network + 9]),
            self._scan([p1.network + 3]),
        ]
        report = asn_stability(scans, bgp)
        summary = report.summary()
        # Prefixes persist fully scan-to-scan (same /32s observed).
        assert summary["prefix_persistence"] == 1.0
        # The AS core across all scans is {1} of union {1, 2}.
        assert summary["asn_stable_core"] == pytest.approx(0.5)

    def test_unrouted_sources_ignored(self):
        bgp = BGPTable([Announcement(IPv6Prefix.parse("2001:db8::/32"), 1)])
        report = asn_stability([self._scan([0x3BAD << 112])], bgp)
        assert report.asns.sets == [set()]

    def test_stability_on_real_series(self, quick_context):
        report = asn_stability(
            [scan.result for scan in quick_context.fig5_series.sra],
            quick_context.world.bgp,
        )
        summary = report.summary()
        # Paper: ~87 % prefixes unchanged, stable AS set ~96 %.
        assert summary["prefix_persistence"] > 0.8
        assert summary["asn_persistence"] > 0.85


class TestNullRouteConfig:
    def _region(self):
        return LoopRegion(
            prefix=IPv6Prefix.parse("2001:db8:4000::/34"),
            asn=1,
            customer_router_id=1,
            provider_router_id=2,
        )

    def test_cisco_syntax(self):
        config = render_null_route_config(self._region(), "cisco")
        assert config == "ipv6 route 2001:db8:4000::/34 Null0"

    def test_juniper_syntax(self):
        config = render_null_route_config(self._region(), "juniper")
        assert "aggregate route 2001:db8:4000::/34" in config

    def test_unknown_vendor(self):
        with pytest.raises(ValueError):
            render_null_route_config(self._region(), "bird")
