"""Telemetry subsystem tests: metrics, events, facade, wiring, CLIs.

The golden-file regression suite lives in ``test_telemetry_golden.py``
and the batch/shard invariance suite in ``test_hotpath_determinism.py``;
this file covers the unit semantics and the CLI surface.
"""

import json

import pytest

from repro.core.survey import SRASurvey, SurveyConfig
from repro.netsim.engine import SimulationEngine
from repro.scanner.cli import main as scan_main
from repro.scanner.sharded import ShardedScanRunner
from repro.scanner.zmapv6 import ScanConfig, ZMapV6Scanner
from repro.telemetry import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    Counter,
    Histogram,
    MetricsRegistry,
    ScanTelemetry,
    make_event,
)
from repro.telemetry.metrics import format_number
from repro.telemetry.scan import ENGINE_STAT_COUNTERS


class TestFormatNumber:
    def test_integral_floats_print_as_ints(self):
        assert format_number(5.0) == "5"
        assert format_number(0.0) == "0"
        assert format_number(-3.0) == "-3"

    def test_non_integral_floats_use_repr(self):
        assert format_number(0.25) == "0.25"

    def test_ints_pass_through(self):
        assert format_number(7) == "7"

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            format_number(float("nan"))

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            format_number(True)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestHistogram:
    def test_le_bucket_semantics(self):
        hist = Histogram("h", edges=(1.0, 2.0))
        hist.observe(1.0)  # le="1" bucket (inclusive upper bound)
        hist.observe(1.5)
        hist.observe(99.0)  # +Inf bucket
        assert hist.counts == [1, 1, 1]
        assert hist.cumulative() == [1, 2, 3]
        assert hist.total == 3

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", edges=())

    def test_negative_count_retracts(self):
        hist = Histogram("h", edges=(1.0,))
        hist.observe(0.5)
        hist.observe(0.5, count=-1)
        assert hist.counts == [0, 0]
        assert hist.total == 0
        assert hist.sum == 0.0

    def test_sum_is_order_invariant(self):
        # The whole point of the exact accumulator: shard merges add
        # observations in a different order than a serial scan.
        values = [0.1, 0.2, 0.3, 1e-9, 7.7] * 20
        forward = Histogram("h", edges=(1.0,))
        backward = Histogram("h", edges=(1.0,))
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        assert forward.sum == backward.sum


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")
        with pytest.raises(TypeError):
            registry.histogram("a", (1.0,))

    def test_histogram_edge_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))

    def test_merge_semantics(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c").inc(2)
        right.counter("c").inc(3)
        left.gauge("g").set(5.0)
        right.gauge("g").set(2.0)
        left.histogram("h", (1.0,)).observe(0.5)
        right.histogram("h", (1.0,)).observe(2.5)
        right.counter("only_right").inc(9)
        left.merge(right)
        assert left.counter("c").value == 5
        assert left.gauge("g").value == 5.0  # max wins
        assert left.get("h").counts == [1, 1]
        assert left.counter("only_right").value == 9

    def test_prometheus_export_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("zzz", "last").inc(1)
        registry.gauge("aaa", "first").set(2.5)
        registry.histogram("mmm", (1.0,), "mid").observe(0.5)
        text = registry.to_prometheus()
        assert text == registry.to_prometheus()
        names = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE")
        ]
        assert names == sorted(names)
        assert 'mmm_bucket{le="1"} 1' in text
        assert 'mmm_bucket{le="+Inf"} 1' in text
        assert "mmm_sum 0.5" in text
        assert "mmm_count 1" in text

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestEvents:
    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError):
            make_event("bogus", scan="s", epoch=0, vtime=0.0)

    def test_schema_version_stamped(self):
        event = make_event("progress", scan="s", epoch=0, vtime=1.0, shard=0)
        assert event["schema"] == SCHEMA_VERSION
        assert event["event"] in EVENT_TYPES

    def test_facade_assigns_sequential_seq(self):
        telemetry = ScanTelemetry()
        for vtime in (3.0, 1.0):
            telemetry.emit(
                make_event("progress", scan="s", epoch=0, vtime=vtime, shard=0)
            )
        assert [event["seq"] for event in telemetry.events] == [0, 1]

    def test_emit_sorted_orders_by_virtual_time(self):
        telemetry = ScanTelemetry()
        body = [
            make_event("progress", scan="s", epoch=0, vtime=2.0, shard=1),
            make_event("loop_detected", scan="s", epoch=0, vtime=0.5, router=9),
            make_event("progress", scan="s", epoch=0, vtime=2.0, shard=0),
        ]
        telemetry.emit_sorted(body)
        assert [event["vtime"] for event in telemetry.events] == [0.5, 2.0, 2.0]
        # ties break on (event kind, shard) so the order is total
        assert [event.get("shard") for event in telemetry.events] == [None, 0, 1]

    def test_jsonl_lines_have_sorted_keys(self):
        telemetry = ScanTelemetry()
        telemetry.emit(
            make_event("progress", scan="s", epoch=0, vtime=1.0, shard=0)
        )
        line = telemetry.to_jsonl().rstrip("\n")
        parsed = json.loads(line)
        assert list(parsed) == sorted(parsed)
        assert telemetry.to_jsonl().endswith("\n")


class TestScanTelemetryFacade:
    def _scan(self, world, targets, telemetry, **overrides):
        config = ScanConfig(
            pps=2_000.0, seed=5, progress_every=100, **overrides
        )
        engine = SimulationEngine(world, epoch=1)
        scanner = ZMapV6Scanner(engine, config, telemetry=telemetry)
        return scanner.scan(targets, name="facade", epoch=1)

    @pytest.fixture(scope="class")
    def run(self, tiny_world, tiny_hitlist):
        telemetry = ScanTelemetry()
        targets = list(tiny_hitlist)[:400]
        result = self._scan(tiny_world, targets, telemetry)
        return telemetry, result

    def test_stream_brackets_the_scan(self, run):
        telemetry, _ = run
        assert telemetry.events[0]["event"] == "scan_started"
        assert telemetry.events[-1]["event"] == "scan_finished"

    def test_scan_finished_mirrors_result(self, run):
        telemetry, result = run
        finished = telemetry.events[-1]
        assert finished["sent"] == result.sent
        assert finished["records"] == len(result.records)
        assert finished["stats"]["probes"] == result.engine_stats.probes

    def test_registry_mirrors_engine_stats(self, run):
        telemetry, result = run
        for field_name, (metric_name, _) in ENGINE_STAT_COUNTERS.items():
            assert telemetry.registry.counter(metric_name).value == getattr(
                result.engine_stats, field_name
            ), metric_name
        assert telemetry.registry.counter("sra_scans_total").value == 1
        assert (
            telemetry.registry.gauge("sra_scan_last_duration_seconds").value
            == result.duration
        )

    def test_progress_cadence(self, run):
        telemetry, result = run
        progress = [e for e in telemetry.events if e["event"] == "progress"]
        assert len(progress) == result.sent // 100
        assert [e["sent"] for e in progress] == [
            100 * (i + 1) for i in range(len(progress))
        ]

    def test_telemetry_off_leaves_no_trace(self, tiny_world, tiny_hitlist):
        targets = list(tiny_hitlist)[:100]
        engine = SimulationEngine(tiny_world, epoch=1)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=2_000.0, seed=5))
        scanner.scan(targets, name="quiet", epoch=1)
        assert scanner.last_capture is None
        assert engine.telemetry is None

    def test_shared_facade_accumulates_across_scans(
        self, tiny_world, tiny_hitlist
    ):
        telemetry = ScanTelemetry()
        targets = list(tiny_hitlist)[:150]
        self._scan(tiny_world, targets, telemetry)
        self._scan(tiny_world, targets, telemetry)
        assert telemetry.registry.counter("sra_scans_total").value == 2
        starts = [
            e for e in telemetry.events if e["event"] == "scan_started"
        ]
        assert len(starts) == 2
        assert [e["seq"] for e in telemetry.events] == list(
            range(len(telemetry.events))
        )


class TestShardedTelemetry:
    def test_sharded_runner_emits_shard_finished(
        self, tiny_world, tiny_hitlist
    ):
        telemetry = ScanTelemetry()
        runner = ShardedScanRunner(
            tiny_world, shards=3, executor="serial", telemetry=telemetry
        )
        targets = list(tiny_hitlist)[:300]
        result = runner.scan(
            targets, ScanConfig(pps=2_000.0, seed=5), name="scan", epoch=0
        )
        finished = [
            e for e in telemetry.events if e["event"] == "shard_finished"
        ]
        assert [e["shard"] for e in finished] == [0, 1, 2]
        assert sum(e["sent"] for e in finished) == result.sent
        assert sum(e["records"] for e in finished) == len(result.records)
        assert telemetry.registry.counter("sra_scans_total").value == 1

    def test_per_call_telemetry_overrides_runner_default(
        self, tiny_world, tiny_hitlist
    ):
        default = ScanTelemetry()
        override = ScanTelemetry()
        runner = ShardedScanRunner(
            tiny_world, shards=2, executor="serial", telemetry=default
        )
        targets = list(tiny_hitlist)[:100]
        runner.scan(
            targets,
            ScanConfig(pps=2_000.0, seed=5),
            name="scan",
            epoch=0,
            telemetry=override,
        )
        assert not default.events
        assert override.events


class TestSurveyTelemetry:
    def test_survey_config_creates_facade_and_covers_all_input_sets(
        self, tiny_world, tiny_hitlist, tiny_alias_list
    ):
        config = SurveyConfig(
            seed=13,
            slash48_per_prefix=4,
            max_bgp_48=400,
            slash64_per_prefix=4,
            max_bgp_64=400,
            route6_per_prefix=2,
            max_route6=400,
            max_hitlist=400,
            telemetry=True,
            shards=1,
            parallel="serial",
        )
        survey = SRASurvey(
            tiny_world, tiny_hitlist, alias_list=tiny_alias_list, config=config
        )
        assert survey.telemetry is not None
        survey.run()
        scans = {
            e["scan"]
            for e in survey.telemetry.events
            if e["event"] == "scan_started"
        }
        assert scans == {
            "bgp-plain",
            "bgp-48",
            "bgp-64",
            "route6-64",
            "hitlist-64",
        }
        assert survey.telemetry.registry.counter("sra_scans_total").value == 5


class TestScanCLI:
    ARGS = ["--seed", "7", "--input-set", "bgp-plain", "--max-targets", "200"]

    def test_telemetry_flags_write_sinks(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        code = scan_main(
            self.ARGS
            + [
                "--telemetry-out",
                str(events_path),
                "--metrics-out",
                str(metrics_path),
                "--progress-every",
                "50",
            ]
        )
        assert code == 0
        lines = events_path.read_text().splitlines()
        assert json.loads(lines[0])["event"] == "scan_started"
        assert json.loads(lines[-1])["event"] == "scan_finished"
        assert "sra_scans_total 1" in metrics_path.read_text()

    def test_missing_output_directory_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "does-not-exist" / "out.csv"
        code = scan_main(self.ARGS + ["--output", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "--output" in err

    def test_missing_telemetry_directory_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "nope" / "events.jsonl"
        code = scan_main(self.ARGS + ["--telemetry-out", str(bad)])
        assert code == 2
        assert "--telemetry-out" in capsys.readouterr().err


class TestReproCLI:
    def test_missing_telemetry_directory_exits_2(self, tmp_path, capsys):
        from repro.experiments.runner import main as repro_main

        bad = tmp_path / "nope" / "events.jsonl"
        code = repro_main(["table2", "--telemetry-out", str(bad)])
        assert code == 2
        assert "--telemetry-out" in capsys.readouterr().err

    def test_telemetry_flags_write_sinks(
        self, tmp_path, monkeypatch, tiny_world, tiny_hitlist
    ):
        from repro.experiments import runner as runner_mod
        from repro.experiments.world import ExperimentContext, quick_scale

        targets = list(tiny_hitlist)[:120]

        def fake_experiment(context):
            scans = ShardedScanRunner(
                tiny_world,
                shards=2,
                executor="serial",
                telemetry=context.telemetry,
            )
            scans.scan(
                targets,
                ScanConfig(pps=1_000.0, seed=3, progress_every=40),
                name="fake",
                epoch=0,
            )
            return "fake-report"

        monkeypatch.setattr(
            runner_mod,
            "get_context",
            lambda *args, **kwargs: ExperimentContext(scale=quick_scale()),
        )
        monkeypatch.setitem(runner_mod.EXPERIMENTS, "table2", fake_experiment)
        events_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        code = runner_mod.main(
            [
                "table2",
                "--telemetry-out",
                str(events_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        lines = events_path.read_text().splitlines()
        kinds = [json.loads(line)["event"] for line in lines]
        assert kinds[0] == "scan_started"
        assert "shard_finished" in kinds
        assert kinds[-1] == "scan_finished"
        assert "sra_scans_total 1" in metrics_path.read_text()
