"""Discovery strategies and the strategy race.

Pins the comparative claims and the determinism contract:

* the race table is identical serial vs 1/4/8-shard execution,
* SRA anycast probing out-discovers the field on the same budget (the
  paper's core comparison, at test scale),
* adaptive feedback is a pure, order-independent function of the record
  set and round-trips through ``feedback_state``/``restore``,
* the telescope classifies routed vs dark probes against the BGP table,
* ``sra-scan --strategy`` and ``sra-repro strategy-race`` drive the same
  machinery end to end.
"""

import json

import pytest

from repro.scanner.sharded import ShardedScanRunner
from repro.scanner.strategies import (
    Telescope,
    TelescopeReport,
    build_strategy,
    register_strategy,
    strategy_names,
)
from repro.scanner.strategies.base import TargetStrategy
from repro.scanner.strategies.entropy import nybble_entropy, subnet_id_of
from repro.scanner.zmapv6 import ScanConfig
from repro.experiments.strategy_race import (
    RaceResult,
    format_race_table,
    run_strategy_race,
)

RACE_KW = dict(epochs=2, budget=200, seed=5)


@pytest.fixture(scope="module")
def serial_race(tiny_world):
    return run_strategy_race(tiny_world, **RACE_KW)


class TestRegistry:
    def test_builtin_strategies_registered(self):
        assert strategy_names() == (
            "entropy-clustered",
            "hitlist-feedback",
            "random-baseline",
            "sra-anycast",
        )

    def test_unknown_strategy_raises(self, tiny_world):
        with pytest.raises(ValueError, match="unknown strategy"):
            build_strategy("dfs", tiny_world)

    def test_bad_budget_raises(self, tiny_world):
        with pytest.raises(ValueError, match="budget"):
            build_strategy("sra-anycast", tiny_world, budget=0)

    def test_register_requires_real_name(self):
        with pytest.raises(ValueError, match="real name"):

            @register_strategy
            class Nameless(TargetStrategy):  # noqa: F811 - test local
                def targets_for(self, epoch):
                    return []

    def test_static_strategy_rejects_foreign_state(self, tiny_world):
        strategy = build_strategy("sra-anycast", tiny_world, budget=10)
        strategy.restore(())  # empty state is fine
        with pytest.raises(ValueError, match="no feedback state"):
            strategy.restore((1, 2))


class TestWindows:
    def test_windows_respect_budget_and_dedup(self, tiny_world):
        for name in strategy_names():
            strategy = build_strategy(name, tiny_world, seed=5, budget=150)
            for epoch in (0, 1):
                window = list(strategy.window(epoch))
                assert 0 < len(window) <= 150, (name, epoch)
                assert len(set(window)) == len(window), (name, epoch)

    def test_windows_are_deterministic_per_instance(self, tiny_world):
        for name in strategy_names():
            first = build_strategy(name, tiny_world, seed=5, budget=100)
            second = build_strategy(name, tiny_world, seed=5, budget=100)
            assert list(first.window(0)) == list(second.window(0)), name
            assert list(first.window(1)) == list(second.window(1)), name

    def test_seed_changes_randomised_windows(self, tiny_world):
        a = build_strategy("random-baseline", tiny_world, seed=1, budget=100)
        b = build_strategy("random-baseline", tiny_world, seed=2, budget=100)
        assert list(a.window(0)) != list(b.window(0))


class TestAdaptiveFeedback:
    @pytest.mark.parametrize(
        "name", ["hitlist-feedback", "entropy-clustered"]
    )
    def test_observe_is_order_independent(self, tiny_world, name):
        runner = ShardedScanRunner(tiny_world, shards=1, executor="serial")
        strategy = build_strategy(name, tiny_world, seed=5, budget=200)
        result = runner.scan(
            strategy.window(0),
            ScanConfig(pps=10_000.0, seed=5),
            name=f"feedback-{name}",
            epoch=4000,
        )
        forward = build_strategy(name, tiny_world, seed=5, budget=200)
        forward.observe(result.records)
        reversed_ = build_strategy(name, tiny_world, seed=5, budget=200)
        reversed_.observe(list(reversed(result.records)))
        assert forward.feedback_state() == reversed_.feedback_state()
        assert forward.feedback_state()  # the scan must actually teach it
        assert list(forward.window(1)) == list(reversed_.window(1))

    @pytest.mark.parametrize(
        "name", ["hitlist-feedback", "entropy-clustered"]
    )
    def test_state_round_trips_through_restore(self, tiny_world, name):
        runner = ShardedScanRunner(tiny_world, shards=1, executor="serial")
        taught = build_strategy(name, tiny_world, seed=5, budget=200)
        result = runner.scan(
            taught.window(0),
            ScanConfig(pps=10_000.0, seed=5),
            name=f"restore-{name}",
            epoch=4100,
        )
        taught.observe(result.records)
        cold = build_strategy(name, tiny_world, seed=5, budget=200)
        cold.restore(taught.feedback_state())
        assert cold.feedback_state() == taught.feedback_state()
        assert list(cold.window(1)) == list(taught.window(1))

    def test_window_spec_carries_feedback(self, tiny_world):
        """The spec a pool worker receives embeds the evolved state."""
        from repro.scanner.stream import build_stream

        runner = ShardedScanRunner(tiny_world, shards=1, executor="serial")
        strategy = build_strategy(
            "hitlist-feedback", tiny_world, seed=5, budget=200
        )
        result = runner.scan(
            strategy.window(0),
            ScanConfig(pps=10_000.0, seed=5),
            name="spec-feedback",
            epoch=4200,
        )
        strategy.observe(result.records)
        window = strategy.window(1)
        spec = window.spec()
        assert spec.arguments()["feedback"] == strategy.feedback_state()
        assert list(build_stream(spec, tiny_world)) == list(window)


class TestEntropyUnits:
    def test_nybble_entropy_bounds(self):
        uniform = list(range(16))  # one of each nybble value
        assert nybble_entropy([sid << 12 for sid in uniform], 12) == 4.0
        assert nybble_entropy([7, 7, 7], 0) == 0.0
        assert nybble_entropy([], 0) == 0.0

    def test_subnet_id_of(self):
        address = (0x2001_0DB8 << 96) | (0xBEEF << 64)
        assert subnet_id_of(address) == 0xBEEF


class TestTelescope:
    def test_classifies_routed_vs_dark(self, tiny_world):
        routed = [
            prefix.network
            for prefix in list(tiny_world.bgp.prefixes())[:5]
        ]
        dark = [(0x3FFF << 112) | (i << 64) for i in range(7)]
        telescope = Telescope(tiny_world)
        report = telescope.observe_window(
            routed + dark, strategy="probe", epoch=0
        )
        assert report.probes == len(routed) + len(dark)
        assert report.routed == len(routed)
        assert report.dark == len(dark)
        assert report.dark_share == pytest.approx(7 / 12)
        # All synthetic dark probes share one /32.
        assert len(telescope.dark_regions) == 1

    def test_empty_window(self, tiny_world):
        report = Telescope(tiny_world).observe_window(
            [], strategy="probe", epoch=0
        )
        assert report == TelescopeReport(strategy="probe", epoch=0)
        assert report.dark_share == 0.0


class TestRace:
    def test_serial_and_sharded_races_are_identical(
        self, tiny_world, serial_race
    ):
        """The acceptance criterion: one table, any shard count."""
        tables = {None: serial_race.to_table_jsonl()}
        for shards in (1, 4, 8):
            runner = ShardedScanRunner(
                tiny_world, shards=shards, executor="thread"
            )
            race = run_strategy_race(tiny_world, runner=runner, **RACE_KW)
            tables[shards] = race.to_table_jsonl()
        assert len(set(tables.values())) == 1

    def test_every_strategy_raced_every_epoch(self, serial_race):
        seen = {(row.strategy, row.epoch) for row in serial_race.rows}
        assert seen == {
            (name, epoch)
            for name in strategy_names()
            for epoch in range(RACE_KW["epochs"])
        }
        assert {s.strategy for s in serial_race.summaries} == set(
            strategy_names()
        )

    def test_sra_wins_the_race(self, serial_race):
        """The paper's claim, at test scale: SRA probing discovers at
        least as many router IPs as every alternative on the same
        budget, and far more than the random control."""
        sra = serial_race.summary_for("sra-anycast")
        for summary in serial_race.summaries:
            assert sra.router_ips >= summary.router_ips, summary.strategy
        random_ = serial_race.summary_for("random-baseline")
        assert sra.router_ips > random_.router_ips
        assert sra.mean_overlap > random_.mean_overlap

    def test_budgets_are_enforced(self, serial_race):
        for row in serial_race.rows:
            assert row.targets <= RACE_KW["budget"]
        for summary in serial_race.summaries:
            assert summary.probes <= RACE_KW["budget"] * RACE_KW["epochs"]

    def test_table_jsonl_shape(self, serial_race):
        lines = serial_race.to_table_jsonl().splitlines()
        rows = [json.loads(line) for line in lines]
        kinds = [row["kind"] for row in rows]
        expected_epochs = len(strategy_names()) * RACE_KW["epochs"]
        assert kinds == ["epoch"] * expected_epochs + ["summary"] * len(
            strategy_names()
        )
        assert format_race_table(serial_race).count("\n") >= len(lines)

    def test_summary_for_unknown_raises(self, serial_race):
        with pytest.raises(KeyError):
            serial_race.summary_for("nope")

    def test_bad_epochs_raises(self, tiny_world):
        with pytest.raises(ValueError, match="at least one epoch"):
            run_strategy_race(tiny_world, epochs=0)

    def test_telemetry_counters_match_table(self, tiny_world):
        from repro.telemetry.scan import ScanTelemetry

        telemetry = ScanTelemetry()
        race = run_strategy_race(
            tiny_world, telemetry=telemetry, **RACE_KW
        )
        prometheus = telemetry.to_prometheus()
        for summary in race.summaries:
            slug = summary.strategy.replace("-", "_")
            assert (
                f"sra_strategy_{slug}_windows_total {race.epochs}"
                in prometheus
            )
            assert (
                f"sra_strategy_{slug}_probes_total {summary.probes}"
                in prometheus
            )
            assert (
                f"sra_strategy_{slug}_discoveries_total "
                f"{summary.router_ips}" in prometheus
            )
        events = [
            event
            for event in telemetry.events
            if event["event"] == "strategy_window"
        ]
        assert len(events) == len(race.rows)
        for event, row in zip(events, race.rows):
            assert event["scan"] == row.strategy
            assert event["targets"] == row.targets
            assert event["new_router_ips"] == row.new_router_ips


class TestRaceExperiment:
    def test_report_shape(self, quick_context):
        from repro.experiments.runner import run_experiment

        report = run_experiment("strategy-race", quick_context)
        assert report.experiment_id == "strategy-race"
        assert isinstance(quick_context.strategy_race, RaceResult)
        assert report.data["table_jsonl"]
        assert "sra-anycast" in report.text
        rows = report.data["rows"]
        assert len(rows) == len(strategy_names()) * quick_context.scale.race_epochs

    def test_report_artifacts_written(self, quick_context, tmp_path):
        from repro.experiments.runner import (
            run_experiment,
            write_report_artifacts,
        )

        report = run_experiment("strategy-race", quick_context)
        written = write_report_artifacts(report, tmp_path / "reports")
        names = {path.name for path in written}
        assert names == {"strategy-race.txt", "strategy-race.jsonl"}
        table = (tmp_path / "reports" / "strategy-race.jsonl").read_text()
        assert table == report.data["table_jsonl"]


class TestStrategyCLI:
    def test_strategy_scan_end_to_end(self, tmp_path, capsys):
        from repro.scanner.cli import main

        jsonl = tmp_path / "out.jsonl"
        code = main(
            [
                "--strategy", "hitlist-feedback",
                "--strategy-epochs", "2",
                "--strategy-budget", "150",
                "--seed", "7",
                "--shards", "2",
                "--parallel", "thread",
                "--jsonl", str(jsonl),
                "--summary",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy   : hitlist-feedback (2 epochs x 150 budget)" in out
        assert "epoch 1" in out
        assert jsonl.read_text().startswith("{")

    def test_strategy_flags_require_strategy(self, capsys):
        from repro.scanner.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--strategy-budget", "10"])
        assert excinfo.value.code == 2
        assert "requires --strategy" in capsys.readouterr().err

    def test_strategy_rejects_streaming_and_pcap(self, capsys):
        from repro.scanner.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "--strategy", "sra-anycast",
                    "--stream-records",
                    "--no-alias-filter",
                    "--jsonl", "x.jsonl",
                ]
            )
        assert "incompatible" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["--strategy", "sra-anycast", "--pcap", "x.pcap"])
        assert "--pcap" in capsys.readouterr().err
