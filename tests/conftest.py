"""Shared fixtures: session-scoped worlds so tests don't rebuild them."""

from __future__ import annotations

import pytest

from repro.datasets.tum import harvest_hitlist, published_alias_list
from repro.netsim.engine import SimulationEngine
from repro.topology.config import tiny_config
from repro.topology.generator import build_world


@pytest.fixture(scope="session")
def tiny_world():
    """A small deterministic world shared by the whole test session.

    Tests must not mutate it; mutation tests build their own world.
    """
    return build_world(tiny_config(seed=7))


@pytest.fixture(scope="session")
def tiny_hitlist(tiny_world):
    return harvest_hitlist(tiny_world, seed=97)


@pytest.fixture(scope="session")
def tiny_alias_list(tiny_world):
    return published_alias_list(tiny_world, seed=101)


@pytest.fixture()
def engine(tiny_world):
    """A fresh engine per test (buckets are mutable state)."""
    return SimulationEngine(tiny_world, epoch=0)


@pytest.fixture(scope="session")
def quick_context():
    """The quick experiment context (shared; experiments cache inside)."""
    from repro.experiments.world import get_context

    return get_context("quick")
