"""Golden-file regression tests for the telemetry sinks.

A fixed-seed Table 2 mini-survey must emit byte-identical JSONL events
and Prometheus text, forever.  The goldens under ``tests/goldens/`` pin
the schema *and* the simulation: any change to event fields, metric
names, number formatting, or scan behaviour shows up as a diff here.

Regenerate deliberately (after verifying the change is intended) with::

    PYTHONPATH=src python tests/test_telemetry_golden.py --regenerate
"""

from pathlib import Path

from repro.core.survey import SRASurvey, SurveyConfig

GOLDEN_DIR = Path(__file__).parent / "goldens"
EVENTS_GOLDEN = GOLDEN_DIR / "table2_mini.events.jsonl"
METRICS_GOLDEN = GOLDEN_DIR / "table2_mini.metrics.prom"

# Small enough to run in ~a second, large enough that every input set
# scans, the rate limiter engages, and the progress cadence fires.
MINI_BUDGETS = dict(
    seed=13,
    slash48_per_prefix=4,
    max_bgp_48=600,
    slash64_per_prefix=4,
    max_bgp_64=500,
    route6_per_prefix=2,
    max_route6=600,
    max_hitlist=600,
    telemetry=True,
    progress_every=200,
    shards=1,
    parallel="serial",
)


def run_mini_survey(world, hitlist, alias_list):
    """The exact survey the goldens were generated from."""
    survey = SRASurvey(
        world,
        hitlist,
        alias_list=alias_list,
        config=SurveyConfig(**MINI_BUDGETS),
    )
    survey.run()
    return survey.telemetry


class TestTelemetryGoldens:
    def test_jsonl_events_match_golden(
        self, tiny_world, tiny_hitlist, tiny_alias_list
    ):
        telemetry = run_mini_survey(tiny_world, tiny_hitlist, tiny_alias_list)
        assert telemetry.to_jsonl() == EVENTS_GOLDEN.read_text()

    def test_prometheus_matches_golden(
        self, tiny_world, tiny_hitlist, tiny_alias_list
    ):
        telemetry = run_mini_survey(tiny_world, tiny_hitlist, tiny_alias_list)
        assert telemetry.to_prometheus() == METRICS_GOLDEN.read_text()

    def test_goldens_exercise_the_interesting_paths(self):
        """The pinned stream must actually cover the event vocabulary —
        a golden of nothing would regress silently."""
        text = EVENTS_GOLDEN.read_text()
        for kind in ("scan_started", "progress", "loop_detected",
                     "rate_limit_engaged", "scan_finished"):
            assert f'"event":"{kind}"' in text, kind
        assert "sra_scans_total 5" in METRICS_GOLDEN.read_text()


def _regenerate() -> None:
    from repro.datasets.tum import harvest_hitlist, published_alias_list
    from repro.topology.config import tiny_config
    from repro.topology.generator import build_world

    world = build_world(tiny_config(seed=7))
    hitlist = harvest_hitlist(world, seed=97)
    alias_list = published_alias_list(world, seed=101)
    telemetry = run_mini_survey(world, hitlist, alias_list)
    GOLDEN_DIR.mkdir(exist_ok=True)
    EVENTS_GOLDEN.write_text(telemetry.to_jsonl())
    METRICS_GOLDEN.write_text(telemetry.to_prometheus())
    print(f"wrote {EVENTS_GOLDEN} ({len(telemetry.events)} events)")
    print(f"wrote {METRICS_GOLDEN} ({len(telemetry.registry)} metrics)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
