"""The scan checkpoint journal: round-trips, integrity, and exit codes.

The journal's contract has three parts, each pinned here:

* a saved checkpoint loads back to an equal checkpoint (including
  hypothesis-generated identity fields and real shard outcomes);
* any damage — truncation, bit-flips, foreign files, schema skew, or a
  journal from a different scan — raises a typed ``CheckpointError``
  at load/validate time, never a partially-valid checkpoint;
* the CLIs surface those errors as exit code 4 with a one-line stderr
  message and no traceback.
"""

import random
import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.faults import truncate_tail
from repro.scanner.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointSchemaError,
    ScanCheckpoint,
    config_key,
    load_checkpoint,
    restore_telemetry,
    save_checkpoint,
    snapshot_telemetry,
    target_fingerprint,
)
from repro.scanner.sharded import scan_shard
from repro.scanner.targets import bgp_plain_targets
from repro.scanner.zmapv6 import ScanConfig
from repro.telemetry.scan import ScanTelemetry


def make_checkpoint(**overrides) -> ScanCheckpoint:
    fields = dict(
        name="survey",
        epoch=3,
        shards=4,
        scan_key=config_key(ScanConfig(pps=50_000.0, seed=9)),
        target_count=1_000,
        fingerprint=0xDEADBEEF,
    )
    fields.update(overrides)
    return ScanCheckpoint(**fields)


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        path = tmp_path / "scan.ckpt"
        checkpoint = make_checkpoint()
        save_checkpoint(checkpoint, path)
        loaded = load_checkpoint(path)
        assert loaded == checkpoint

    def test_round_trip_with_real_outcomes(self, tiny_world, tmp_path):
        targets = bgp_plain_targets(tiny_world.bgp, max_targets=300)
        config = ScanConfig(pps=100_000.0, seed=4)
        outcome = scan_shard(
            tiny_world,
            config,
            targets,
            name="rt",
            epoch=1,
            shard=0,
            shards=2,
        )
        checkpoint = make_checkpoint(
            name="rt",
            epoch=1,
            shards=2,
            scan_key=config_key(config),
            target_count=len(targets),
            fingerprint=target_fingerprint(targets),
            outcomes={0: outcome},
            sink_offset=1234,
        )
        path = tmp_path / "rt.ckpt"
        save_checkpoint(checkpoint, path)
        loaded = load_checkpoint(path)
        assert loaded.completed_shards == [0]
        assert loaded.remaining_shards == [1]
        assert loaded.sink_offset == 1234
        got = loaded.outcomes[0]
        assert got.result.records == outcome.result.records
        assert got.checks == outcome.checks
        assert got.stats == outcome.stats

    @settings(max_examples=25, deadline=None)
    @given(
        name=st.text(min_size=1, max_size=30),
        epoch=st.integers(min_value=0, max_value=10_000),
        shards=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        pps=st.floats(
            min_value=1.0, max_value=1e7, allow_nan=False, allow_infinity=False
        ),
        target_count=st.integers(min_value=0, max_value=2**40),
        fingerprint=st.integers(min_value=0, max_value=2**32 - 1),
        sink_offset=st.none() | st.integers(min_value=0, max_value=2**48),
    )
    def test_identity_fields_round_trip(
        self,
        tmp_path_factory,
        name,
        epoch,
        shards,
        seed,
        pps,
        target_count,
        fingerprint,
        sink_offset,
    ):
        path = tmp_path_factory.mktemp("hyp") / "x.ckpt"
        checkpoint = ScanCheckpoint(
            name=name,
            epoch=epoch,
            shards=shards,
            scan_key=config_key(ScanConfig(pps=pps, seed=seed)),
            target_count=target_count,
            fingerprint=fingerprint,
            sink_offset=sink_offset,
        )
        save_checkpoint(checkpoint, path)
        assert load_checkpoint(path) == checkpoint

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "scan.ckpt"
        save_checkpoint(make_checkpoint(), path)
        save_checkpoint(make_checkpoint(epoch=4), path)
        assert [p.name for p in tmp_path.iterdir()] == ["scan.ckpt"]
        assert load_checkpoint(path).epoch == 4


class TestTelemetrySnapshot:
    def test_snapshot_restore_round_trip(self):
        telemetry = ScanTelemetry()
        telemetry.scan_started(
            scan="s", epoch=0, targets=10, shards=2, pps=100.0
        )
        telemetry.scan_checkpointed(
            scan="s", epoch=0, vtime=1.0, shard=0, completed=1, remaining=1
        )
        snapshot = snapshot_telemetry(telemetry)
        restored = ScanTelemetry()
        restore_telemetry(restored, snapshot)
        assert restored.to_jsonl() == telemetry.to_jsonl()
        assert restored.to_prometheus() == telemetry.to_prometheus()
        assert restored.to_ops_jsonl() == telemetry.to_ops_jsonl()
        # Emission continues at the exact next sequence number.
        restored.scan_started(
            scan="t", epoch=1, targets=5, shards=1, pps=50.0
        )
        telemetry.scan_started(
            scan="t", epoch=1, targets=5, shards=1, pps=50.0
        )
        assert restored.to_jsonl() == telemetry.to_jsonl()


class TestCorruptionDetection:
    def _saved(self, tmp_path):
        path = tmp_path / "scan.ckpt"
        save_checkpoint(make_checkpoint(), path)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"definitely not a checkpoint journal")
        with pytest.raises(CheckpointCorruptError, match="not a scan checkpoint"):
            load_checkpoint(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_bytes(b"")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_truncated_tail(self, tmp_path):
        path = self._saved(tmp_path)
        truncate_tail(path, 7)
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            load_checkpoint(path)

    def test_bit_flip_fails_crc(self, tmp_path):
        path = self._saved(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="CRC-32"):
            load_checkpoint(path)

    def test_schema_skew(self, tmp_path):
        path = self._saved(tmp_path)
        raw = bytearray(path.read_bytes())
        struct.pack_into(">I", raw, 8, CHECKPOINT_SCHEMA_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointSchemaError, match="schema"):
            load_checkpoint(path)

    def test_wrong_payload_type(self, tmp_path):
        import pickle

        payload = pickle.dumps({"not": "a checkpoint"})
        header = b"SRACKPT\n" + struct.pack(
            ">IQI",
            CHECKPOINT_SCHEMA_VERSION,
            len(payload),
            zlib.crc32(payload),
        )
        path = tmp_path / "wrong.ckpt"
        path.write_bytes(header + payload)
        with pytest.raises(CheckpointCorruptError, match="not a ScanCheckpoint"):
            load_checkpoint(path)


class TestResumeValidation:
    @pytest.mark.parametrize(
        "override, label",
        [
            (dict(name="other"), "scan name"),
            (dict(epoch=99), "epoch"),
            (dict(shards=8), "shard count"),
            (dict(scan_key=config_key(ScanConfig(seed=1))), "scan config"),
            (dict(target_count=7), "target count"),
            (dict(fingerprint=1), "target fingerprint"),
        ],
    )
    def test_mismatch_raises(self, override, label):
        checkpoint = make_checkpoint()
        current = dict(
            name=checkpoint.name,
            epoch=checkpoint.epoch,
            shards=checkpoint.shards,
            scan_key=checkpoint.scan_key,
            target_count=checkpoint.target_count,
            fingerprint=checkpoint.fingerprint,
        )
        current.update(override)
        with pytest.raises(CheckpointMismatchError, match=label):
            checkpoint.validate_resume(**current)

    def test_matching_scan_passes(self):
        checkpoint = make_checkpoint()
        checkpoint.validate_resume(
            name=checkpoint.name,
            epoch=checkpoint.epoch,
            shards=checkpoint.shards,
            scan_key=checkpoint.scan_key,
            target_count=checkpoint.target_count,
            fingerprint=checkpoint.fingerprint,
        )

    def test_out_of_range_shard_is_corrupt(self):
        checkpoint = make_checkpoint(outcomes={9: object()})
        with pytest.raises(CheckpointCorruptError, match="outside"):
            checkpoint.validate_resume(
                name=checkpoint.name,
                epoch=checkpoint.epoch,
                shards=checkpoint.shards,
                scan_key=checkpoint.scan_key,
                target_count=checkpoint.target_count,
                fingerprint=checkpoint.fingerprint,
            )


class TestFingerprint:
    def test_detects_different_targets(self):
        targets = list(range(100))
        assert target_fingerprint(targets) == target_fingerprint(list(targets))
        assert target_fingerprint(targets) != target_fingerprint(targets[:-1])
        shuffled = list(targets)
        random.Random(0).shuffle(shuffled)
        assert target_fingerprint(targets) != target_fingerprint(shuffled)

    def test_empty_targets(self):
        assert target_fingerprint([]) == target_fingerprint([])


class TestCLIExitCodes:
    """Corrupt/foreign journals must exit 4 with one clear line."""

    def _scan_args(self, checkpoint):
        return [
            "--seed",
            "7",
            "--input-set",
            "bgp-plain",
            "--max-targets",
            "60",
            "--checkpoint",
            str(checkpoint),
            "--resume",
            "--no-alias-filter",
        ]

    def test_corrupt_checkpoint_exits_4(self, tmp_path, capsys):
        from repro.scanner.cli import main

        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"SRACKPT\n" + b"\x00" * 4)
        code = main(self._scan_args(path))
        captured = capsys.readouterr()
        assert code == 4
        assert "sra-scan:" in captured.err
        assert "Traceback" not in captured.err
        assert captured.err.count("\n") == 1

    def test_truncated_checkpoint_exits_4(self, tmp_path, capsys):
        from repro.scanner.cli import main

        path = tmp_path / "torn.ckpt"
        save_checkpoint(make_checkpoint(), path)
        truncate_tail(path, 5)
        code = main(self._scan_args(path))
        captured = capsys.readouterr()
        assert code == 4
        assert "truncated" in captured.err
        assert "Traceback" not in captured.err

    def test_mismatched_checkpoint_exits_4(self, tmp_path, capsys):
        from repro.scanner.cli import main

        path = tmp_path / "foreign.ckpt"
        save_checkpoint(make_checkpoint(name="someone-elses-scan"), path)
        code = main(self._scan_args(path))
        captured = capsys.readouterr()
        assert code == 4
        assert "mismatch" in captured.err
        assert "Traceback" not in captured.err

    def test_resume_requires_checkpoint(self, capsys):
        from repro.scanner.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--resume"])
        assert excinfo.value.code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_missing_checkpoint_starts_fresh(self, tmp_path):
        """--resume with no journal on disk is a fresh start, not an error."""
        from repro.scanner.cli import main

        path = tmp_path / "never-written.ckpt"
        code = main(self._scan_args(path))
        assert code == 0
        # The journal is deleted after a successful merge.
        assert not path.exists()
