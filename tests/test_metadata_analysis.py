"""Tests for metadata services and the analysis layer."""

import pytest

from repro.analysis.comparison import SourceComparison
from repro.analysis.geodist import (
    continent_distribution,
    continent_type_crosstab,
    country_distribution,
    country_shares,
    isp_share,
    type_distribution,
)
from repro.analysis.loops import LoopAnalysis
from repro.analysis.report import (
    format_count,
    format_percent,
    render_ccdf,
    render_shares,
    render_table,
)
from repro.datasets.common import AddressDataset
from repro.metadata.asn import ASNMapper
from repro.metadata.astype import ASTypeDatabase
from repro.metadata.geoip import GeoIPDatabase, continent_of
from repro.packet.icmpv6 import ICMPv6Type
from repro.scanner.records import ScanRecord, ScanResult
from repro.topology.entities import ASType


class TestGeoIP:
    def test_from_world(self, tiny_world):
        geo = GeoIPDatabase.from_world(tiny_world)
        subnet = next(iter(tiny_world.subnets.values()))
        assert geo.country_of(subnet.router_interface) == (
            tiny_world.ases[subnet.asn].country
        )

    def test_unknown_address(self, tiny_world):
        geo = GeoIPDatabase.from_world(tiny_world)
        assert geo.country_of(0x3BAD << 112) is None

    def test_save_load(self, tiny_world, tmp_path):
        geo = GeoIPDatabase.from_world(tiny_world)
        path = tmp_path / "geo.txt"
        geo.save(path)
        loaded = GeoIPDatabase.load(path)
        subnet = next(iter(tiny_world.subnets.values()))
        assert loaded.country_of(subnet.router_interface) == geo.country_of(
            subnet.router_interface
        )

    def test_continent_of(self):
        assert continent_of("IND") == "AS"
        assert continent_of("BRA") == "SA"
        assert continent_of("DEU") == "EU"
        assert continent_of(None) == "??"
        assert continent_of("XXX") == "??"


class TestASNMapper:
    def test_map_many_drops_unrouted(self, tiny_world):
        mapper = ASNMapper(tiny_world.bgp)
        subnet = next(iter(tiny_world.subnets.values()))
        mapping = mapper.map_many([subnet.router_interface, 0x3BAD << 112])
        assert mapping == {subnet.router_interface: subnet.asn}

    def test_histogram(self, tiny_world):
        mapper = ASNMapper(tiny_world.bgp)
        subnet = next(iter(tiny_world.subnets.values()))
        histogram = mapper.asn_histogram(
            [subnet.router_interface, subnet.router_interface + 1]
        )
        assert histogram[subnet.asn] == 2

    def test_top_asns_empty(self, tiny_world):
        mapper = ASNMapper(tiny_world.bgp)
        assert mapper.top_asns([]) == []


class TestASTypeDatabase:
    def test_from_world(self, tiny_world):
        db = ASTypeDatabase.from_world(tiny_world)
        asn = next(iter(tiny_world.ases))
        assert db.type_of(asn) is tiny_world.ases[asn].as_type

    def test_histogram_with_unknown(self, tiny_world):
        db = ASTypeDatabase.from_world(tiny_world)
        asn = next(iter(tiny_world.ases))
        histogram = db.type_histogram([asn, 999999999])
        assert histogram["unknown"] == 1

    def test_save_load(self, tiny_world, tmp_path):
        db = ASTypeDatabase.from_world(tiny_world)
        path = tmp_path / "types.txt"
        db.save(path)
        loaded = ASTypeDatabase.load(path)
        assert len(loaded) == len(db)
        asn = next(iter(tiny_world.ases))
        assert loaded.type_of(asn) is db.type_of(asn)

    def test_add(self):
        db = ASTypeDatabase()
        db.add(42, ASType.HOSTING)
        assert db.type_of(42) is ASType.HOSTING


class TestSourceComparison:
    def _comparison(self, tiny_world):
        mapper = ASNMapper(tiny_world.bgp)
        subnets = list(tiny_world.subnets.values())
        a = AddressDataset(
            name="a", addresses={s.router_interface for s in subnets[:50]}
        )
        b = AddressDataset(
            name="b", addresses={s.router_interface for s in subnets[25:75]}
        )
        c = AddressDataset(
            name="c",
            addresses={s.hosts[0] for s in subnets[:60] if s.hosts},
        )
        comparison = SourceComparison(mapper=mapper)
        for dataset in (a, b, c):
            comparison.add(dataset)
        return comparison

    def test_ip_overlap(self, tiny_world):
        comparison = self._comparison(tiny_world)
        assert comparison.ip_overlap("a", "b") == 25

    def test_overlap_matrix_symmetric_pairs(self, tiny_world):
        comparison = self._comparison(tiny_world)
        matrix = comparison.ip_overlap_matrix()
        assert ("a", "b") in matrix
        assert len(matrix) == 3

    def test_exclusive_fraction(self, tiny_world):
        comparison = self._comparison(tiny_world)
        fraction = comparison.exclusive_fraction("a")
        assert 0.0 <= fraction <= 1.0
        assert fraction == pytest.approx(25 / 50)

    def test_as_coverage_and_upset(self, tiny_world):
        comparison = self._comparison(tiny_world)
        coverage = comparison.as_coverage("a")
        assert 0.0 <= coverage <= 1.0
        upset = comparison.upset_counts()
        total_asns = len(
            set().union(*(s for s in comparison.as_sets().values()))
        )
        assert sum(upset.values()) == total_asns

    def test_table3(self, tiny_world):
        comparison = self._comparison(tiny_world)
        table = comparison.table3(3)
        assert set(table) == {"a", "b", "c"}
        for rows in table.values():
            assert len(rows) <= 3

    def test_highlighted(self, tiny_world):
        comparison = self._comparison(tiny_world)
        highlighted = comparison.highlighted_asns(reference="a", n=5)
        table = comparison.table3(5)
        top_a = {asn for asn, _ in table["a"]}
        assert highlighted <= top_a


class TestLoopAnalysis:
    def _scan(self):
        result = ScanResult(name="x", sent=10)
        timex = int(ICMPv6Type.TIME_EXCEEDED)
        echo = int(ICMPv6Type.ECHO_REPLY)
        s48 = 1 << 80
        result.records = [
            ScanRecord(target=0 * s48, source=100, icmp_type=timex, code=0),
            ScanRecord(target=1 * s48, source=100, icmp_type=timex, code=0),
            ScanRecord(target=2 * s48, source=100, icmp_type=timex, code=0, count=500),
            ScanRecord(target=3 * s48, source=200, icmp_type=timex, code=0),
            ScanRecord(target=4 * s48, source=300, icmp_type=echo, code=0),
        ]
        return result

    def test_ingest(self):
        analysis = LoopAnalysis.from_scans(self._scan())
        assert len(analysis.looping_slash48s) == 4
        assert analysis.looping_routers == {100, 200}
        assert analysis.amplifying_routers == {100}

    def test_single_subnet_share(self):
        analysis = LoopAnalysis.from_scans(self._scan())
        assert analysis.single_subnet_router_share() == pytest.approx(0.5)

    def test_amplification_ccdf(self):
        analysis = LoopAnalysis.from_scans(self._scan())
        ccdf = analysis.amplification_ccdf()
        assert ccdf == [(500, 1.0)]

    def test_loops_per_router_ccdf(self):
        analysis = LoopAnalysis.from_scans(self._scan())
        ccdf = analysis.loops_per_router_ccdf()
        assert ccdf[0] == (1, 1.0)
        assert ccdf[-1] == (3, 0.5)

    def test_amplification_share_below(self):
        analysis = LoopAnalysis.from_scans(self._scan())
        assert analysis.amplification_share_below(10) == 0.0
        assert analysis.amplification_share_below(1000) == 1.0

    def test_table4_with_geo(self, tiny_world):
        geo = GeoIPDatabase.from_world(tiny_world)
        # Use real looping scan data from the world.
        from repro.netsim.engine import SimulationEngine
        from repro.scanner.zmapv6 import ScanConfig, ZMapV6Scanner

        region = tiny_world.loop_regions[0]
        targets = [region.prefix.network | (i << 80) | 1 for i in range(8)]
        engine = SimulationEngine(tiny_world, epoch=0)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=10, seed=2))
        scan = scanner.scan(targets, name="loops")
        analysis = LoopAnalysis.from_scans(scan)
        rows = analysis.table4a(geo)
        if rows:
            assert all(0 <= row["share"] <= 1 for row in rows)

    def test_empty_analysis(self):
        analysis = LoopAnalysis()
        assert analysis.amplification_ccdf() == []
        assert analysis.single_subnet_router_share() == 0.0
        assert analysis.table4a(GeoIPDatabase()) == []


class TestGeoDist:
    def test_country_distribution(self, tiny_world):
        geo = GeoIPDatabase.from_world(tiny_world)
        addresses = [
            s.router_interface for s in list(tiny_world.subnets.values())[:100]
        ]
        counts = country_distribution(addresses, geo)
        assert sum(counts.values()) == 100

    def test_country_shares_sorted(self, tiny_world):
        geo = GeoIPDatabase.from_world(tiny_world)
        addresses = [
            s.router_interface for s in list(tiny_world.subnets.values())[:200]
        ]
        shares = country_shares(addresses, geo)
        values = [share for _, share in shares]
        assert values == sorted(values, reverse=True)
        assert sum(values) == pytest.approx(1.0)

    def test_continent_distribution(self, tiny_world):
        geo = GeoIPDatabase.from_world(tiny_world)
        addresses = [next(iter(tiny_world.subnets.values())).router_interface]
        counts = continent_distribution(addresses, geo)
        assert sum(counts.values()) == 1

    def test_type_distribution_and_isp_share(self, tiny_world):
        mapper = ASNMapper(tiny_world.bgp)
        types = ASTypeDatabase.from_world(tiny_world)
        addresses = [s.router_interface for s in tiny_world.subnets.values()]
        distribution = type_distribution(addresses, mapper, types)
        assert sum(distribution.values()) == len(addresses)
        share = isp_share(addresses, mapper, types)
        assert 0.0 <= share <= 1.0

    def test_crosstab(self, tiny_world):
        geo = GeoIPDatabase.from_world(tiny_world)
        mapper = ASNMapper(tiny_world.bgp)
        types = ASTypeDatabase.from_world(tiny_world)
        addresses = [
            s.router_interface for s in list(tiny_world.subnets.values())[:50]
        ]
        crosstab = continent_type_crosstab(addresses, geo, mapper, types)
        total = sum(sum(c.values()) for c in crosstab.values())
        assert total == 50


class TestReport:
    def test_format_count(self):
        assert format_count(950) == "950"
        assert format_count(1234) == "1.2k"
        assert format_count(4_200_000) == "4.2M"
        assert format_count(28_200_000_000) == "28.2B"
        assert format_count(0.5) == "0.50"

    def test_format_percent(self):
        assert format_percent(0.123) == "12.3%"
        assert format_percent(0.1234, 2) == "12.34%"

    def test_render_table(self):
        text = render_table(
            ("a", "bb"), [(1, 2), (30, 40)], title="Title"
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_ccdf(self):
        text = render_ccdf([(1, 1.0), (10, 0.5), (100, 0.1)], title="T")
        assert "T" in text
        assert ">= 1" in text

    def test_render_ccdf_empty(self):
        assert "(no data)" in render_ccdf([], title="T")

    def test_render_shares_limit(self):
        text = render_shares(
            [("a", 0.5), ("b", 0.3), ("c", 0.2)], title="T", limit=2
        )
        assert "c" not in text.splitlines()[-1]
