"""Streaming pipeline tests: target streams, specs, windows, and sinks.

The load-bearing invariants:

* concatenating any shard-window split of the permuted visit order
  reproduces the serial order exactly (hypothesis property — this is
  what makes sharded streaming bit-identical to serial scans),
* ``CyclicPermutation`` indexing agrees with its iteration order,
* lazy streams realise shared-RNG predecessors in build order, and
  specs rebuild byte-identical streams in a fresh context,
* save → load → stream round-trips through RFC 5952 formatting,
* sinks see exactly the records a buffered scan would keep.
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addr.ipv6 import IPv6Prefix, format_address, parse_address
from repro.addr.permutation import CyclicPermutation
from repro.core.survey import SRASurvey, SurveyConfig
from repro.scanner.records import ScanRecord, ScanResult
from repro.scanner.stream import (
    CountingSink,
    IndexWindow,
    JsonlSink,
    LazyStream,
    ListStream,
    MemorySink,
    PermutedStream,
    StreamSpec,
    SubnetPartitionStream,
    TeeSink,
    as_stream,
    build_stream,
    make_spec,
    shard_positions,
    stream_buffered,
)
from repro.scanner.targets import TargetList, hitlist_slash64_targets

sizes = st.integers(min_value=1, max_value=300)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
shard_counts = st.integers(min_value=1, max_value=8)


class TestShardWindows:
    @given(sizes, seeds, shard_counts, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_windows_concatenate_to_serial_order(
        self, size, seed, shards, permute
    ):
        """Any shard-window split, merged by global position, IS the
        serial visit order — no index lost, duplicated, or reordered."""
        serial = list(
            shard_positions(size, seed=seed, epoch=0, permute=permute)
        )
        split = []
        for shard in range(shards):
            split.extend(
                shard_positions(
                    size,
                    seed=seed,
                    epoch=0,
                    window=IndexWindow(shard, shards),
                    permute=permute,
                )
            )
        split.sort(key=lambda pair: pair[0])
        assert split == serial
        assert sorted(index for _, index in split) == list(range(size))

    @given(sizes, seeds)
    @settings(max_examples=30, deadline=None)
    def test_epoch_changes_order_not_membership(self, size, seed):
        first = [i for _, i in shard_positions(size, seed=seed, epoch=0)]
        second = [i for _, i in shard_positions(size, seed=seed, epoch=7)]
        assert sorted(first) == sorted(second) == list(range(size))

    def test_window_validation(self):
        with pytest.raises(ValueError):
            list(shard_positions(10, seed=1, window=IndexWindow(3, 3)))

    def test_empty_stream_yields_nothing(self):
        assert list(shard_positions(0, seed=1)) == []


class TestCyclicPermutationIndexing:
    @given(sizes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_getitem_matches_iteration(self, size, seed):
        permutation = CyclicPermutation(size, seed=seed)
        expected = list(permutation)
        # Forward, repeated, and backwards seeks all agree.
        assert [permutation[k] for k in range(size)] == expected
        assert permutation[size - 1] == expected[-1]
        assert permutation[0] == expected[0]
        assert permutation[-1] == expected[-1]

    def test_value_at_is_the_raw_walk(self):
        permutation = CyclicPermutation(100, seed=3)
        assert permutation.value_at(0) == permutation.start
        step = (permutation.start * permutation.generator) % permutation.prime
        assert permutation.value_at(1) == step
        with pytest.raises(IndexError):
            permutation.value_at(-1)

    def test_out_of_range(self):
        permutation = CyclicPermutation(10, seed=3)
        with pytest.raises(IndexError):
            permutation[10]


class TestRoundTrip:
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=(1 << 128) - 1),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_save_load_stream_round_trip(self, tmp_path_factory, addresses):
        """save → load → stream survives RFC 5952 canonicalisation."""
        path = tmp_path_factory.mktemp("targets") / "t.txt"
        original = TargetList(name="rt", targets=list(dict.fromkeys(addresses)))
        original.save(path)
        loaded = TargetList.load(path)
        stream = as_stream(loaded)
        assert list(stream) == original.targets
        assert [parse_address(format_address(t)) for t in stream] == list(stream)

    def test_stream_of_loaded_list_keeps_provenance(self, tiny_hitlist, tmp_path):
        targets = hitlist_slash64_targets(tiny_hitlist, max_targets=64)
        path = tmp_path / "h.txt"
        targets.save(path)
        stream = as_stream(TargetList.load(path, subnet_length=64))
        assert stream.name == "h"
        assert stream.subnet_length == 64
        assert list(stream) == targets.targets


class TestLazyStream:
    def test_realises_once(self):
        calls = []

        def factory():
            calls.append(1)
            return [3, 1, 2]

        stream = LazyStream(factory, name="lazy")
        assert not stream.realised
        assert stream.buffered == 0
        assert len(stream) == 3
        assert stream[1] == 1
        assert list(stream) == [3, 1, 2]
        assert calls == [1]
        assert stream.buffered == 3

    def test_after_chain_realises_predecessors_first(self):
        order = []
        first = LazyStream(lambda: order.append("a") or [1], name="a")
        second = LazyStream(
            lambda: order.append("b") or [2], name="b", after=first
        )
        third = LazyStream(
            lambda: order.append("c") or [3], name="c", after=second
        )
        # Touch the LAST stream first: the chain must still realise in
        # build order, preserving shared-RNG draw order.
        assert list(third) == [3]
        assert order == ["a", "b", "c"]

    def test_release_drops_buffer_and_blocks_reaccess(self):
        stream = LazyStream(lambda: [1, 2], name="once")
        assert len(stream) == 2
        stream.release()
        assert stream.buffered == 0
        with pytest.raises(RuntimeError):
            len(stream)

    def test_released_predecessor_does_not_rerun(self):
        order = []
        first = LazyStream(lambda: order.append("a") or [1], name="a")
        second = LazyStream(
            lambda: order.append("b") or [2], name="b", after=first
        )
        list(first)
        first.release()
        # Realising the successor must NOT re-run the released
        # predecessor's factory (its RNG draws are already spent).
        assert list(second) == [2]
        assert order == ["a", "b"]


class TestComputableStreams:
    def test_subnet_partition_matches_eager_enumeration(self):
        prefix = IPv6Prefix.parse("2001:db8::/44")
        stream = SubnetPartitionStream(prefix, 48)
        eager = [subnet.network for subnet in prefix.subnets(48)]
        assert len(stream) == len(eager) == 16
        assert list(stream) == eager
        assert [stream[i] for i in range(len(stream))] == eager
        assert stream[-1] == eager[-1]
        assert stream[2:5] == eager[2:5]
        assert stream.buffered == 0

    def test_bounds(self):
        stream = SubnetPartitionStream(IPv6Prefix.parse("2001:db8::/44"), 48)
        with pytest.raises(IndexError):
            stream[16]
        with pytest.raises(ValueError):
            SubnetPartitionStream(IPv6Prefix.parse("2001:db8::/64"), 48)

    def test_spec_round_trip(self):
        stream = SubnetPartitionStream(IPv6Prefix.parse("2001:db8::/40"), 48)
        rebuilt = build_stream(stream.spec(), world=None)
        assert list(rebuilt) == list(stream)
        assert rebuilt.name == stream.name

    def test_permuted_stream_matches_permutation(self):
        source = ListStream(list(range(100, 150)), name="src")
        permuted = PermutedStream(source, seed=9)
        order = list(CyclicPermutation(50, seed=9))
        assert list(permuted) == [source[i] for i in order]
        assert [permuted[k] for k in range(8)] == [
            source[order[k]] for k in range(8)
        ]
        assert sorted(permuted) == list(source)


class TestUniformSliceSemantics:
    """Regression: every TargetStream slices like a plain list.

    ``stream[i:j:k]`` must return a ``list`` equal to
    ``list(stream)[i:j:k]`` for every implementation — ListStream used
    to leak its backing container type (a tuple-backed list sliced to a
    tuple) and PermutedStream raised ``TypeError`` on slices.
    """

    def _streams(self):
        source = list(range(100, 140))
        lazy = LazyStream(lambda: list(source), name="lazy")
        return [
            ListStream(list(source), name="list"),
            ListStream(tuple(source), name="tuple-backed"),
            lazy,
            SubnetPartitionStream(IPv6Prefix.parse("2001:db8::/42"), 48),
            PermutedStream(ListStream(list(source), name="src"), seed=3),
        ]

    @pytest.mark.parametrize(
        "window",
        [
            slice(None),
            slice(3, 17),
            slice(17, 3, -1),
            slice(None, None, 5),
            slice(None, None, -1),
            slice(-7, None),
            slice(1000, 2000),
        ],
        ids=str,
    )
    def test_slice_matches_realised_list(self, window):
        for stream in self._streams():
            realised = list(stream)
            got = stream[window]
            assert type(got) is list, stream.name
            assert got == realised[window], stream.name

    def test_int_indexing_unchanged(self):
        for stream in self._streams():
            realised = list(stream)
            assert stream[0] == realised[0]
            assert stream[-1] == realised[-1]


class TestSpecs:
    def test_unknown_builder_raises(self):
        spec = StreamSpec(builder="nope", module="repro.scanner.stream")
        with pytest.raises(ValueError, match="nope"):
            build_stream(spec, world=None)

    def test_make_spec_is_order_stable(self):
        a = make_spec("b", "m", x=1, y=2)
        b = make_spec("b", "m", y=2, x=1)
        assert a == b
        assert a.arguments() == {"x": 1, "y": 2}

    def test_survey_spec_rebuilds_identical_sets(self, tiny_world, tiny_hitlist):
        """A pool worker rebuilding an input set from its spec gets the
        exact targets the parent's lazy chain realises — including the
        RNG-consuming sets that depend on their predecessors' draws."""
        config = SurveyConfig(
            seed=13,
            slash48_per_prefix=4,
            max_bgp_48=400,
            slash64_per_prefix=4,
            max_bgp_64=300,
            route6_per_prefix=2,
            max_route6=300,
        )
        survey = SRASurvey(tiny_world, tiny_hitlist, config=config)
        streams = survey.build_input_sets()
        for name in ("bgp-plain", "bgp-48", "bgp-64", "route6-64"):
            spec = streams[name].spec()
            assert spec is not None, name
            rebuilt = build_stream(spec, tiny_world)
            assert list(rebuilt) == list(streams[name]), name
        # The hitlist set is not world-derivable: no spec, data ships.
        assert streams["hitlist-64"].spec() is None

    def test_cli_spec_rebuilds_identical_sets(self, tiny_world):
        from repro.scanner.cli import build_targets

        stream = build_targets(
            tiny_world, "bgp-48", max_targets=500, seed=21
        )
        rebuilt = build_stream(stream.spec(), tiny_world)
        assert list(rebuilt) == list(stream)
        assert stream.subnet_length == 48


class TestCoercionsAndGauges:
    def test_as_stream_passthrough_and_wrap(self):
        stream = ListStream([1, 2], name="s")
        assert as_stream(stream) is stream
        wrapped = as_stream([5, 6], name="w")
        assert list(wrapped) == [5, 6]
        assert wrapped.name == "w"
        from_iter = as_stream(iter([7, 8]))
        assert list(from_iter) == [7, 8]

    def test_stream_buffered(self):
        assert stream_buffered([1, 2, 3]) == 3
        assert stream_buffered(SubnetPartitionStream(
            IPv6Prefix.parse("2001:db8::/44"), 48
        )) == 0
        lazy = LazyStream(lambda: [1], name="l")
        assert stream_buffered(lazy) == 0
        len(lazy)
        assert stream_buffered(lazy) == 1
        assert stream_buffered(iter(())) == 0


def _records():
    return [
        ScanRecord(target=1, source=10, icmp_type=129, code=0, count=1, time=0.1),
        ScanRecord(target=2, source=11, icmp_type=1, code=0, count=3, time=0.2),
        ScanRecord(target=3, source=10, icmp_type=1, code=0, count=1, time=0.3),
        ScanRecord(target=4, source=12, icmp_type=129, code=0, count=1, time=0.4),
        ScanRecord(target=4, source=12, icmp_type=129, code=0, count=1, time=0.5),
    ]


class TestSinks:
    def test_memory_sink_preserves_records(self):
        sink = MemorySink()
        for record in _records():
            sink.emit(record)
        assert sink.records == _records()
        assert sink.emitted == 5

    def test_counting_sink_matches_result_aggregates(self):
        result = ScanResult(name="s", records=_records())
        sink = CountingSink()
        for record in _records():
            sink.emit(record)
        assert sink.emitted == len(result.records)
        assert sink.flood_packets == result.flood_packets
        assert len(sink.responsive_targets) == result.responsive_targets
        assert sink.sources == result.sources()
        assert sink.echo_sources == result.echo_sources()
        assert sink.error_sources == result.error_sources()
        assert sink.classify_sources() == result.classify_sources()

    def test_jsonl_sink_to_handle_matches_writer(self, tmp_path):
        import io

        result = ScanResult(name="s", records=_records())
        path = tmp_path / "w.jsonl"
        result.write_jsonl(path)
        handle = io.StringIO()
        sink = JsonlSink(handle)
        for record in _records():
            sink.emit(record)
        sink.close()  # caller-owned handle stays open
        assert handle.getvalue() == path.read_text()
        assert sink.emitted == 5

    def test_tee_fans_out(self):
        first, second = MemorySink(), MemorySink()
        tee = TeeSink((first, second))
        for record in _records():
            tee.emit(record)
        assert first.records == second.records == _records()
        assert tee.emitted == 5

    def test_sink_context_manager_closes_owned_file(self, tmp_path):
        path = tmp_path / "ctx.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(_records()[0])
        assert path.read_text().startswith("{")
