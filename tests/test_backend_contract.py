"""Run the shared probe-backend contract over every registered backend.

The suite itself lives in ``backend_contract.py`` so extension modules
can parametrise it with their own backends; this module pins that every
stock backend (``sim``, ``wire-sim``, ``raw``) honours the contract —
``raw`` for registration/spec/validation only, never touching a socket.
"""

import pytest

from backend_contract import BackendCase, BackendContract, default_cases

CASES = default_cases()


@pytest.fixture(params=CASES, ids=lambda case: case.id)
def backend_case(request):
    return request.param


class TestBackendContract(BackendContract):
    """The full matrix: backends x contract."""


def test_every_registered_backend_is_covered():
    """Registering a new backend must auto-enrol it in the contract."""
    from repro.scanner.backends import backend_names

    covered = {case.id for case in CASES}
    for name in backend_names():
        assert f"backend-{name}" in covered


def test_raw_is_validation_only():
    """The raw backend enrols without probing (no sockets in CI)."""
    by_name = {case.name: case for case in CASES}
    assert by_name["raw"].probes is False
    assert by_name["sim"].probes is True
    assert by_name["wire-sim"].probes is True


def test_cases_are_reusable_rows():
    assert all(isinstance(case, BackendCase) for case in CASES)
    assert len({case.id for case in CASES}) == len(CASES)
