"""Run the shared stream/strategy contract over every registered case.

The suite itself lives in ``strategy_contract.py`` so extension modules
can parametrise it with their own streams; this module pins that every
built-in strategy (cold and with evolved feedback) and every stock
stream implementation honours the contract.
"""

import pytest

from strategy_contract import StreamCase, StreamContract, default_cases

CASES = default_cases()


@pytest.fixture(params=CASES, ids=lambda case: case.id)
def case(request):
    return request.param


class TestStreamContract(StreamContract):
    """The full matrix: strategies x contract, streams x contract."""


def test_every_registered_strategy_is_covered():
    """Registering a new strategy must auto-enrol it in the contract."""
    from repro.scanner.strategies import strategy_names

    covered = {c.id for c in CASES}
    for name in strategy_names():
        assert f"strategy-{name}" in covered
        assert f"strategy-{name}-e1" in covered


def test_cases_are_reusable_rows():
    assert all(isinstance(case, StreamCase) for case in CASES)
    assert len({case.id for case in CASES}) == len(CASES)
