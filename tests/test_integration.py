"""End-to-end integration tests exercising the full pipeline.

These run complete campaigns over the tiny world and check the cross-module
invariants that individual unit tests cannot see.
"""

import pytest

from repro.core.aliasfilter import is_self_reply
from repro.core.survey import SRASurvey, SurveyConfig
from repro.datasets.tum import published_alias_list
from repro.metadata.asn import ASNMapper
from repro.metadata.geoip import GeoIPDatabase
from repro.netsim.engine import SimulationEngine
from repro.scanner.targets import hitlist_slash64_targets
from repro.scanner.zmapv6 import ScanConfig, ZMapV6Scanner
from repro.topology.config import tiny_config
from repro.topology.generator import build_world
from repro.topology.mitigation import run_disclosure_campaign


@pytest.fixture(scope="module")
def pipeline(tiny_world, tiny_hitlist, tiny_alias_list):
    config = SurveyConfig(
        seed=5,
        slash48_per_prefix=64,
        max_bgp_48=12_000,
        slash64_per_prefix=64,
        max_bgp_64=6_000,
        route6_per_prefix=32,
        max_route6=10_000,
        max_hitlist=6_000,
    )
    survey = SRASurvey(
        tiny_world, tiny_hitlist, alias_list=tiny_alias_list, config=config
    )
    return survey.run()


class TestSurveyEndToEnd:
    def test_discovered_sources_are_plausible(self, pipeline, tiny_world):
        """Echo sources must be real router addresses, host addresses, or
        aliased self-replies already removed by the filter."""
        router_addresses = tiny_world.all_router_addresses()
        hosts = set(tiny_world.all_hosts())
        for result in pipeline.input_sets.values():
            for record in result.result.records:
                if record.is_echo:
                    assert (
                        record.source in router_addresses
                        or record.source in hosts
                    ), f"unexplained echo source {record.source:#x}"

    def test_no_self_replies_survive_filter(self, pipeline):
        for result in pipeline.input_sets.values():
            for record in result.result.records:
                assert not is_self_reply(record)

    def test_all_sources_geolocatable(self, pipeline, tiny_world):
        geo = GeoIPDatabase.from_world(tiny_world)
        located = 0
        total = 0
        for result in pipeline.input_sets.values():
            for source in result.router_ips:
                total += 1
                if geo.country_of(source) is not None:
                    located += 1
        assert total > 0
        assert located / total > 0.95

    def test_asn_mapping_mostly_matches_responder(self, pipeline, tiny_world):
        """Most reply sources map to the AS that owns the responding
        router — except peering-LAN sources, which map upstream (the
        paper's attribution caveat)."""
        mapper = ASNMapper(tiny_world.bgp)
        hitlist_result = pipeline.input_sets["hitlist-64"]
        mismatches = 0
        checked = 0
        for record in hitlist_result.result.records:
            if not record.is_echo:
                continue
            router = tiny_world.router_for_address(record.source)
            if router is None:
                continue
            checked += 1
            if mapper.asn_of(record.source) != router.asn:
                mismatches += 1
        assert checked > 0
        assert mismatches / checked < 0.3

    def test_reply_sources_stable_across_reruns(
        self, tiny_world, tiny_hitlist
    ):
        """The whole pipeline is deterministic for a fixed seed."""
        targets = hitlist_slash64_targets(tiny_hitlist, max_targets=1500)
        results = []
        for _ in range(2):
            engine = SimulationEngine(tiny_world, epoch=9)
            scanner = ZMapV6Scanner(engine, ScanConfig(pps=300, seed=13))
            results.append(scanner.scan(targets, name="rerun", epoch=9))
        rows_a = [(r.target, r.source, r.icmp_type) for r in results[0].records]
        rows_b = [(r.target, r.source, r.icmp_type) for r in results[1].records]
        assert rows_a == rows_b


class TestMitigationEndToEnd:
    def test_disclosure_reduces_observed_loops(self):
        world = build_world(tiny_config(seed=33))
        region = max(world.loop_regions, key=lambda r: r.slash48_count())
        targets = [
            region.prefix.network | (i << 80) | 5
            for i in range(min(64, region.slash48_count()))
        ]

        def looping_count(epoch):
            engine = SimulationEngine(world, epoch=epoch)
            scanner = ZMapV6Scanner(engine, ScanConfig(pps=10, seed=3))
            result = scanner.scan(targets, name="loopscan", epoch=epoch)
            return result.loops_observed

        before = looping_count(0)
        assert before > 0
        # The operator of this AS applies the Appendix C null route.
        from repro.topology.mitigation import fix_all_loops_for_asn

        fix_all_loops_for_asn(world, region.asn)
        after = looping_count(1)
        assert after == 0 or after < before * 0.2

    def test_campaign_is_reportable(self):
        world = build_world(tiny_config(seed=34))
        report = run_disclosure_campaign(world, response_rate=0.3)
        assert report.contacted_asns >= len(report.fixed_asns)


class TestAmplificationSafety:
    def test_hop_limit_reduction_bounds_amplification(self):
        """The paper's mitigation advice: smaller hop limits shrink the
        amplification caused by scans."""
        world = build_world(tiny_config(seed=35))
        buggy = [
            region
            for region in world.loop_regions
            if world.routers[region.customer_router_id].replication_factor > 1.1
        ]
        if not buggy:
            pytest.skip("no buggy loop router with this seed")
        region = buggy[0]
        target = region.prefix.network | 0xF00
        engine = SimulationEngine(world, epoch=0)
        amp_64 = engine.probe(target, 0.0, hop_limit=64, probe_id=1).amplification
        amp_32 = engine.probe(target, 1.0, hop_limit=32, probe_id=2).amplification
        amp_16 = engine.probe(target, 2.0, hop_limit=16, probe_id=3).amplification
        assert amp_64 >= amp_32 >= amp_16
        assert amp_64 > amp_16


class TestHitlistQuality:
    def test_hitlist_slash64s_mix_live_and_stale(self, tiny_world, tiny_hitlist):
        live_slash64s = {net for net in tiny_world.subnets}
        targets = tiny_hitlist.unique_slash64s()
        live = sum(1 for t in targets if t in live_slash64s)
        assert 0 < live < len(targets)

    def test_alias_list_improves_filtering(self, tiny_world, tiny_hitlist):
        """Scanning with the published alias list drops more records than
        the self-reply rule alone."""
        from repro.core.aliasfilter import filter_aliased

        targets = hitlist_slash64_targets(tiny_hitlist)
        engine = SimulationEngine(tiny_world, epoch=2)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=1000, seed=17))
        raw = scanner.scan(targets, name="alias-test", epoch=2)
        alias_list = published_alias_list(tiny_world, recall=1.0)
        _, with_list = filter_aliased(raw, alias_list)
        _, without_list = filter_aliased(raw, None)
        assert with_list.dropped >= without_list.dropped
