"""Tests for the world generator: structural invariants and determinism."""

import pytest

from repro.addr.ipv6 import IPv6Prefix
from repro.topology.config import WorldConfig, tiny_config
from repro.topology.entities import ASType, EntryKind
from repro.topology.generator import build_world
from repro.topology.mitigation import (
    fix_all_loops_for_asn,
    run_disclosure_campaign,
)
from repro.topology.profiles import (
    DEFAULT_VENDORS,
    SRABehavior,
    VendorProfile,
    vendor_by_name,
)


class TestConfigValidation:
    def test_tiers_must_fit(self):
        with pytest.raises(ValueError):
            WorldConfig(num_ases=10, num_tier1=5, num_tier2=5)

    def test_packet_loss_range(self):
        with pytest.raises(ValueError):
            WorldConfig(packet_loss=1.0)

    def test_loop_weights_length(self):
        with pytest.raises(ValueError):
            WorldConfig(
                loop_region_length_choices=(44,),
                loop_region_length_weights=(0.5, 0.5),
            )

    def test_tiny_config_valid(self):
        config = tiny_config()
        assert config.num_ases == 60


class TestVendorProfiles:
    def test_catalogue_lookup(self):
        for vendor in DEFAULT_VENDORS:
            assert vendor_by_name(vendor.name) is vendor

    def test_unknown_vendor(self):
        with pytest.raises(KeyError):
            vendor_by_name("nonexistent")

    def test_replication_requires_bug_flag(self):
        with pytest.raises(ValueError):
            VendorProfile(
                name="x", sra_behavior=SRABehavior.REPLY, replication_factor=2.0
            )
        with pytest.raises(ValueError):
            VendorProfile(
                name="x",
                sra_behavior=SRABehavior.REPLY,
                replicates_in_loops=True,
                replication_factor=1.0,
            )

    def test_rates_positive(self):
        with pytest.raises(ValueError):
            VendorProfile(name="x", sra_behavior=SRABehavior.DROP, error_rate=0)


class TestWorldStructure:
    def test_every_as_has_announcement(self, tiny_world):
        for asn, info in tiny_world.ases.items():
            assert info.prefixes, f"AS{asn} has no prefixes"
            for prefix in info.prefixes:
                assert tiny_world.bgp.origin_of(prefix.network) is not None

    def test_subnets_inside_announced_space(self, tiny_world):
        for subnet in tiny_world.subnets.values():
            origin = tiny_world.bgp.origin_of(subnet.prefix.network)
            assert origin == subnet.asn

    def test_subnet_interfaces_inside_subnet(self, tiny_world):
        for subnet in tiny_world.subnets.values():
            assert subnet.router_interface in subnet.prefix
            assert subnet.router_interface != subnet.prefix.network

    def test_hosts_inside_subnet_and_not_special(self, tiny_world):
        for subnet in tiny_world.subnets.values():
            for host in subnet.hosts:
                assert host in subnet.prefix
                assert host != subnet.prefix.network
                assert host != subnet.router_interface

    def test_router_owns_subnet_interfaces(self, tiny_world):
        for subnet in tiny_world.subnets.values():
            router = tiny_world.routers[subnet.router_id]
            assert router.subnet_interfaces[subnet.prefix.network] == (
                subnet.router_interface
            )
            assert subnet.router_interface in router.interface_addresses

    def test_routers_have_country_and_vendor(self, tiny_world):
        config_countries = {c for c, _, _ in tiny_config().countries}
        for router in tiny_world.routers.values():
            assert router.country in config_countries
            assert router.vendor in DEFAULT_VENDORS or router.vendor.name in (
                "buggy-mild",
                "buggy-severe",
            )

    def test_loop_regions_inside_customer_space(self, tiny_world):
        for region in tiny_world.loop_regions:
            origin = tiny_world.bgp.origin_of(region.prefix.network)
            assert origin == region.asn
            customer = tiny_world.routers[region.customer_router_id]
            assert customer.asn == region.asn
            provider = tiny_world.routers[region.provider_router_id]
            assert provider.asn in tiny_world.ases[region.asn].providers

    def test_loop_slash48_count(self):
        from repro.topology.entities import LoopRegion

        region = LoopRegion(
            prefix=IPv6Prefix.parse("2001:db8:100::/40"),
            asn=1,
            customer_router_id=1,
            provider_router_id=2,
        )
        assert region.slash48_count() == 256

    def test_vantage_exists_and_routed(self, tiny_world):
        vantage = tiny_world.vantage
        assert vantage is not None
        assert tiny_world.bgp.origin_of(vantage.address) == vantage.asn
        assert vantage.upstream_router_id in tiny_world.routers

    def test_paths_cover_all_ases(self, tiny_world):
        for asn in tiny_world.ases:
            if asn == tiny_world.vantage.asn:
                continue
            hops = tiny_world.paths.get(asn)
            assert hops, f"no path to AS{asn}"
            # Last hop is a router of the destination AS.
            assert tiny_world.routers[hops[-1].router_id].asn == asn

    def test_resolution_finds_subnets(self, tiny_world):
        subnet = next(iter(tiny_world.subnets.values()))
        match = tiny_world.resolution.longest_match(subnet.prefix.network + 5)
        assert match is not None
        assert match[1].kind is EntryKind.SUBNET

    def test_router_for_address(self, tiny_world):
        subnet = next(iter(tiny_world.subnets.values()))
        router = tiny_world.router_for_address(subnet.router_interface)
        assert router is not None
        assert router.router_id == subnet.router_id
        assert tiny_world.router_for_address(subnet.prefix.network + 999) is None

    def test_border_routers_marked(self, tiny_world):
        for info in tiny_world.ases.values():
            if info.asn == tiny_world.vantage.asn:
                continue
            assert info.border_router_id is not None
            assert tiny_world.routers[info.border_router_id].is_border

    def test_as_types_match_enum(self, tiny_world):
        for info in tiny_world.ases.values():
            assert isinstance(info.as_type, ASType)

    def test_country_helpers(self, tiny_world):
        asn = next(iter(tiny_world.ases))
        assert tiny_world.country_of_asn(asn) == tiny_world.ases[asn].country
        assert tiny_world.type_of_asn(asn) is tiny_world.ases[asn].as_type
        assert tiny_world.country_of_asn(99999999) is None

    def test_irr_contains_stale_registrations(self, tiny_world):
        unrouted = [
            obj
            for obj in tiny_world.irr
            if not tiny_world.bgp.is_routed(obj.prefix.network)
        ]
        assert unrouted, "IRR should contain stale (unannounced) registrations"

    def test_all_router_addresses_nonzero(self, tiny_world):
        for router in tiny_world.routers.values():
            assert router.loopback != 0
            for address in router.all_addresses():
                assert address != 0


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_world(tiny_config(seed=123))
        b = build_world(tiny_config(seed=123))
        assert set(a.ases) == set(b.ases)
        assert set(a.subnets) == set(b.subnets)
        assert len(a.loop_regions) == len(b.loop_regions)
        assert a.bgp.prefixes() == b.bgp.prefixes()

    def test_different_seed_different_world(self):
        a = build_world(tiny_config(seed=1))
        b = build_world(tiny_config(seed=2))
        assert set(a.subnets) != set(b.subnets)


class TestMitigation:
    def test_fix_all_loops_for_asn(self):
        world = build_world(tiny_config(seed=11))
        assert world.loop_regions, "world should have loops to fix"
        asn = world.loop_regions[0].asn
        before = len(world.loop_regions)
        removed = fix_all_loops_for_asn(world, asn)
        assert removed
        assert len(world.loop_regions) == before - len(removed)
        assert all(region.asn != asn for region in world.loop_regions)
        # The resolution index no longer routes probes into the loop.
        for region in removed:
            match = world.resolution.longest_match(region.prefix.network + 7)
            assert match is None or match[1].kind is not EntryKind.LOOP or (
                match[0] != region.prefix
            )

    def test_disclosure_campaign(self):
        world = build_world(tiny_config(seed=11))
        before = sum(r.slash48_count() for r in world.loop_regions)
        report = run_disclosure_campaign(world, response_rate=0.5)
        assert report.contacted_asns > 0
        after = sum(r.slash48_count() for r in world.loop_regions)
        assert after == before - report.loops_fixed
        assert len(report.fixed_asns) <= report.contacted_asns

    def test_disclosure_zero_response(self):
        world = build_world(tiny_config(seed=11))
        report = run_disclosure_campaign(world, response_rate=0.0)
        assert report.loops_fixed == 0

    def test_disclosure_validates_rate(self):
        world = build_world(tiny_config(seed=11))
        with pytest.raises(ValueError):
            run_disclosure_campaign(world, response_rate=1.5)
