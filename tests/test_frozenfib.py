"""Property tests: FrozenLPM is lookup-equivalent to the mutable maps.

The frozen FIB is what every shard worker of an artifact-backed world
scans through, so its equivalence to ``LengthIndexedLPM`` / ``PrefixTrie``
is a correctness pin, not an optimisation detail: any divergence would
show up as scan output differing by world representation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addr.ipv6 import IPv6Prefix, network_of
from repro.bgp.frozenfib import FrozenLPM, FrozenRow
from repro.bgp.lpm import LengthIndexedLPM
from repro.bgp.table import Announcement, BGPTable
from repro.bgp.trie import PrefixTrie

addresses = st.integers(min_value=0, max_value=(1 << 128) - 1)
# Deliberately includes both extremes (/0 catch-all, /128 host routes)
# and lengths straddling the 64-bit word split of the key columns.
lengths = st.sampled_from([0, 1, 16, 32, 47, 48, 52, 63, 64, 65, 96, 127, 128])


@st.composite
def prefix_sets(draw):
    """A random prefix map plus removals applied before freezing.

    Networks cluster around a small pool of bases so that overlapping
    prefixes (the interesting LPM case) actually occur; values include
    ``None`` (which must still count as a match, per the sentinel-probe
    semantics of the mutable maps).
    """
    pool = draw(st.lists(addresses, min_size=1, max_size=3))
    count = draw(st.integers(min_value=0, max_value=25))
    entries = []
    for _ in range(count):
        base = draw(st.sampled_from(pool))
        length = draw(lengths)
        jitter = draw(st.integers(min_value=0, max_value=(1 << 20) - 1))
        network = network_of(base ^ jitter, length)
        value = draw(st.one_of(st.none(), st.integers(), st.text(max_size=4)))
        entries.append((IPv6Prefix(network, length), value))
    remove_count = draw(st.integers(min_value=0, max_value=len(entries)))
    removals = [p for p, _ in entries[:remove_count]]
    return entries, removals


def _build(entries, removals):
    lpm: LengthIndexedLPM = LengthIndexedLPM()
    trie: PrefixTrie = PrefixTrie()
    for prefix, value in entries:
        lpm.insert(prefix, value)
        trie.insert(prefix, value)
    for prefix in removals:
        assert lpm.remove(prefix) == trie.remove(prefix)
    return lpm, trie


def _probes(entries, seed=0):
    """Addresses that exercise boundaries: the networks themselves, their
    last covered address, just-outside neighbours, plus random draws."""
    rng = random.Random(seed)
    probes = [rng.getrandbits(128) for _ in range(32)]
    for prefix, _ in entries:
        span = 1 << (128 - prefix.length)
        probes.append(prefix.network)
        probes.append(prefix.network + span - 1)
        if prefix.network > 0:
            probes.append(prefix.network - 1)
        if prefix.network + span < (1 << 128):
            probes.append(prefix.network + span)
    return probes


class TestFrozenEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(prefix_sets())
    def test_longest_match_matches_both_maps(self, data):
        entries, removals = data
        lpm, trie = _build(entries, removals)
        frozen = lpm.frozen()
        frozen_trie = trie.frozen()
        assert len(frozen) == len(lpm) == len(trie) == len(frozen_trie)
        for address in _probes(entries):
            expected = lpm.longest_match(address)
            assert trie.longest_match(address) == expected
            assert frozen.longest_match(address) == expected
            assert frozen_trie.longest_match(address) == expected

    @settings(max_examples=40, deadline=None)
    @given(prefix_sets())
    def test_batch_equals_per_address(self, data):
        entries, removals = data
        lpm, _ = _build(entries, removals)
        frozen = lpm.frozen()
        probes = _probes(entries, seed=1)
        indices = sorted(range(len(probes)), key=lambda i: probes[i])
        out_frozen: list = [None] * len(probes)
        frozen.longest_match_batch(probes, indices, out_frozen)
        out_lpm: list = [None] * len(probes)
        lpm.longest_match_batch(probes, indices, out_lpm)
        assert out_frozen == out_lpm
        # ... and both equal fresh per-address lookups.
        reference = lpm.frozen()
        assert out_frozen == [reference.longest_match(a) for a in probes]

    @settings(max_examples=40, deadline=None)
    @given(prefix_sets())
    def test_items_cover_get_all_matches(self, data):
        entries, removals = data
        lpm, trie = _build(entries, removals)
        frozen = lpm.frozen()
        assert list(frozen.items()) == list(lpm.items())
        assert dict(frozen.items()) == dict(trie.items())
        for prefix, value in lpm.items():
            assert frozen.get(prefix) == value
        for address in _probes(entries, seed=2):
            assert list(frozen.all_matches(address)) == list(
                lpm.all_matches(address)
            )
            # The trie yields shortest-first; same content either way.
            assert list(frozen.all_matches(address)) == list(
                reversed(list(trie.all_matches(address)))
            )
        for prefix, _ in entries:
            for strict in (False, True):
                assert frozen.has_cover(prefix, strict=strict) == lpm.has_cover(
                    prefix, strict=strict
                )

    @settings(max_examples=20, deadline=None)
    @given(prefix_sets(), st.integers(min_value=1, max_value=8))
    def test_tiny_cache_still_exact(self, data, cache_size):
        """Heavy eviction pressure must never change results — the LRU
        block cache is advisory."""
        entries, removals = data
        lpm, _ = _build(entries, removals)
        frozen = lpm.frozen(cache_size=cache_size)
        probes = _probes(entries, seed=3)
        for _ in range(3):  # revisits hit, evict, refill
            for address in probes:
                assert frozen.longest_match(address) == lpm.longest_match(
                    address
                )


class TestFrozenBehaviour:
    def test_mutation_raises(self):
        frozen = LengthIndexedLPM().frozen()
        with pytest.raises(TypeError):
            frozen.insert(IPv6Prefix(0, 0), 1)
        with pytest.raises(TypeError):
            frozen.remove(IPv6Prefix(0, 0))

    def test_empty(self):
        frozen = PrefixTrie().frozen()
        assert len(frozen) == 0
        assert frozen.longest_match(123) is None
        assert list(frozen.items()) == []

    def test_block_shift_matches_source(self):
        lpm = LengthIndexedLPM()
        lpm.insert(IPv6Prefix.of(1 << 100, 32), "a")
        assert lpm.frozen().block_shift == lpm.block_shift  # /48 floor
        lpm.insert(IPv6Prefix.of(1 << 100, 96), "b")
        assert lpm.frozen().block_shift == lpm.block_shift

    def test_none_values_match(self):
        lpm = LengthIndexedLPM()
        prefix = IPv6Prefix.of(0xDEAD << 100, 48)
        lpm.insert(prefix, None)
        frozen = lpm.frozen()
        match = frozen.longest_match(prefix.network | 7)
        assert match is not None and match == (prefix, None)

    def test_memoryview_columns(self):
        """Key columns can be memoryview casts over packed bytes — the
        exact shape the mmap'd world artifact feeds in."""
        from array import array

        networks = sorted(
            network_of(random.Random(5).getrandbits(128), 64)
            for _ in range(50)
        )
        networks = sorted(set(networks))
        hi = array("Q", (n >> 64 for n in networks))
        lo = array("Q", (n & ((1 << 64) - 1) for n in networks))
        row = FrozenRow(
            64,
            memoryview(hi.tobytes()).cast("Q"),
            memoryview(lo.tobytes()).cast("Q"),
            list(range(len(networks))),
        )
        frozen: FrozenLPM = FrozenLPM([row])
        reference: LengthIndexedLPM = LengthIndexedLPM()
        for i, network in enumerate(networks):
            reference.insert(IPv6Prefix(network, 64), i)
        for network in networks:
            for address in (network, network + 1, network - 1):
                assert frozen.longest_match(address) == reference.longest_match(
                    address
                )

    def test_bgp_table_freeze_lookups(self):
        table = BGPTable()
        rng = random.Random(11)
        prefixes = [
            IPv6Prefix.of(rng.getrandbits(128), rng.choice((32, 40, 48)))
            for _ in range(60)
        ]
        for i, prefix in enumerate(prefixes):
            table.add(Announcement(prefix=prefix, origin_asn=1000 + i))
        probes = [rng.getrandbits(128) for _ in range(200)]
        probes += [p.network | 5 for p in prefixes]
        before = [table.origin_of(a) for a in probes]
        table.freeze_lookups()
        assert [table.origin_of(a) for a in probes] == before
        assert table.has_cover(prefixes[0])
        with pytest.raises(TypeError):
            table.add(Announcement(prefix=IPv6Prefix(0, 0), origin_asn=1))
        with pytest.raises(TypeError):
            table.withdraw(prefixes[0])
