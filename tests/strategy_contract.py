"""The reusable TargetStream/TargetStrategy contract suite.

Any producer of probe-target windows — a registered discovery strategy,
a survey input set, a computable stream — must honour one contract so
the scan substrate can treat them interchangeably:

* ``__len__``/``__iter__``/``__getitem__`` agree (seeks in any order,
  negative indices, ``IndexError`` past either end),
* slices return a plain ``list`` equal to slicing the realised list
  (the uniform slice semantics of ``TargetStream``),
* when a stream carries a spec, ``build_stream(spec, world)`` rebuilds
  the identical stream in a fresh context (what pool workers do),
* ``shard_positions`` windows tile the stream: any shard split merged
  by global position IS the serial visit order (hypothesis property),
* scanning the stream through a sharded runner produces byte-identical
  records at 1, 4 and 8 shards.

Import the suite and parametrise it with :class:`StreamCase` rows::

    from strategy_contract import StreamCase, StreamContract, default_cases

    @pytest.fixture(params=default_cases(), ids=lambda c: c.id)
    def case(request):
        return request.param

    class TestContract(StreamContract):
        pass

``default_cases()`` covers every registered strategy (adaptive ones both
cold and with evolved feedback state) plus the pre-existing stream
implementations, so a new strategy registers into the suite for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.addr.ipv6 import IPv6Prefix
from repro.scanner.records import record_jsonl_line
from repro.scanner.sharded import ShardedScanRunner
from repro.scanner.stream import (
    IndexWindow,
    LazyStream,
    ListStream,
    PermutedStream,
    SubnetPartitionStream,
    TargetStream,
    build_stream,
    shard_positions,
)
from repro.scanner.strategies import build_strategy, strategy_names
from repro.scanner.zmapv6 import ScanConfig

# Small enough that every contract test runs in milliseconds, large
# enough that 8-shard splits all get non-trivial windows.
CASE_BUDGET = 128
CASE_SEED = 5
# Epoch band for contract scans, clear of the campaigns' and the race's.
CASE_EPOCH = 5000


@dataclass(frozen=True)
class StreamCase:
    """One parametrisation of the contract suite."""

    id: str
    build: Callable[[object], TargetStream]  # world -> fresh stream
    # Computable streams (e.g. subnet partitions) point outside the
    # world's routed space; they still scan, just reply-free.
    scan: bool = True


def _strategy_window(world, name: str, epoch: int = 0) -> TargetStream:
    strategy = build_strategy(
        name, world, seed=CASE_SEED, budget=CASE_BUDGET
    )
    if epoch > 0:
        # Evolve real feedback state: observe the records of each prior
        # epoch's window through a serial scan (deterministic, so every
        # rebuild of this case agrees).
        runner = ShardedScanRunner(world, shards=1, executor="serial")
        for prior in range(epoch):
            window = strategy.window(prior)
            result = runner.scan(
                window,
                ScanConfig(pps=10_000.0, seed=CASE_SEED + prior),
                name=f"contract-{name}",
                epoch=CASE_EPOCH + prior,
            )
            strategy.observe(result.records)
    return strategy.window(epoch)


def default_cases() -> list[StreamCase]:
    """Every registered strategy plus the stock stream implementations."""
    cases = []
    for name in strategy_names():
        cases.append(
            StreamCase(
                id=f"strategy-{name}",
                build=lambda world, name=name: _strategy_window(world, name),
            )
        )
        cases.append(
            StreamCase(
                id=f"strategy-{name}-e1",
                build=lambda world, name=name: _strategy_window(
                    world, name, epoch=1
                ),
            )
        )
    cases += [
        StreamCase(
            id="list-stream",
            build=lambda world: ListStream(
                [(0x2001_0DB8 << 96) | (i << 64) for i in range(100)],
                name="list",
                subnet_length=64,
            ),
        ),
        StreamCase(
            id="lazy-cli-input-set",
            build=lambda world: __import__(
                "repro.scanner.cli", fromlist=["build_targets"]
            ).build_targets(
                world, "bgp-48", max_targets=CASE_BUDGET, seed=CASE_SEED
            ),
        ),
        StreamCase(
            id="subnet-partition",
            build=lambda world: SubnetPartitionStream(
                IPv6Prefix.parse("2001:db8::/40"), 48
            ),
            scan=False,
        ),
        StreamCase(
            id="permuted",
            build=lambda world: PermutedStream(
                ListStream(
                    [(0x2001_0DB8 << 96) | (i << 64) for i in range(97)],
                    name="src",
                    subnet_length=64,
                ),
                seed=CASE_SEED,
            ),
        ),
    ]
    return cases


class StreamContract:
    """The suite.  Subclass it next to a ``case`` fixture."""

    # -- sequence protocol -- #

    def test_len_positive_and_iteration_matches(self, case, tiny_world):
        stream = case.build(tiny_world)
        realised = list(stream)
        assert len(stream) == len(realised) > 0
        assert list(stream) == realised  # re-iteration is stable

    def test_getitem_agrees_with_iteration(self, case, tiny_world):
        stream = case.build(tiny_world)
        realised = list(stream)
        # Seeks in arbitrary order — backwards, repeated, negative.
        probes = [len(realised) - 1, 0, len(realised) // 2, 0, -1]
        for index in probes:
            assert stream[index] == realised[index], index
        assert [stream[i] for i in range(len(stream))] == realised
        with pytest.raises(IndexError):
            stream[len(realised)]
        with pytest.raises(IndexError):
            stream[-len(realised) - 1]

    def test_slice_semantics_are_uniform(self, case, tiny_world):
        """``stream[i:j:k]`` is a plain list equal to slicing the
        realised list — for every implementation."""
        stream = case.build(tiny_world)
        realised = list(stream)
        half = len(realised) // 2
        for sliced in (
            slice(None),
            slice(2, half),
            slice(half, None),
            slice(None, None, 3),
            slice(half, 2, -1),
            slice(-5, None),
            slice(len(realised) + 10, len(realised) + 20),
        ):
            got = stream[sliced]
            assert type(got) is list, sliced
            assert got == realised[sliced], sliced

    # -- provenance + spec round-trip -- #

    def test_provenance(self, case, tiny_world):
        stream = case.build(tiny_world)
        assert stream.name
        assert stream.subnet_length is None or 0 < stream.subnet_length <= 128

    def test_spec_round_trip(self, case, tiny_world):
        """A pool worker rebuilding from the spec gets the same stream."""
        stream = case.build(tiny_world)
        spec = stream.spec()
        if spec is None:
            pytest.skip("stream carries no spec (data ships instead)")
        rebuilt = build_stream(spec, tiny_world)
        assert list(rebuilt) == list(stream)
        assert rebuilt.subnet_length == stream.subnet_length

    # -- shard-window tiling -- #

    @given(shards=st.integers(min_value=1, max_value=8), permute=st.booleans())
    @settings(
        max_examples=16,
        deadline=None,
        # The `case` fixture is an immutable parametrisation row and the
        # stream is rebuilt inside the test body — safe across examples.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_shard_windows_tile_the_stream(
        self, case, tiny_world, shards, permute
    ):
        """Any shard split, merged by global position, visits exactly the
        serial order — the property that makes sharding bit-identical."""
        stream = case.build(tiny_world)
        size = len(stream)
        serial = [
            stream[i]
            for _, i in shard_positions(
                size, seed=CASE_SEED, epoch=0, permute=permute
            )
        ]
        split = []
        for shard in range(shards):
            split.extend(
                shard_positions(
                    size,
                    seed=CASE_SEED,
                    epoch=0,
                    window=IndexWindow(shard, shards),
                    permute=permute,
                )
            )
        split.sort(key=lambda pair: pair[0])
        assert [stream[i] for _, i in split] == serial
        assert sorted(i for _, i in split) == list(range(size))

    # -- scan determinism -- #

    def test_records_byte_identical_at_1_4_8_shards(self, case, tiny_world):
        if not case.scan:
            pytest.skip("stream points outside the world's routed space")
        outputs = []
        for shards in (1, 4, 8):
            stream = case.build(tiny_world)
            runner = ShardedScanRunner(
                tiny_world, shards=shards, executor="thread"
            )
            result = runner.scan(
                stream,
                ScanConfig(pps=10_000.0, seed=CASE_SEED),
                name=f"contract-{case.id}",
                epoch=CASE_EPOCH + 100,
            )
            outputs.append(
                "".join(record_jsonl_line(r) for r in result.records)
            )
        assert outputs[0] == outputs[1] == outputs[2]
