"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addr.ipv6 import (
    IPv6Prefix,
    format_address,
    network_of,
    parse_address,
    prefix_mask,
)
from repro.addr.partition import hitlist_targets, stage2_targets
from repro.addr.permutation import CyclicPermutation, next_prime
from repro.addr.sra import is_sra_candidate, sra_address, sra_of
from repro.bgp.lpm import LengthIndexedLPM
from repro.bgp.trie import PrefixTrie
from repro.netsim.ratelimit import TokenBucket
from repro.netsim.stochastic import stable_unit
from repro.packet.icmpv6 import ICMPv6Message, echo_request
from repro.packet.ipv6hdr import IPv6Header, internet_checksum
from repro.packet.probe import decode_payload, encode_payload

addresses = st.integers(min_value=0, max_value=(1 << 128) - 1)
lengths = st.integers(min_value=0, max_value=128)
prefix_pairs = st.tuples(addresses, lengths)


def make_prefix(address: int, length: int) -> IPv6Prefix:
    return IPv6Prefix.of(address, length)


class TestAddressProperties:
    @given(addresses)
    def test_format_parse_roundtrip(self, value):
        assert parse_address(format_address(value)) == value

    @given(addresses, lengths)
    def test_network_idempotent(self, address, length):
        network = network_of(address, length)
        assert network_of(network, length) == network

    @given(addresses, lengths)
    def test_prefix_contains_its_addresses(self, address, length):
        prefix = make_prefix(address, length)
        assert address in prefix
        assert prefix.first in prefix
        assert prefix.last in prefix

    @given(addresses, lengths, lengths)
    def test_supernet_covers(self, address, length_a, length_b):
        longer, shorter = max(length_a, length_b), min(length_a, length_b)
        inner = make_prefix(address, longer)
        outer = inner.supernet(shorter)
        assert outer.covers(inner)

    @given(lengths)
    def test_mask_popcount(self, length):
        assert bin(prefix_mask(length)).count("1") == length

    @given(st.lists(addresses, max_size=60))
    def test_hitlist_targets_distinct_and_aligned(self, hosts):
        targets = list(hitlist_targets(hosts))
        assert len(targets) == len(set(targets))
        for target in targets:
            assert target & ((1 << 64) - 1) == 0
        # Every host maps to exactly one of the emitted targets.
        for host in hosts:
            assert network_of(host, 64) in set(targets)


class TestPermutationProperties:
    @given(st.integers(min_value=1, max_value=3000), st.integers())
    @settings(max_examples=30, deadline=None)
    def test_bijection(self, size, seed):
        values = list(CyclicPermutation(size, seed=seed))
        assert sorted(values) == list(range(size))

    @given(st.integers(min_value=2, max_value=10**7))
    @settings(max_examples=50, deadline=None)
    def test_next_prime_is_prime_and_geq(self, n):
        prime = next_prime(n)
        assert prime >= n
        assert all(prime % d for d in range(2, min(prime, 1000)) if d < prime)


class TestLPMProperties:
    @given(
        st.lists(prefix_pairs, min_size=1, max_size=40),
        st.lists(addresses, min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_lpm_matches_naive_reference(self, pairs, queries):
        lpm = LengthIndexedLPM()
        trie = PrefixTrie()
        stored = {}
        for address, length in pairs:
            prefix = make_prefix(address, length)
            stored[prefix] = str(prefix)
            lpm.insert(prefix, str(prefix))
            trie.insert(prefix, str(prefix))
        for query in queries:
            naive = max(
                (p for p in stored if query in p),
                key=lambda p: p.length,
                default=None,
            )
            got_lpm = lpm.longest_match(query)
            got_trie = trie.longest_match(query)
            if naive is None:
                assert got_lpm is None and got_trie is None
            else:
                assert got_lpm is not None and got_lpm[0] == naive
                assert got_trie is not None and got_trie[0] == naive

    @given(st.lists(prefix_pairs, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_insert_remove_returns_to_empty(self, pairs):
        lpm = LengthIndexedLPM()
        prefixes = {make_prefix(a, length) for a, length in pairs}
        for prefix in prefixes:
            lpm.insert(prefix, 1)
        assert len(lpm) == len(prefixes)
        for prefix in prefixes:
            assert lpm.remove(prefix)
        assert len(lpm) == 0
        for address, _ in pairs:
            assert lpm.longest_match(address) is None


class TestPacketProperties:
    @given(addresses, addresses, st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_icmp_encode_decode_roundtrip(self, src, dst, payload):
        message = echo_request(1, 2, payload)
        raw = message.encode(src, dst)
        decoded = ICMPv6Message.decode(raw, src=src, dst=dst)
        assert decoded.body == payload

    @given(st.binary(max_size=128))
    def test_checksum_of_data_plus_checksum_is_zero(self, data):
        checksum = internet_checksum(data)
        if len(data) % 2:
            data += b"\x00"
        combined = data + checksum.to_bytes(2, "big")
        assert internet_checksum(combined) == 0

    @given(addresses, addresses, st.integers(0, 255), st.integers(0, 0xFFFF))
    def test_header_roundtrip(self, src, dst, hop_limit, payload_length):
        header = IPv6Header(
            src=src, dst=dst, payload_length=payload_length, hop_limit=hop_limit
        )
        assert IPv6Header.decode(header.encode()) == header

    @given(addresses, st.integers(0, (1 << 64) - 1), st.binary(min_size=8, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_payload_roundtrip_any_key(self, target, probe_id, key):
        payload = encode_payload(target, probe_id, key)
        decoded = decode_payload(payload, key)
        assert decoded is not None
        assert decoded.target == target
        assert decoded.probe_id == probe_id


class TestStage2Properties:
    @given(
        st.lists(
            st.tuples(addresses, st.integers(min_value=20, max_value=52)),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_stage2_targets_are_distinct_slash48_networks(self, pairs, budget):
        announcements = [make_prefix(a, length) for a, length in pairs]
        rng = random.Random(0)
        targets = list(
            stage2_targets(announcements, max_per_prefix=budget, rng=rng)
        )
        assert len(targets) == len(set(targets))
        for target in targets:
            assert network_of(target, 48) == target


class TestSRAProperties:
    subnet_lengths = st.integers(min_value=0, max_value=128)

    @given(addresses, subnet_lengths)
    def test_sra_of_is_idempotent(self, address, length):
        sra = sra_of(address, length)
        assert sra_of(sra, length) == sra

    @given(addresses, subnet_lengths)
    def test_sra_of_yields_a_candidate(self, address, length):
        assert is_sra_candidate(sra_of(address, length), length)

    @given(addresses, subnet_lengths)
    def test_candidate_iff_fixed_point(self, address, length):
        # is_sra_candidate is exactly "sra_of leaves the address alone"
        assert is_sra_candidate(address, length) == (
            sra_of(address, length) == address
        )

    @given(addresses)
    def test_nested_subnet_lengths_compose(self, address):
        # The /48 SRA of an address equals the /48 SRA of its /64 SRA:
        # zeroing host bits commutes with widening the subnet.
        assert sra_of(sra_of(address, 64), 48) == sra_of(address, 48)

    @given(addresses, subnet_lengths)
    def test_sra_address_of_prefix_is_its_network(self, address, length):
        prefix = make_prefix(address, length)
        assert sra_address(prefix) == prefix.network
        assert is_sra_candidate(sra_address(prefix), length)

    @given(addresses)
    def test_zero_length_sra_is_all_zeros(self, address):
        assert sra_of(address, 0) == 0

    @given(addresses)
    def test_full_length_sra_is_identity(self, address):
        assert sra_of(address, 128) == address


# Arbitrary bucket workloads: non-decreasing call times built from gaps,
# with mixed costs (0 = pure refill observation).
bucket_rates = st.floats(min_value=0.5, max_value=100, allow_nan=False)
bucket_bursts = st.integers(min_value=1, max_value=50)
bucket_calls = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=5, allow_nan=False),
    ),
    min_size=1,
    max_size=100,
)


class TestRateLimitProperties:
    @given(
        bucket_rates,
        bucket_bursts,
        st.lists(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_bucket_never_exceeds_theoretical_budget(self, rate, burst, gaps):
        bucket = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        allowed = 0
        for gap in gaps:
            now += gap
            if bucket.allow(now):
                allowed += 1
        # Conservation: can never pass more than burst + rate*elapsed.
        assert allowed <= burst + rate * now + 1e-6

    @given(bucket_rates, bucket_bursts, bucket_calls)
    @settings(max_examples=50, deadline=None)
    def test_tokens_stay_within_bounds(self, rate, burst, calls):
        # Tokens never go negative and never exceed burst, whatever the
        # (time, cost) sequence thrown at the bucket.
        bucket = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        for gap, cost in calls:
            now += gap
            bucket.allow(now, cost=cost)
            assert 0.0 <= bucket.tokens <= bucket.burst

    @given(
        bucket_rates,
        bucket_bursts,
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_refill_is_monotone_in_elapsed_time(self, rate, burst, t1, t2):
        # Observed on fresh drained buckets via zero-cost calls: waiting
        # longer can only leave more (or equal) tokens.
        earlier, later = sorted((t1, t2))

        def tokens_after(wait):
            bucket = TokenBucket(rate=rate, burst=burst, initial=0.0)
            bucket.allow(wait, cost=0.0)
            return bucket.tokens

        assert tokens_after(earlier) <= tokens_after(later) + 1e-12

    @given(bucket_rates, bucket_bursts, bucket_calls)
    @settings(max_examples=50, deadline=None)
    def test_denials_counts_exactly_the_false_returns(
        self, rate, burst, calls
    ):
        bucket = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        denied = 0
        for gap, cost in calls:
            now += gap
            if not bucket.allow(now, cost=cost):
                denied += 1
        assert bucket.denials == denied

    @given(bucket_rates, bucket_bursts, bucket_calls)
    @settings(max_examples=25, deadline=None)
    def test_denials_survive_reset(self, rate, burst, calls):
        # The denial counter is a lifetime observability counter: reset()
        # refills tokens but never rewrites history.
        bucket = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        for gap, cost in calls:
            now += gap
            bucket.allow(now, cost=cost)
        before = bucket.denials
        bucket.reset()
        assert bucket.denials == before
        assert bucket.tokens == bucket.burst


class TestStochasticProperties:
    @given(st.integers(), st.lists(st.integers(), max_size=4))
    def test_stable_unit_is_pure(self, seed, keys):
        a = stable_unit(seed, b"purpose", *keys)
        b = stable_unit(seed, b"purpose", *keys)
        assert a == b
        assert 0.0 <= a < 1.0


class TestContributionProperties:
    """Accounting invariants of ``contribute_to_hitlist``.

    Pins the fixed tally semantics: every distinct candidate source is
    counted exactly once, and the alias verdict is applied before (and
    identically regardless of) the echo/error-only distinction.
    """

    sources = st.sets(st.integers(min_value=0, max_value=511), max_size=40)

    @staticmethod
    def _scan(echo, error):
        from repro.scanner.records import ScanRecord, ScanResult

        result = ScanResult(
            name="scan", epoch=0, sent=len(echo | error), duration=1.0
        )
        result.records = [
            ScanRecord(target=s, source=s, icmp_type=129, code=0, time=0.0)
            for s in sorted(echo)
        ] + [
            ScanRecord(target=s, source=s, icmp_type=1, code=3, time=0.0)
            for s in sorted(error)
        ]
        return result

    @staticmethod
    def _contribute(echo, error, **kwargs):
        from repro.analysis.hitlist_feedback import contribute_to_hitlist
        from repro.hitlist.hitlist import Hitlist

        scan = TestContributionProperties._scan(echo, error)
        return contribute_to_hitlist(Hitlist(), [scan], **kwargs)

    @staticmethod
    def _aliases():
        from repro.hitlist.aliases import AliasedPrefixList

        # Aliased region = addresses 0..127, a deterministic boundary the
        # strategies straddle.
        return AliasedPrefixList([IPv6Prefix(0, 121)])

    @given(echo=sources, error=sources, include=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_considered_counts_every_candidate(self, echo, error, include):
        report = self._contribute(
            echo,
            error,
            alias_list=self._aliases(),
            include_error_sources=include,
        )
        # considered == |echo ∪ error_only| == |echo ∪ error|: every
        # distinct source lands in exactly one tally bucket.
        assert report.considered == len(echo | error)
        assert report.added == len(report.new_addresses)
        assert report.already_known == 0  # fresh hitlist each run

    @given(echo=sources, error=sources)
    @settings(max_examples=60, deadline=None)
    def test_alias_rejection_ignores_reply_type(self, echo, error):
        """Swapping which replies are echo vs error must not move a
        single address between the aliased tally and any other."""
        forward = self._contribute(echo, error, alias_list=self._aliases())
        swapped = self._contribute(error, echo, alias_list=self._aliases())
        expected = len({s for s in echo | error if s < 128})
        assert forward.rejected_aliased == expected
        assert swapped.rejected_aliased == expected
        assert forward.considered == swapped.considered

    @given(echo=sources, error=sources)
    @settings(max_examples=60, deadline=None)
    def test_tallies_partition_exactly(self, echo, error):
        report = self._contribute(echo, error, alias_list=self._aliases())
        error_only = error - echo
        assert report.rejected_error_only == len(
            {s for s in error_only if s >= 128}
        )
        assert report.added == len({s for s in echo if s >= 128})
        assert sorted(report.new_addresses) == report.new_addresses
