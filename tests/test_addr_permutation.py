"""Tests for the zmap-style cyclic permutation and prime helpers."""

import pytest

from repro.addr.permutation import CyclicPermutation, next_prime
from repro.addr.randomgen import (
    random_address_in,
    random_targets,
    random_targets_for_sras,
)
from repro.addr.ipv6 import IPv6Prefix, parse_address
import random


class TestNextPrime:
    def test_small_values(self):
        assert next_prime(2) == 2
        assert next_prime(3) == 3
        assert next_prime(4) == 5
        assert next_prime(10) == 11

    def test_large_value(self):
        prime = next_prime(1_000_000)
        assert prime >= 1_000_000
        for small in (2, 3, 5, 7, 11, 13):
            assert prime % small != 0


class TestCyclicPermutation:
    @pytest.mark.parametrize("size", [1, 2, 7, 100, 1009, 4096])
    def test_is_a_permutation(self, size):
        values = list(CyclicPermutation(size, seed=42))
        assert sorted(values) == list(range(size))

    def test_len(self):
        assert len(CyclicPermutation(17, seed=1)) == 17

    def test_seed_changes_order(self):
        a = list(CyclicPermutation(500, seed=1))
        b = list(CyclicPermutation(500, seed=2))
        assert a != b
        assert sorted(a) == sorted(b)

    def test_deterministic_for_seed(self):
        assert list(CyclicPermutation(300, seed=9)) == list(
            CyclicPermutation(300, seed=9)
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CyclicPermutation(0, seed=1)

    def test_spreads_consecutive_indices(self):
        # Probe dispersion: consecutive outputs should rarely be adjacent
        # indices (that is the whole point of permuting).
        values = list(CyclicPermutation(10_000, seed=3))
        adjacent = sum(
            1 for a, b in zip(values, values[1:]) if abs(a - b) == 1
        )
        assert adjacent < len(values) * 0.01


class TestRandomTargets:
    def test_random_address_in_subnet(self):
        prefix = IPv6Prefix.parse("2001:db8:1:2::/64")
        rng = random.Random(1)
        for _ in range(50):
            address = random_address_in(prefix, rng)
            assert address in prefix
            assert address != prefix.network  # host bits never zero

    def test_single_address_prefix(self):
        prefix = IPv6Prefix.parse("2001:db8::1/128")
        rng = random.Random(2)
        assert random_address_in(prefix, rng) == prefix.network

    def test_random_targets_one_per_subnet(self):
        subnets = [
            IPv6Prefix.parse("2001:db8:1::/64"),
            IPv6Prefix.parse("2001:db8:2::/64"),
        ]
        rng = random.Random(3)
        targets = list(random_targets(subnets, rng))
        assert len(targets) == 2
        for target, subnet in zip(targets, subnets):
            assert target in subnet

    def test_random_targets_for_sras(self):
        sras = [parse_address("2001:db8:1::"), parse_address("2001:db8:2::")]
        rng = random.Random(4)
        targets = list(random_targets_for_sras(sras, 64, rng))
        assert len(targets) == 2
        for sra, target in zip(sras, targets):
            assert target != sra
            assert (target >> 64) == (sra >> 64)

    def test_deterministic_with_seed(self):
        sras = [parse_address("2001:db8:1::")]
        a = list(random_targets_for_sras(sras, 64, random.Random(5)))
        b = list(random_targets_for_sras(sras, 64, random.Random(5)))
        assert a == b
