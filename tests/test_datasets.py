"""Tests for the comparison-dataset builders (§5)."""

import pytest

from repro.datasets.caida import run_ark_campaign
from repro.datasets.common import AddressDataset
from repro.datasets.ixp import run_ixp_capture
from repro.datasets.ripeatlas import run_atlas_campaign
from repro.datasets.traceroute import traceroute
from repro.datasets.tum import (
    harvest_hitlist,
    hitlist_ground_truth_slash64s,
    published_alias_list,
)
from repro.metadata.asn import ASNMapper
from repro.netsim.engine import SimulationEngine
from repro.packet.icmpv6 import ICMPv6Type


class TestTraceroute:
    def test_hops_match_transit_path(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        subnet = next(
            s
            for s in tiny_world.subnets.values()
            if not s.flaky and s.death_epoch is None and not s.aliased
        )
        trace = traceroute(engine, subnet.sra_address, probes_per_hop=3)
        path = tiny_world.paths[subnet.asn]
        observed = [hop.source for hop in trace.hops if hop.source is not None]
        # Transit TEs follow the precomputed path interfaces in order.
        expected = [hop.interface for hop in path]
        overlap = [src for src in observed if src in expected]
        assert overlap == [e for e in expected if e in observed]

    def test_reached_terminal(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        from repro.topology.profiles import SRABehavior

        subnet = next(
            s
            for s in tiny_world.subnets.values()
            if tiny_world.routers[s.router_id].vendor.sra_behavior
            is SRABehavior.REPLY
            and not s.flaky and s.death_epoch is None and not s.aliased
        )
        trace = traceroute(engine, subnet.sra_address, probes_per_hop=3)
        assert trace.reached
        assert trace.destination_source is not None

    def test_loop_detection(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        region = tiny_world.loop_regions[0]
        target = region.prefix.network | 0x77
        trace = traceroute(engine, target, max_hops=40, probes_per_hop=3)
        assert not trace.reached
        # Looping traces end at the repeat/alternate heuristic or gap.
        assert len(trace.hops) <= 40

    def test_gap_limit_stops_trace(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        # Unrouted space: nothing past the upstream answers.
        trace = traceroute(engine, 0x3ABC << 112, max_hops=30, probes_per_hop=1)
        assert len(trace.hops) < 30

    def test_responding_sources(self):
        from repro.datasets.traceroute import TracerouteHop, TracerouteResult

        result = TracerouteResult(target=1)
        result.hops = [
            TracerouteHop(1, 10, int(ICMPv6Type.TIME_EXCEEDED)),
            TracerouteHop(2, None, None),
        ]
        result.destination_source = 20
        assert result.responding_sources() == {10, 20}


class TestTumHarvest:
    def test_coverage_bounds(self, tiny_world):
        full = harvest_hitlist(
            tiny_world, coverage=1.0, stale_fraction=0.0, router_fraction=0.0
        )
        hosts = set(tiny_world.all_hosts())
        assert set(full.addresses()) == hosts

    def test_router_fraction_adds_interfaces(self, tiny_world):
        """The extended hitlist folds in traceroute-discovered router
        addresses (gives the paper's small SRA/hitlist overlap)."""
        hitlist = harvest_hitlist(
            tiny_world, coverage=0.5, stale_fraction=0.2, router_fraction=0.5
        )
        interfaces = {
            s.router_interface for s in tiny_world.subnets.values()
        }
        assert set(hitlist.addresses()) & interfaces

    def test_stale_entries_added(self, tiny_world):
        hitlist = harvest_hitlist(tiny_world, coverage=0.5, stale_fraction=0.4)
        hosts = set(tiny_world.all_hosts())
        stale = [a for a in hitlist if a not in hosts]
        assert len(stale) == pytest.approx(len(hitlist) * 0.4, rel=0.15)

    def test_stale_entries_routed(self, tiny_world):
        hitlist = harvest_hitlist(tiny_world, coverage=0.3, stale_fraction=0.5)
        hosts = set(tiny_world.all_hosts())
        for address in hitlist:
            if address not in hosts:
                assert tiny_world.bgp.is_routed(address)

    def test_validation(self, tiny_world):
        with pytest.raises(ValueError):
            harvest_hitlist(tiny_world, coverage=0.0)
        with pytest.raises(ValueError):
            harvest_hitlist(tiny_world, stale_fraction=1.0)

    def test_alias_list_recall(self, tiny_world):
        full = published_alias_list(tiny_world, recall=1.0)
        aliased_subnets = [s for s in tiny_world.subnets.values() if s.aliased]
        for subnet in aliased_subnets:
            assert full.contains_prefix(subnet.prefix)
        partial = published_alias_list(tiny_world, recall=0.5)
        assert len(partial) <= len(full)

    def test_ground_truth_slash64s(self, tiny_world):
        truth = hitlist_ground_truth_slash64s(tiny_world)
        assert truth
        for prefix in truth:
            assert tiny_world.subnets[prefix.network].hosts


class TestArkCampaign:
    def test_discovers_transit_routers(self, tiny_world):
        dataset = run_ark_campaign(tiny_world, max_prefixes=30)
        assert dataset.name == "caida-ark"
        assert len(dataset) > 0
        # Traceroute-discovered addresses are dominated by infra interfaces.
        infra_addresses = set()
        for infra in tiny_world.infra_subnets.values():
            infra_addresses |= set(infra.interfaces)
        assert dataset.addresses & infra_addresses

    def test_prefix_budget(self, tiny_world):
        small = run_ark_campaign(tiny_world, max_prefixes=5)
        large = run_ark_campaign(tiny_world, max_prefixes=50)
        assert len(large) >= len(small)


class TestAtlasCampaign:
    def test_includes_probe_local_interfaces(self, tiny_world, tiny_hitlist):
        dataset = run_atlas_campaign(
            tiny_world, tiny_hitlist, max_targets=100, probe_as_fraction=1.0
        )
        border_ifaces = {
            tiny_world.routers[info.border_router_id].interface_addresses[0]
            for info in tiny_world.ases.values()
            if info.border_router_id is not None
            and tiny_world.routers[info.border_router_id].interface_addresses
        }
        assert len(dataset.addresses & border_ifaces) > len(border_ifaces) * 0.8

    def test_more_probe_ases_more_addresses(self, tiny_world, tiny_hitlist):
        few = run_atlas_campaign(
            tiny_world, tiny_hitlist, max_targets=50, probe_as_fraction=0.1
        )
        many = run_atlas_campaign(
            tiny_world, tiny_hitlist, max_targets=50, probe_as_fraction=0.9
        )
        assert len(many) > len(few)


class TestIXPCapture:
    def test_sampled_counts(self, tiny_world):
        capture = run_ixp_capture(tiny_world, packets=100_000, sample_rate=100)
        assert capture.packets_sampled <= 100_000 // 100
        assert capture.all_addresses()

    def test_addresses_are_hosts(self, tiny_world):
        capture = run_ixp_capture(tiny_world, packets=50_000, sample_rate=50)
        hosts = set(tiny_world.all_hosts())
        loopbacks = {r.loopback for r in tiny_world.routers.values()}
        for address in capture.all_addresses():
            assert address in hosts or address in loopbacks

    def test_traffic_skewed_to_top_ases(self, tiny_world):
        capture = run_ixp_capture(tiny_world, packets=400_000, sample_rate=50)
        mapper = ASNMapper(tiny_world.bgp)
        top = capture.as_dataset().top_asns(mapper, 3)
        assert top
        # The top AS carries a disproportionate share (paper: >40 %).
        assert top[0][1] > 0.15

    def test_bidirectional_subset(self, tiny_world):
        capture = run_ixp_capture(tiny_world, packets=100_000, sample_rate=50)
        bidirectional = capture.bidirectional_addresses()
        assert bidirectional <= capture.all_addresses()


class TestAddressDataset:
    def test_set_operations(self):
        a = AddressDataset(name="a", addresses={1, 2, 3})
        b = AddressDataset(name="b", addresses={3, 4})
        assert a.overlap(b) == {3}
        assert a.exclusive([b]) == {1, 2}
        assert 2 in a and 9 not in a
        assert len(a) == 3

    def test_asns(self, tiny_world):
        mapper = ASNMapper(tiny_world.bgp)
        subnet = next(iter(tiny_world.subnets.values()))
        dataset = AddressDataset(name="x", addresses={subnet.router_interface})
        assert dataset.asns(mapper) == {subnet.asn}

    def test_top_asns_shares_sum(self, tiny_world):
        mapper = ASNMapper(tiny_world.bgp)
        addresses = {s.router_interface for s in tiny_world.subnets.values()}
        dataset = AddressDataset(name="x", addresses=addresses)
        top = dataset.top_asns(mapper, 5)
        assert len(top) == 5
        assert sum(share for _, share in top) <= 1.0
        assert top == sorted(top, key=lambda t: -t[1])
