"""Tests for the IRR (RPSL route6) substrate and hitlist containers."""

import pytest

from repro.addr.ipv6 import AddressError, IPv6Prefix, parse_address
from repro.hitlist.aliases import AliasedPrefixList
from repro.hitlist.hitlist import Hitlist
from repro.irr.database import IRRDatabase
from repro.irr.rpsl import (
    RPSLError,
    Route6Object,
    parse_database,
    parse_route6,
    serialize_database,
)

BLOCK = """\
route6:         2001:db8:1::/48
origin:         AS64500
descr:          Example customer block
mnt-by:         MAINT-EXAMPLE
source:         RIPE
"""


class TestRPSLParse:
    def test_parse_basic(self):
        obj = parse_route6(BLOCK)
        assert obj.prefix == IPv6Prefix.parse("2001:db8:1::/48")
        assert obj.origin_asn == 64500
        assert obj.descr == "Example customer block"
        assert obj.maintainer == "MAINT-EXAMPLE"
        assert obj.source == "RIPE"

    def test_parse_lowercase_origin(self):
        obj = parse_route6("route6: 2001:db8::/32\norigin: as7\n")
        assert obj.origin_asn == 7

    def test_continuation_lines(self):
        block = (
            "route6: 2001:db8::/32\n"
            "origin: AS1\n"
            "descr: line one\n"
            "        line two\n"
            "+line three\n"
        )
        obj = parse_route6(block)
        assert obj.descr == "line one line two line three"

    def test_unknown_attributes_preserved(self):
        block = BLOCK + "remarks:        keep me\n"
        obj = parse_route6(block)
        assert ("remarks", "keep me") in obj.extra
        assert "remarks" in obj.to_rpsl()

    def test_comments_skipped(self):
        obj = parse_route6("% mirror header\n" + BLOCK)
        assert obj.origin_asn == 64500

    def test_missing_route6(self):
        with pytest.raises(RPSLError):
            parse_route6("origin: AS1\n")

    def test_missing_origin(self):
        with pytest.raises(RPSLError):
            parse_route6("route6: 2001:db8::/32\n")

    def test_bad_prefix(self):
        with pytest.raises(RPSLError):
            parse_route6("route6: bogus/48\norigin: AS1\n")

    def test_bad_origin(self):
        with pytest.raises(RPSLError):
            parse_route6("route6: 2001:db8::/32\norigin: ASXY\n")

    def test_line_without_colon(self):
        with pytest.raises(RPSLError):
            parse_route6("route6 2001:db8::/32\n")

    def test_roundtrip(self):
        obj = parse_route6(BLOCK)
        assert parse_route6(obj.to_rpsl()) == obj


class TestRPSLDatabaseText:
    def test_parse_database_multiple(self):
        text = BLOCK + "\n" + BLOCK.replace("2001:db8:1::/48", "2001:db8:2::/48")
        objects = parse_database(text)
        assert len(objects) == 2

    def test_parse_database_skips_other_classes(self):
        text = "mntner: MAINT-X\nsource: RIPE\n\n" + BLOCK
        assert len(parse_database(text)) == 1

    def test_serialize_sorted(self):
        objects = [
            Route6Object(IPv6Prefix.parse("2001:db9::/48"), 2),
            Route6Object(IPv6Prefix.parse("2001:db8::/48"), 1),
        ]
        text = serialize_database(objects)
        assert text.index("2001:db8::") < text.index("2001:db9::")

    def test_serialize_parse_roundtrip(self):
        objects = parse_database(BLOCK)
        assert parse_database(serialize_database(objects)) == objects


class TestIRRDatabase:
    def test_add_len_iter(self):
        db = IRRDatabase([Route6Object(IPv6Prefix.parse("2001:db8::/48"), 1)])
        assert len(db) == 1
        assert [o.origin_asn for o in db] == [1]

    def test_multiple_origins_same_prefix(self):
        prefix = IPv6Prefix.parse("2001:db8::/48")
        db = IRRDatabase([Route6Object(prefix, 1), Route6Object(prefix, 2)])
        assert len(db) == 2
        assert db.prefixes() == [prefix]

    def test_remove(self):
        prefix = IPv6Prefix.parse("2001:db8::/48")
        db = IRRDatabase([Route6Object(prefix, 1)])
        assert db.remove(prefix, 1)
        assert not db.remove(prefix, 1)
        assert len(db) == 0

    def test_objects_for_origin(self):
        db = IRRDatabase(
            [
                Route6Object(IPv6Prefix.parse("2001:db9::/48"), 1),
                Route6Object(IPv6Prefix.parse("2001:db8::/48"), 1),
                Route6Object(IPv6Prefix.parse("2001:dba::/48"), 2),
            ]
        )
        mine = db.objects_for_origin(1)
        assert [str(o.prefix) for o in mine] == ["2001:db8::/48", "2001:db9::/48"]

    def test_length_histogram(self):
        db = IRRDatabase(
            [
                Route6Object(IPv6Prefix.parse("2001:db8::/48"), 1),
                Route6Object(IPv6Prefix.parse("2001:db9::/48"), 1),
                Route6Object(IPv6Prefix.parse("2001:dba::/32"), 1),
            ]
        )
        assert db.length_histogram() == {48: 2, 32: 1}

    def test_save_load(self, tmp_path):
        db = IRRDatabase([Route6Object(IPv6Prefix.parse("2001:db8::/48"), 64500)])
        path = tmp_path / "irr.db"
        db.save(path)
        loaded = IRRDatabase.load(path)
        assert len(loaded) == 1
        assert loaded.prefixes() == [IPv6Prefix.parse("2001:db8::/48")]


class TestHitlist:
    def test_add_dedup(self):
        hitlist = Hitlist()
        assert hitlist.add(1)
        assert not hitlist.add(1)
        assert len(hitlist) == 1

    def test_extend_counts_new(self):
        hitlist = Hitlist()
        assert hitlist.extend([1, 2, 2, 3]) == 3

    def test_contains_and_iter_order(self):
        hitlist = Hitlist()
        hitlist.extend([5, 3, 5, 9])
        assert 3 in hitlist
        assert list(hitlist) == [5, 3, 9]

    def test_unique_slash64s(self):
        hitlist = Hitlist()
        hitlist.extend(
            [
                parse_address("2001:db8::1"),
                parse_address("2001:db8::2"),
                parse_address("2001:db8:0:1::1"),
            ]
        )
        assert len(hitlist.unique_slash64s()) == 2

    def test_save_load(self, tmp_path):
        hitlist = Hitlist(name="test")
        hitlist.extend([parse_address("2001:db8::1"), parse_address("::2")])
        path = tmp_path / "hitlist.txt"
        hitlist.save(path)
        loaded = Hitlist.load(path)
        assert loaded.addresses() == hitlist.addresses()

    def test_load_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("2001:db8::1\nnot-an-address\n")
        with pytest.raises(AddressError, match="2"):
            Hitlist.load(path)


class TestAliasedPrefixList:
    def test_contains_address(self):
        alias_list = AliasedPrefixList([IPv6Prefix.parse("2001:db8::/48")])
        assert alias_list.contains_address(parse_address("2001:db8::42"))
        assert not alias_list.contains_address(parse_address("2001:db9::42"))

    def test_contains_prefix(self):
        alias_list = AliasedPrefixList([IPv6Prefix.parse("2001:db8::/48")])
        assert alias_list.contains_prefix(IPv6Prefix.parse("2001:db8:0:1::/64"))
        assert not alias_list.contains_prefix(IPv6Prefix.parse("2001:db8::/32"))

    def test_dedup_and_iter_sorted(self):
        alias_list = AliasedPrefixList()
        alias_list.add(IPv6Prefix.parse("2001:db9::/48"))
        alias_list.add(IPv6Prefix.parse("2001:db8::/48"))
        alias_list.add(IPv6Prefix.parse("2001:db8::/48"))
        assert len(alias_list) == 2
        assert list(alias_list)[0] == IPv6Prefix.parse("2001:db8::/48")

    def test_save_load(self, tmp_path):
        alias_list = AliasedPrefixList([IPv6Prefix.parse("2001:db8::/48")])
        path = tmp_path / "aliases.txt"
        alias_list.save(path)
        loaded = AliasedPrefixList.load(path)
        assert len(loaded) == 1
        assert loaded.contains_address(parse_address("2001:db8::1"))
