"""World artifacts: round-trip fidelity and scan byte-identity.

Two representations of the same world exist after this PR — the eager
object graph from ``build_world`` and the mmap-backed lazy world from
``build_world_artifact``/``load_world_artifact``.  These tests pin that
the two are observationally identical: every entity field round-trips,
iteration orders match, and a sharded scan produces byte-identical
records, telemetry, and Prometheus text regardless of representation or
shard count.
"""

import pickle

import pytest

from repro.scanner.sharded import ShardedScanRunner
from repro.scanner.targets import bgp_slash48_targets
from repro.scanner.zmapv6 import ScanConfig
from repro.telemetry.scan import ScanTelemetry
from repro.topology.artifact import (
    ArtifactError,
    WorldRef,
    load_world_artifact,
    resolve_world_ref,
    save_world,
    world_payload,
)
from repro.topology.config import tiny_config
from repro.topology.generator import build_world_artifact

ROUTER_FIELDS = (
    "router_id",
    "asn",
    "country",
    "loopback",
    "interface_addresses",
    "subnet_interfaces",
    "peering_lan_address",
    "replies_from_peering",
    "answers_direct_ping",
    "unstable_reply_source",
    "is_border",
    "errors_from_primary",
    "sra_from_primary",
    "emits_unreachables",
    "replication_factor",
    "background_error_load",
)

SUBNET_FIELDS = (
    "prefix",
    "asn",
    "router_id",
    "router_interface",
    "hosts",
    "aliased",
    "flaky",
    "death_epoch",
)


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    return tmp_path_factory.mktemp("artifact") / "tiny.sraw"


@pytest.fixture(scope="module")
def artifact_world(artifact_path):
    """The tiny world, streamed to disk and loaded back lazily.

    Same config as the session ``tiny_world`` fixture, so tests can
    compare the two representations directly.
    """
    return build_world_artifact(tiny_config(seed=7), artifact_path)


class TestRoundTrip:
    def test_streamed_build_equals_eager_build(self, tiny_world, artifact_world):
        assert list(artifact_world.routers) == list(tiny_world.routers)
        assert list(artifact_world.subnets) == list(tiny_world.subnets)
        for rid, router in tiny_world.routers.items():
            loaded = artifact_world.routers[rid]
            for field in ROUTER_FIELDS:
                assert getattr(loaded, field) == getattr(router, field), (
                    rid,
                    field,
                )
            assert loaded.vendor is router.vendor  # interned by name
        for network, subnet in tiny_world.subnets.items():
            loaded = artifact_world.subnets[network]
            for field in SUBNET_FIELDS:
                assert getattr(loaded, field) == getattr(subnet, field)
        assert list(tiny_world.bgp.prefixes()) == list(
            artifact_world.bgp.prefixes()
        )
        assert tiny_world.paths == artifact_world.paths
        for asn, info in tiny_world.ases.items():
            loaded = artifact_world.ases[asn]
            assert list(info.router_ids) == list(loaded.router_ids)
            assert info.prefixes == loaded.prefixes
        assert artifact_world.artifact_path is not None
        assert artifact_world.artifact_fingerprint is not None

    def test_resolution_matches(self, tiny_world, artifact_world):
        import random

        rng = random.Random(3)
        probes = [rng.getrandbits(128) for _ in range(500)]
        probes += [s.sra_address for s in tiny_world.subnets.values()]
        probes += [r.prefix.network + 5 for r in tiny_world.loop_regions]
        probes += [r.prefix.network + 5 for r in tiny_world.alias_regions]
        for address in probes:
            expected = tiny_world.resolution.longest_match(address)
            got = artifact_world.resolution.longest_match(address)
            assert (expected is None) == (got is None)
            if expected is not None:
                assert expected[0] == got[0]
                assert expected[1].kind == got[1].kind

    def test_resolution_payload_identity_is_stable(self, artifact_world):
        """The engine keys per-batch plans by id(subnet): repeated lookups
        must return the same materialised object."""
        network = next(iter(artifact_world.subnets))
        first = artifact_world.resolution.longest_match(network)
        second = artifact_world.resolution.longest_match(network)
        assert first is not None and first[1].payload is second[1].payload
        assert first[1].payload is artifact_world.subnets[network]

    def test_save_world_round_trips_eager_world(self, tiny_world, tmp_path):
        path = save_world(tiny_world, tmp_path / "eager.sraw")
        loaded = load_world_artifact(path)
        assert list(loaded.routers) == list(tiny_world.routers)
        assert list(loaded.subnets) == list(tiny_world.subnets)
        rid = next(iter(tiny_world.routers))
        for field in ROUTER_FIELDS:
            assert getattr(loaded.routers[rid], field) == getattr(
                tiny_world.routers[rid], field
            )

    def test_lazy_maps_behave_like_dicts(self, tiny_world, artifact_world):
        routers = artifact_world.routers
        assert len(routers) == len(tiny_world.routers)
        missing_rid = max(tiny_world.routers) + 100
        assert missing_rid not in routers
        with pytest.raises(KeyError):
            routers[missing_rid]
        subnets = artifact_world.subnets
        assert len(subnets) == len(tiny_world.subnets)
        assert 0xDEAD not in subnets
        with pytest.raises(KeyError):
            subnets[0xDEAD]
        assert subnets.get(0xDEAD) is None

    def test_loaded_world_is_static(self, artifact_world):
        from repro.addr.ipv6 import IPv6Prefix
        from repro.topology.entities import Subnet

        subnet = Subnet(
            prefix=IPv6Prefix(0xABCD << 64, 64),
            asn=1,
            router_id=1,
            router_interface=(0xABCD << 64) | 1,
        )
        with pytest.raises(TypeError):
            artifact_world.register_subnet(subnet)
        if artifact_world.loop_regions:
            with pytest.raises(TypeError):
                artifact_world.remove_loop(artifact_world.loop_regions[0])


class TestWorkerBootstrap:
    def test_world_payload_is_kilobytes(self, tiny_world, artifact_world):
        """The whole point: artifact worlds ship a path, not a world."""
        ref = world_payload(artifact_world)
        assert isinstance(ref, WorldRef)
        assert len(pickle.dumps(ref)) < 4096
        # Non-artifact worlds keep the legacy pickled-world path.
        assert world_payload(tiny_world) is tiny_world

    def test_resolve_world_ref_memoises(self, artifact_world):
        ref = world_payload(artifact_world)
        first = resolve_world_ref(ref)
        assert resolve_world_ref(ref) is first

    def test_fingerprint_mismatch_is_refused(self, artifact_world):
        ref = WorldRef(artifact_world.artifact_path, b"\0" * 32)
        with pytest.raises(ArtifactError):
            resolve_world_ref(ref)

    def test_missing_artifact_is_a_clear_error(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_world_artifact(tmp_path / "nope.sraw")

    def test_not_an_artifact_is_a_clear_error(self, tmp_path):
        bogus = tmp_path / "bogus.sraw"
        bogus.write_bytes(b"definitely not a world artifact header")
        with pytest.raises(ArtifactError):
            load_world_artifact(bogus)


class TestScanByteIdentity:
    """The acceptance pin: scanning through the frozen shared-memory FIB
    is byte-identical to the in-memory trie path at shards 1, 4, and 8."""

    @pytest.fixture(scope="class")
    def targets(self, tiny_world):
        import random

        return list(
            bgp_slash48_targets(
                tiny_world.bgp,
                max_per_prefix=8,
                max_targets=1_500,
                rng=random.Random(21),
            )
        )

    @staticmethod
    def _scan_bytes(world, targets, shards, executor):
        telemetry = ScanTelemetry()
        runner = ShardedScanRunner(world, shards=shards, executor=executor)
        result = runner.scan(
            list(targets),
            ScanConfig(pps=150_000.0, seed=5),
            name="ident",
            epoch=2,
            telemetry=telemetry,
        )
        records = [
            (r.target, r.source, r.icmp_type, r.code, r.count, r.time)
            for r in result.records
        ]
        counters = (result.sent, result.lost, result.loops_observed)
        return (
            records,
            counters,
            telemetry.to_jsonl(),
            telemetry.to_prometheus(),
        )

    @pytest.mark.parametrize(
        ("shards", "executor"),
        [(1, "serial"), (4, "process"), (8, "process")],
    )
    def test_identical_output_bytes(
        self, tiny_world, artifact_world, targets, shards, executor
    ):
        eager = self._scan_bytes(tiny_world, targets, shards, executor)
        loaded = self._scan_bytes(artifact_world, targets, shards, executor)
        assert eager == loaded
