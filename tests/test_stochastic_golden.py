"""Golden-value tests for the stable randomness primitives.

The probe hot path rewrote ``stochastic.py`` around a memoised keyed
hasher (see its module docstring).  These values were captured from the
original straight-line implementation *before* that rewrite; any drift
here silently reshuffles every simulated world, so the exact floats are
pinned — not just statistical properties.
"""

import pytest

from repro.netsim.stochastic import base_hasher, stable_bool, stable_unit

# (seed, purpose, keys) -> exact stable_unit output of the pre-rewrite
# implementation.  Chosen to cover every packing branch:
#   * no keys at all,
#   * keys at the 62-bit boundary ((1<<62)-1 packs one word, 1<<62 packs
#     two — bit_length crosses 62),
#   * full 128-bit IPv6 addresses (the high-half second word),
#   * negative keys (two's-complement masking),
#   * seed masking to 64 bits (negative and >= 2**64 seeds),
#   * more than eight packed words (the non-prebuilt struct fallback).
GOLDEN = {
    (0, b"loss", ()): 0.6501517727431476,
    (1, b"loss", (0,)): 0.34678838363114795,
    (7, b"loss", (1, 2, 3)): 0.5611844699518926,
    (7, b"flaky", ((1 << 62) - 1,)): 0.7265942170208153,
    (7, b"flaky", (1 << 62,)): 0.4582170040921983,
    (7, b"flaky", (1 << 63,)): 0.5598742220993775,
    (7, b"host", ((1 << 128) - 1,)): 0.5742440875125319,
    (42, b"direct", (0x20010DB8000000000000000000000001, 9, 4)): 0.07007392971913645,
    (42, b"direct", (-1,)): 0.5775492320707498,
    (42, b"direct", (-(1 << 63),)): 0.13167732392299658,
    (-5, b"bgwin", (3, 4)): 0.8103762329476208,
    (2**64 + 5, b"bgwin", (3, 4)): 0.832840609065574,
    (5, b"bgwin", (3, 4)): 0.832840609065574,
    (11, b"aggroute", (64512, 0x20010DB8 << 24)): 0.6560838383218297,
    # Five 128-bit keys pack ten words — past the eight prebuilt Structs.
    (3, b"loss", tuple((1 << 127) | i for i in range(5))): 0.6420184721647056,
    (3, b"loss", tuple(range(9))): 0.6485117066201472,
}


class TestStableUnitGolden:
    @pytest.mark.parametrize(
        "seed,purpose,keys,expected",
        [(s, p, k, v) for (s, p, k), v in GOLDEN.items()],
        ids=[f"{s}/{p.decode()}/{len(k)}keys" for (s, p, k) in GOLDEN],
    )
    def test_exact_value(self, seed, purpose, keys, expected):
        assert stable_unit(seed, purpose, *keys) == expected

    def test_high_half_branch_changes_digest(self):
        # A 128-bit key must not collide with its own low 63 bits: the
        # packing appends the high half as a second word.
        address = (1 << 127) | 12345
        low_only = address & 0x7FFFFFFFFFFFFFFF
        assert stable_unit(7, b"host", address) != stable_unit(
            7, b"host", low_only
        )

    def test_seed_masked_to_64_bits(self):
        # The keyed hasher's key is seed mod 2**64 — aliasing is pinned.
        assert stable_unit(2**64 + 5, b"bgwin", 3, 4) == stable_unit(
            5, b"bgwin", 3, 4
        )
        assert stable_unit(-5, b"bgwin", 3, 4) != stable_unit(5, b"bgwin", 3, 4)

    def test_repeated_draws_identical(self):
        # The memoised base hasher must never accumulate state: drawing
        # twice (interleaved with other purposes) gives the same float.
        first = stable_unit(7, b"loss", 1, 2, 3)
        stable_unit(7, b"flaky", 99)
        stable_unit(8, b"loss", 1, 2, 3)
        assert stable_unit(7, b"loss", 1, 2, 3) == first


class TestBaseHasher:
    def test_memoised_per_seed_purpose(self):
        assert base_hasher(7, b"loss") is base_hasher(7, b"loss")
        assert base_hasher(7, b"loss") is not base_hasher(7, b"flaky")
        assert base_hasher(7, b"loss") is not base_hasher(8, b"loss")

    def test_copy_matches_stable_unit(self):
        # The engine's inlined loss draw copies the base hasher and packs
        # the key words itself; the contract is digest equality.
        import struct

        hasher = base_hasher(7, b"loss").copy()
        hasher.update(struct.pack(">3q", 1, 2, 3))
        value = int.from_bytes(hasher.digest(), "big") / float(1 << 64)
        assert value == stable_unit(7, b"loss", 1, 2, 3)


class TestStableBool:
    def test_degenerate_probabilities_skip_hashing(self):
        assert stable_bool(7, b"loss", 0.0, 123) is False
        assert stable_bool(7, b"loss", -1.0, 123) is False
        assert stable_bool(7, b"loss", 1.0, 123) is True
        assert stable_bool(7, b"loss", 2.0, 123) is True

    def test_threshold_agrees_with_stable_unit(self):
        value = stable_unit(7, b"loss", 123, 456, 0)
        assert stable_bool(7, b"loss", value + 1e-9, 123, 456, 0) is True
        assert stable_bool(7, b"loss", value - 1e-9, 123, 456, 0) is False

    def test_golden_draw(self):
        # Pinned from the pre-rewrite implementation.
        assert stable_bool(7, b"loss", 0.3, 123, 456, 0) is True
