"""Smoke + shape tests for every table/figure experiment (quick scale).

These assert the *paper-shape* properties each experiment is supposed to
reproduce, not absolute numbers.
"""

import pytest

from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.world import get_context, quick_scale, scaled_with


@pytest.fixture(scope="module")
def reports(quick_context):
    return {
        experiment_id: run_experiment(experiment_id, quick_context)
        for experiment_id in EXPERIMENTS
    }


class TestRunnerPlumbing:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4",
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10",
            "strategy-race",
        }

    def test_unknown_experiment_raises(self, quick_context):
        with pytest.raises(ValueError):
            run_experiment("fig99", quick_context)

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            get_context("giant")

    def test_context_memoised(self):
        assert get_context("quick") is get_context("quick")

    def test_reports_have_text_and_data(self, reports):
        for experiment_id, report in reports.items():
            assert report.experiment_id == experiment_id
            assert report.text
            assert report.data
            assert experiment_id in str(report)

    def test_scaled_with_override(self):
        scale = scaled_with(quick_scale(), fig5_epochs=2)
        assert scale.fig5_epochs == 2


class TestTable2Shape:
    def test_hitlist_best_discovery(self, reports):
        rows = {row["source"]: row for row in reports["table2"].data["rows"]}
        slash64_sources = ("hitlist-64", "bgp-64", "route6-64", "bgp-48")
        best = max(slash64_sources, key=lambda s: rows[s]["discovery_rate"])
        assert best == "hitlist-64"

    def test_artificial_partitions_low_discovery(self, reports):
        rows = {row["source"]: row for row in reports["table2"].data["rows"]}
        for source in ("bgp-48", "bgp-64", "route6-64"):
            assert rows[source]["discovery_rate"] < 0.08

    def test_total_row_aggregates(self, reports):
        rows = reports["table2"].data["rows"]
        total = rows[-1]
        assert total["source"] == "total"
        assert total["addresses"] == sum(r["addresses"] for r in rows[:-1])


class TestFig4Shape:
    def test_hitlist_highest_echo_share(self, reports):
        shares = reports["fig4"].data["shares"]
        assert shares["hitlist-64"]["echo"] == max(
            s["echo"] for s in shares.values()
        )

    def test_artificial_scans_error_dominated(self, reports):
        shares = reports["fig4"].data["shares"]
        for name in ("bgp-48", "bgp-64", "route6-64"):
            assert shares[name]["error"] > 0.75

    def test_shares_sum_to_one(self, reports):
        for name, share in reports["fig4"].data["shares"].items():
            total = share["echo"] + share["error"] + share["both"]
            assert total == pytest.approx(1.0) or total == 0.0


class TestFig5Shape:
    def test_sra_advantage_positive(self, reports):
        advantages = reports["fig5"].data["advantages"]
        assert advantages
        mean_advantage = sum(advantages) / len(advantages)
        assert 0.0 < mean_advantage < 0.6

    def test_sra_exclusive_routers_exist(self, reports):
        assert reports["fig5"].data["sra_exclusive"] > 0

    def test_echo_population_stable(self, reports):
        echo_counts = [
            row["sra_echo_routers"] for row in reports["fig5"].data["per_epoch"]
        ]
        mean = sum(echo_counts) / len(echo_counts)
        assert all(abs(c - mean) / mean < 0.3 for c in echo_counts)


class TestFig6Shape:
    def test_majority_never_answers_directly(self, reports):
        visibility = reports["fig6"].data["visibility"]
        assert visibility["never"] > 0.5

    def test_stability_majority_same(self, reports):
        stability = reports["fig6"].data["stability"]
        assert stability[-1]["same"] >= 0.55
        assert stability[-1]["changed"] <= 0.10

    def test_no_response_grows(self, reports):
        stability = reports["fig6"].data["stability"]
        assert stability[-1]["no_response"] >= stability[1]["no_response"] - 0.05


class TestFig7Shape:
    def test_sra_as_coverage_high(self, reports):
        """>99 % of SRA ASes appear in other sources (paper); allow a
        margin at quick scale."""
        assert reports["fig7"].data["sra_as_coverage"] > 0.9

    def test_upset_counts_partition(self, reports):
        sizes = reports["fig7"].data["as_set_sizes"]
        upset = reports["fig7"].data["upset"]
        assert sum(upset.values()) >= max(sizes.values())


class TestFig8Shape:
    def test_loops_observed(self, reports):
        assert reports["fig8"].data["looping_slash48s"] > 0
        assert reports["fig8"].data["looping_routers"] > 0

    def test_ccdf_monotone(self, reports):
        for key in ("amplification_ccdf", "loops_per_router_ccdf"):
            points = reports["fig8"].data[key]
            values = [v for v, _ in points]
            shares = [s for _, s in points]
            assert values == sorted(values)
            assert shares == sorted(shares, reverse=True)

    def test_most_routers_loop_few_subnets(self, reports):
        share = reports["fig8"].data["single_subnet_share"]
        assert 0.0 <= share <= 1.0


class TestTable3Shape:
    def test_sra_mostly_exclusive_at_ip_level(self, reports):
        exclusives = reports["table3"].data["exclusive_fractions"]
        assert exclusives["sra"] > 0.9

    def test_top5_per_source(self, reports):
        table = reports["table3"].data["table3"]
        for name, rows in table.items():
            assert len(rows) <= 5
            shares = [share for _, share in rows]
            assert shares == sorted(shares, reverse=True)

    def test_ixp_concentrated(self, reports):
        """IXP traffic concentrates on few ASes (paper: top AS 43 %)."""
        table = reports["table3"].data["table3"]
        sra_top = table["sra"][0][1]
        ixp_top = table["ixp-flows"][0][1]
        assert ixp_top > sra_top


class TestTable4Shape:
    def test_loop_tables_present(self, reports):
        assert reports["table4"].data["loops"]
        for row in reports["table4"].data["loops"]:
            assert row["looping_48s"] >= 1
            assert row["router_ips"] >= 1


class TestFig3Fig10Shape:
    def test_fig3_shares_descending(self, reports):
        shares = reports["fig3"].data["shares"]
        values = [share for _, share in shares]
        assert values == sorted(values, reverse=True)
        assert sum(values) == pytest.approx(1.0)

    def test_fig10_isp_dominates_sra(self, reports):
        per_source = reports["fig10"].data["per_source_type_shares"]
        assert per_source["sra"]["isp"] > 0.5


class TestRunnerMain:
    def test_main_runs_selected_experiments(self, quick_context, capsys):
        """The CLI entry point runs and prints reports (context cached)."""
        from repro.experiments.runner import main

        assert main(["--scale", "quick", "table2", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "fig4 regenerated" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["--scale", "quick", "fig99"])
