"""Behavioural tests for the simulation engine, rate limiter, stochastics."""

import pytest

from repro.netsim.engine import AMPLIFICATION_CAP, SimulationEngine
from repro.netsim.ratelimit import TokenBucket
from repro.netsim.stochastic import stable_bool, stable_unit
from repro.packet.icmpv6 import ICMPv6Type, UnreachableCode
from repro.topology.config import tiny_config
from repro.topology.generator import build_world
from repro.topology.profiles import SRABehavior


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=10, burst=5)
        assert all(bucket.allow(0.0) for _ in range(5))
        assert not bucket.allow(0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=10, burst=5)
        for _ in range(5):
            bucket.allow(0.0)
        assert not bucket.allow(0.0)
        assert bucket.allow(0.1)  # one token refilled

    def test_burst_caps_refill(self):
        bucket = TokenBucket(rate=1000, burst=3)
        assert sum(bucket.allow(100.0) for _ in range(10)) == 3

    def test_initial_override(self):
        bucket = TokenBucket(rate=10, burst=5, initial=1)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)

    def test_time_going_backwards_clamped(self):
        bucket = TokenBucket(rate=10, burst=1)
        assert bucket.allow(5.0)
        # Earlier timestamp must not mint tokens.
        assert not bucket.allow(4.0)

    def test_reset(self):
        bucket = TokenBucket(rate=10, burst=2)
        bucket.allow(0.0)
        bucket.allow(0.0)
        bucket.reset()
        assert bucket.allow(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestStochastic:
    def test_stable_unit_deterministic(self):
        assert stable_unit(1, b"x", 2, 3) == stable_unit(1, b"x", 2, 3)

    def test_stable_unit_range(self):
        for key in range(100):
            value = stable_unit(7, b"p", key)
            assert 0.0 <= value < 1.0

    def test_stable_unit_sensitive_to_inputs(self):
        base = stable_unit(1, b"x", 2)
        assert base != stable_unit(2, b"x", 2)
        assert base != stable_unit(1, b"y", 2)
        assert base != stable_unit(1, b"x", 3)

    def test_stable_unit_handles_128bit_keys(self):
        a = stable_unit(1, b"x", 1 << 100)
        b = stable_unit(1, b"x", (1 << 100) + (1 << 90))
        assert a != b

    def test_stable_bool_extremes(self):
        assert not stable_bool(1, b"x", 0.0, 5)
        assert stable_bool(1, b"x", 1.0, 5)

    def test_stable_bool_rate(self):
        hits = sum(stable_bool(1, b"rate", 0.3, i) for i in range(5000))
        assert 0.25 < hits / 5000 < 0.35


def _subnet_with_behavior(world, behavior, *, alive=True):
    for subnet in world.subnets.values():
        if subnet.aliased or subnet.flaky or subnet.death_epoch is not None:
            continue
        router = world.routers[subnet.router_id]
        if router.vendor.sra_behavior is behavior:
            return subnet
    raise AssertionError(f"no subnet with {behavior}")


class TestEngineSubnetBehaviour:
    def test_sra_reply_vendor(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        subnet = _subnet_with_behavior(tiny_world, SRABehavior.REPLY)
        result = engine.probe(subnet.sra_address, 0.0, probe_id=1)
        if result.lost:
            result = engine.probe(subnet.sra_address, 0.0, probe_id=2)
        assert result.replies
        reply = result.replies[0]
        assert reply.icmp_type is ICMPv6Type.ECHO_REPLY
        router = tiny_world.routers[subnet.router_id]
        assert reply.source in router.all_addresses()

    def test_sra_drop_vendor_silent(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        subnet = _subnet_with_behavior(tiny_world, SRABehavior.DROP)
        for probe_id in range(3):
            result = engine.probe(subnet.sra_address, 0.0, probe_id=probe_id)
            if not result.lost:
                assert result.replies == ()

    def test_sra_error_vendor(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        subnet = _subnet_with_behavior(tiny_world, SRABehavior.ERROR)
        saw_error = False
        for probe_id in range(20):
            result = engine.probe(
                subnet.sra_address, probe_id * 0.5, probe_id=probe_id
            )
            for reply in result.replies:
                assert reply.icmp_type is ICMPv6Type.DESTINATION_UNREACHABLE
                saw_error = True
        assert saw_error

    def test_host_replies_from_itself(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        host = None
        for subnet in tiny_world.subnets.values():
            if subnet.hosts and not subnet.aliased and not subnet.flaky and (
                subnet.death_epoch is None
            ):
                host = subnet.hosts[0]
                break
        assert host is not None
        for probe_id in range(10):
            result = engine.probe(host, 0.0, probe_id=probe_id)
            if result.replies:
                assert result.replies[0].source == host
                assert result.replies[0].icmp_type is ICMPv6Type.ECHO_REPLY
                return
        raise AssertionError("host never replied in 10 tries")

    def test_aliased_subnet_replies_from_probed_address(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        aliased = next(
            (s for s in tiny_world.subnets.values() if s.aliased), None
        )
        if aliased is None:
            pytest.skip("tiny world has no aliased subnet")
        target = aliased.prefix.network + 0xDEAD
        for probe_id in range(5):
            result = engine.probe(target, 0.0, probe_id=probe_id)
            if result.replies:
                assert result.replies[0].source == target
                return
        raise AssertionError("aliased subnet never replied")

    def test_aliased_subnet_sra_self_reply(self, tiny_world):
        """Probing the SRA of an aliased subnet returns the SRA address
        itself as source — the alias filter's tell-tale."""
        engine = SimulationEngine(tiny_world, epoch=0)
        aliased = next(
            (s for s in tiny_world.subnets.values() if s.aliased), None
        )
        if aliased is None:
            pytest.skip("tiny world has no aliased subnet")
        for probe_id in range(5):
            result = engine.probe(aliased.sra_address, 0.0, probe_id=probe_id)
            if result.replies:
                assert result.replies[0].source == aliased.sra_address
                return

    def test_unassigned_address_in_subnet_errors(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        subnet = _subnet_with_behavior(tiny_world, SRABehavior.REPLY)
        target = subnet.prefix.network + 0xDEADBEEF
        while target in subnet.hosts or target == subnet.router_interface:
            target += 1
        saw = False
        for probe_id in range(20):
            result = engine.probe(target, probe_id * 0.5, probe_id=probe_id)
            for reply in result.replies:
                assert reply.icmp_type is ICMPv6Type.DESTINATION_UNREACHABLE
                assert reply.code == UnreachableCode.ADDRESS_UNREACHABLE
                saw = True
        assert saw


class TestEngineRouting:
    def test_unrouted_space_errors_from_upstream(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        target = 0x3FFF << 112  # far outside any allocation
        saw = False
        for probe_id in range(10):
            result = engine.probe(target + probe_id, probe_id * 1.0, probe_id=probe_id)
            for reply in result.replies:
                assert reply.code == UnreachableCode.NO_ROUTE
                upstream = tiny_world.routers[
                    tiny_world.vantage.upstream_router_id
                ]
                assert reply.router_id == upstream.router_id
                saw = True
        assert saw

    def test_hop_limit_expiry_in_transit(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        subnet = _subnet_with_behavior(tiny_world, SRABehavior.REPLY)
        hops = tiny_world.paths[subnet.asn]
        for ttl in range(1, len(hops) + 1):
            result = engine.probe(
                subnet.sra_address, float(ttl), hop_limit=ttl, probe_id=100 + ttl
            )
            for reply in result.replies:
                assert reply.icmp_type is ICMPv6Type.TIME_EXCEEDED
                assert reply.source == hops[ttl - 1].interface

    def test_hop_limit_zero_silent(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        subnet = next(iter(tiny_world.subnets.values()))
        result = engine.probe(subnet.sra_address, 0.0, hop_limit=0, probe_id=7)
        assert result.replies == ()

    def test_packet_loss_deterministic(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        subnet = next(iter(tiny_world.subnets.values()))
        a = engine.probe(subnet.sra_address, 0.0, probe_id=55)
        b = engine.probe(subnet.sra_address, 0.0, probe_id=55)
        assert a.lost == b.lost

    def test_direct_ping_of_router_interface(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        answering = [
            s
            for s in tiny_world.subnets.values()
            if tiny_world.routers[s.router_id].answers_direct_ping
            and not s.aliased and not s.flaky and s.death_epoch is None
        ]
        assert answering
        subnet = answering[0]
        for probe_id in range(5):
            result = engine.probe(
                subnet.router_interface, 0.0, probe_id=probe_id
            )
            if result.replies:
                assert result.replies[0].source == subnet.router_interface
                assert result.replies[0].is_echo
                return

    def test_non_answering_router_silent_on_direct_probe(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        silent = [
            s
            for s in tiny_world.subnets.values()
            if not tiny_world.routers[s.router_id].answers_direct_ping
            and not s.aliased and not s.flaky and s.death_epoch is None
        ]
        assert silent
        subnet = silent[0]
        for probe_id in range(5):
            result = engine.probe(subnet.router_interface, 0.0, probe_id=probe_id)
            assert all(not r.is_echo for r in result.replies)


class TestEngineLoops:
    def _loop_target(self, world):
        region = world.loop_regions[0]
        return region, region.prefix.network | 0x1234

    def test_loop_produces_time_exceeded(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        region, target = self._loop_target(tiny_world)
        saw = False
        for probe_id in range(20):
            result = engine.probe(target, probe_id * 1.0, probe_id=probe_id)
            if result.lost:
                continue
            assert result.looped
            for reply in result.replies:
                assert reply.icmp_type is ICMPv6Type.TIME_EXCEEDED
                customer = tiny_world.routers[region.customer_router_id]
                assert reply.router_id == customer.router_id
                saw = True
        assert saw

    def test_amplification_grows_with_hop_limit(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        buggy_region = next(
            (
                region
                for region in tiny_world.loop_regions
                if tiny_world.routers[region.customer_router_id].replication_factor
                > 1.12
            ),
            None,
        )
        if buggy_region is None:
            pytest.skip("no strongly-buggy loop router in tiny world")
        target = buggy_region.prefix.network | 0x42
        low = engine.probe(target, 0.0, hop_limit=16, probe_id=1)
        high = engine.probe(target, 1.0, hop_limit=128, probe_id=2)
        assert high.amplification > low.amplification

    def test_amplification_capped(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        region, target = self._loop_target(tiny_world)
        result = engine.probe(target, 0.0, hop_limit=255, probe_id=3)
        assert result.amplification <= AMPLIFICATION_CAP

    def test_null_route_fix_stops_loop(self):
        world = build_world(tiny_config(seed=21))
        engine = SimulationEngine(world, epoch=0)
        region = world.loop_regions[0]
        target = region.prefix.network | 0x99
        before = engine.probe(target, 0.0, probe_id=4)
        assert before.looped
        world.remove_loop(region)
        after = engine.probe(target, 1.0, probe_id=5)
        assert not after.looped


class TestEngineRateLimiting:
    def test_error_burst_suppressed(self, tiny_world):
        """Many errors from one router in a burst must be rate limited."""
        engine = SimulationEngine(tiny_world, epoch=0)
        # Find a router with many subnets and collect per-subnet unassigned
        # targets — all errors share the router's token bucket.
        router = max(
            tiny_world.routers.values(), key=lambda r: len(r.subnet_interfaces)
        )
        if len(router.subnet_interfaces) < 20:
            pytest.skip("no aggregation router in tiny world")
        targets = [net + 0xBAD for net in router.subnet_interfaces][:200]
        replies = 0
        for index, target in enumerate(targets):
            result = engine.probe(target, 0.0, probe_id=index)  # same instant
            replies += len(result.replies)
        assert replies < len(targets) * 0.8

    def test_echo_never_rate_limited(self, tiny_world):
        """SRA Echo replies are exempt from rate limiting (the paper's
        core mechanism) — probing many SRAs of one router all answer."""
        engine = SimulationEngine(tiny_world, epoch=0)
        candidates = [
            router
            for router in tiny_world.routers.values()
            if router.vendor.sra_behavior is SRABehavior.REPLY
            and len(router.subnet_interfaces) >= 10
        ]
        assert candidates
        router = candidates[0]
        healthy = [
            net
            for net in router.subnet_interfaces
            if not tiny_world.subnets[net].flaky
            and tiny_world.subnets[net].death_epoch is None
            and not tiny_world.subnets[net].aliased
        ]
        echoes = 0
        probed = 0
        for index, network in enumerate(healthy):
            result = engine.probe(network, 0.0, probe_id=index)
            if result.lost:
                continue
            probed += 1
            echoes += sum(1 for r in result.replies if r.is_echo)
        assert probed > 0
        assert echoes == probed

    def test_new_epoch_resets_buckets(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        router = max(
            tiny_world.routers.values(), key=lambda r: len(r.subnet_interfaces)
        )
        targets = [net + 0xBAD for net in router.subnet_interfaces][:60]
        first = sum(
            len(engine.probe(t, 0.0, probe_id=i).replies)
            for i, t in enumerate(targets)
        )
        engine.new_epoch(1)
        second = sum(
            len(engine.probe(t, 0.0, probe_id=i).replies)
            for i, t in enumerate(targets)
        )
        # The second epoch starts with fresh buckets: roughly as many
        # replies as the first epoch rather than zero.
        assert second >= first * 0.3

    def test_stats_counters(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=0)
        subnet = _subnet_with_behavior(tiny_world, SRABehavior.REPLY)
        engine.probe(subnet.sra_address, 0.0, probe_id=1)
        assert engine.stats.probes == 1

    def test_requires_vantage(self):
        from repro.topology.entities import World
        from repro.bgp.table import BGPTable
        from repro.irr.database import IRRDatabase

        world = World(seed=1, bgp=BGPTable(), irr=IRRDatabase())
        with pytest.raises(ValueError):
            SimulationEngine(world)
