"""Tests for the BGP substrate: trie, LPM, table, and dump I/O."""

import io

import pytest

from repro.addr.ipv6 import IPv6Prefix, parse_address
from repro.bgp.dump import (
    DumpFormatError,
    iter_dump,
    parse_dump_line,
    read_dump,
    write_dump,
)
from repro.bgp.lpm import LengthIndexedLPM
from repro.bgp.table import Announcement, BGPTable
from repro.bgp.trie import PrefixTrie


def p(text):
    return IPv6Prefix.parse(text)


class TestPrefixTrie:
    def test_insert_get(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), "a")
        assert trie.get(p("2001:db8::/32")) == "a"
        assert len(trie) == 1

    def test_get_missing_returns_default(self):
        trie = PrefixTrie()
        assert trie.get(p("2001:db8::/32"), "dflt") == "dflt"

    def test_replace_does_not_grow(self):
        trie = PrefixTrie()
        trie.insert(p("::/0"), 1)
        trie.insert(p("::/0"), 2)
        assert len(trie) == 1
        assert trie.get(p("::/0")) == 2

    def test_longest_match_prefers_specific(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), "broad")
        trie.insert(p("2001:db8:1::/48"), "narrow")
        prefix, value = trie.longest_match(parse_address("2001:db8:1::5"))
        assert value == "narrow"
        assert prefix == p("2001:db8:1::/48")

    def test_longest_match_falls_back(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), "broad")
        trie.insert(p("2001:db8:1::/48"), "narrow")
        _, value = trie.longest_match(parse_address("2001:db8:2::5"))
        assert value == "broad"

    def test_longest_match_none(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), "x")
        assert trie.longest_match(parse_address("2001:db9::")) is None

    def test_all_matches_order(self):
        trie = PrefixTrie()
        trie.insert(p("::/0"), 0)
        trie.insert(p("2001:db8::/32"), 32)
        trie.insert(p("2001:db8::/48"), 48)
        matches = list(trie.all_matches(parse_address("2001:db8::1")))
        assert [value for _, value in matches] == [0, 32, 48]

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), "x")
        assert trie.remove(p("2001:db8::/32"))
        assert len(trie) == 0
        assert not trie.remove(p("2001:db8::/32"))
        assert trie.longest_match(parse_address("2001:db8::1")) is None

    def test_remove_keeps_other_branches(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), "keep")
        trie.insert(p("2001:db8:1::/48"), "drop")
        trie.remove(p("2001:db8:1::/48"))
        assert trie.longest_match(parse_address("2001:db8:1::5"))[1] == "keep"

    def test_has_cover(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), "x")
        assert trie.has_cover(p("2001:db8:1::/48"))
        assert trie.has_cover(p("2001:db8::/32"))
        assert not trie.has_cover(p("2001:db8::/32"), strict=True)
        assert not trie.has_cover(p("2001:db9::/48"))

    def test_covered_by(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), "a")
        trie.insert(p("2001:db8:1::/48"), "b")
        trie.insert(p("2001:db9::/32"), "c")
        covered = dict(trie.covered_by(p("2001:db8::/32")))
        assert covered == {p("2001:db8::/32"): "a", p("2001:db8:1::/48"): "b"}

    def test_items(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), 1)
        trie.insert(p("2001:db8:1::/48"), 2)
        assert dict(trie.items()) == {
            p("2001:db8::/32"): 1,
            p("2001:db8:1::/48"): 2,
        }

    def test_contains(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), None)
        # Stored value None still counts as present.
        assert p("2001:db8::/32") in trie


class TestLengthIndexedLPM:
    def test_longest_match(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), "broad")
        lpm.insert(p("2001:db8:1::/48"), "narrow")
        assert lpm.longest_match(parse_address("2001:db8:1::9"))[1] == "narrow"
        assert lpm.longest_match(parse_address("2001:db8:2::9"))[1] == "broad"
        assert lpm.longest_match(parse_address("2002::1")) is None

    def test_remove_cleans_length_table(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), 1)
        assert lpm.remove(p("2001:db8::/32"))
        assert len(lpm) == 0
        assert lpm.longest_match(parse_address("2001:db8::1")) is None
        assert not lpm.remove(p("2001:db8::/32"))

    def test_default_route(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("::/0"), "default")
        assert lpm.longest_match(parse_address("abcd::1"))[1] == "default"

    def test_has_cover(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), 1)
        assert lpm.has_cover(p("2001:db8:1::/48"))
        assert lpm.has_cover(p("2001:db8::/32"))
        assert not lpm.has_cover(p("2001:db8::/32"), strict=True)
        assert not lpm.has_cover(p("2001::/16"))

    def test_all_matches_longest_first(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("::/0"), 0)
        lpm.insert(p("2001:db8::/32"), 32)
        lpm.insert(p("2001:db8::/64"), 64)
        values = [v for _, v in lpm.all_matches(parse_address("2001:db8::1"))]
        assert values == [64, 32, 0]

    def test_items_sorted(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db9::/32"), "b")
        lpm.insert(p("2001:db8::/32"), "a")
        assert [v for _, v in lpm.items()] == ["a", "b"]

    def test_get_exact(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), "x")
        assert lpm.get(p("2001:db8::/32")) == "x"
        assert lpm.get(p("2001:db8::/48")) is None

    def test_size_tracks_unique_inserts(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), 1)
        lpm.insert(p("2001:db8::/32"), 2)
        assert len(lpm) == 1

    def test_none_value_matches(self):
        # Consistent with PrefixTrie: a stored None still counts.
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), None)
        match = lpm.longest_match(parse_address("2001:db8::1"))
        assert match == (p("2001:db8::/32"), None)


class TestLengthIndexedLPMHotPath:
    """The lookup-row list and LRU result cache behind longest_match."""

    def test_lookup_rows_skip_empty_lengths(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), "a")
        lpm.insert(p("2001:db8:1::/48"), "b")
        assert [row[0] for row in lpm._tables_desc] == [48, 32]
        # Removing the only /48 prunes its row entirely — longest_match
        # never iterates a length that cannot match.
        assert lpm.remove(p("2001:db8:1::/48"))
        assert [row[0] for row in lpm._tables_desc] == [32]
        assert 48 not in lpm._by_length

    def test_insert_new_length_is_queryable_immediately(self):
        # Regression guard: the lookup rows must be rebuilt *after* the
        # new length's table is populated, or the row gets pruned as empty.
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/64"), "only")
        assert lpm.longest_match(parse_address("2001:db8::5"))[1] == "only"

    def test_cache_repeats_without_rewalking(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), "a")
        address = parse_address("2001:db8::1")
        assert lpm.longest_match(address)[1] == "a"
        key = address >> lpm._cache_shift
        assert lpm._cache[key] == (p("2001:db8::/32"), "a")
        assert lpm.longest_match(address)[1] == "a"

    def test_negative_result_cached(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), "a")
        address = parse_address("2002::1")
        assert lpm.longest_match(address) is None
        assert lpm._cache[address >> lpm._cache_shift] is None
        assert lpm.longest_match(address) is None

    def test_insert_invalidates_cache(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), "broad")
        address = parse_address("2001:db8:1::9")
        assert lpm.longest_match(address)[1] == "broad"
        lpm.insert(p("2001:db8:1::/48"), "narrow")
        assert lpm.longest_match(address)[1] == "narrow"

    def test_remove_invalidates_cache(self):
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8::/32"), "broad")
        lpm.insert(p("2001:db8:1::/48"), "narrow")
        address = parse_address("2001:db8:1::9")
        assert lpm.longest_match(address)[1] == "narrow"
        assert lpm.remove(p("2001:db8:1::/48"))
        assert lpm.longest_match(address)[1] == "broad"
        assert lpm.remove(p("2001:db8::/32"))
        assert lpm.longest_match(address) is None

    def test_cache_key_tracks_longest_length(self):
        # With a /64 stored the cache must distinguish sibling /64s of
        # one /48; key granularity follows the longest stored length.
        lpm = LengthIndexedLPM()
        lpm.insert(p("2001:db8:1:1::/64"), "one")
        lpm.insert(p("2001:db8:1:2::/64"), "two")
        assert lpm.longest_match(parse_address("2001:db8:1:1::7"))[1] == "one"
        assert lpm.longest_match(parse_address("2001:db8:1:2::7"))[1] == "two"

    def test_cache_bounded(self):
        lpm = LengthIndexedLPM(cache_size=4)
        lpm.insert(p("2001:db8::/32"), "a")
        for offset in range(64):
            lpm.longest_match(parse_address("2001:db8::1") + (offset << 80))
        assert len(lpm._cache) <= 4

    def test_results_identical_with_and_without_cache(self):
        import random as _random

        rng = _random.Random(5)
        cached = LengthIndexedLPM()
        uncached = LengthIndexedLPM(cache_size=0)
        for index in range(40):
            prefix = IPv6Prefix.of(
                (0x20010DB8 << 96) | (rng.getrandbits(32) << 64),
                rng.choice([32, 40, 48, 56, 64]),
            )
            cached.insert(prefix, index)
            uncached.insert(prefix, index)
        addresses = [
            (0x20010DB8 << 96) | rng.getrandbits(96) for _ in range(500)
        ]
        for address in addresses * 2:  # second pass exercises cache hits
            assert cached.longest_match(address) == uncached.longest_match(
                address
            )


class TestPrefixTrieCache:
    """The same LRU cache contract on the Patricia trie."""

    def test_insert_invalidates(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), "broad")
        address = parse_address("2001:db8:1::9")
        assert trie.longest_match(address)[1] == "broad"
        trie.insert(p("2001:db8:1::/48"), "narrow")
        assert trie.longest_match(address)[1] == "narrow"

    def test_remove_invalidates(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8::/32"), "broad")
        trie.insert(p("2001:db8:1::/48"), "narrow")
        address = parse_address("2001:db8:1::9")
        assert trie.longest_match(address)[1] == "narrow"
        assert trie.remove(p("2001:db8:1::/48"))
        assert trie.longest_match(address)[1] == "broad"

    def test_key_granularity_follows_longest_stored(self):
        trie = PrefixTrie()
        trie.insert(p("2001:db8:1:1::/64"), "one")
        trie.insert(p("2001:db8:1:2::/64"), "two")
        assert trie.longest_match(parse_address("2001:db8:1:1::7"))[1] == "one"
        assert trie.longest_match(parse_address("2001:db8:1:2::7"))[1] == "two"

    def test_cache_bounded(self):
        trie = PrefixTrie(cache_size=4)
        trie.insert(p("2001:db8::/32"), "a")
        for offset in range(64):
            trie.longest_match(parse_address("2001:db8::1") + (offset << 80))
        assert len(trie._cache) <= 4


class TestBGPTable:
    def _table(self):
        return BGPTable(
            [
                Announcement(p("2001:db8::/32"), 64500),
                Announcement(p("2001:db8:1::/48"), 64501),
                Announcement(p("2001:db9::/48"), 64502),
            ]
        )

    def test_origin_longest_match(self):
        table = self._table()
        assert table.origin_of(parse_address("2001:db8:1::9")) == 64501
        assert table.origin_of(parse_address("2001:db8:2::9")) == 64500
        assert table.origin_of(parse_address("2002::1")) is None

    def test_matching_prefix(self):
        table = self._table()
        assert table.matching_prefix(parse_address("2001:db8:1::9")) == p(
            "2001:db8:1::/48"
        )

    def test_is_routed(self):
        table = self._table()
        assert table.is_routed(parse_address("2001:db9::1"))
        assert not table.is_routed(parse_address("3000::1"))

    def test_prefixes_sorted(self):
        assert self._table().prefixes() == [
            p("2001:db8::/32"),
            p("2001:db8:1::/48"),
            p("2001:db9::/48"),
        ]

    def test_prefixes_of_length(self):
        assert self._table().prefixes_of_length(48) == [
            p("2001:db8:1::/48"),
            p("2001:db9::/48"),
        ]

    def test_withdraw(self):
        table = self._table()
        assert table.withdraw(p("2001:db8:1::/48"))
        assert table.origin_of(parse_address("2001:db8:1::9")) == 64500
        assert not table.withdraw(p("2001:db8:1::/48"))

    def test_has_cover(self):
        table = self._table()
        assert table.has_cover(p("2001:db8:2::/48"))
        assert table.has_cover(p("2001:db8::/32"))
        assert not table.has_cover(p("2001:db8::/32"), strict=True)
        assert not table.has_cover(p("2002::/32"))

    def test_more_specifics(self):
        table = self._table()
        specifics = table.more_specifics(p("2001:db8::/32"))
        assert [a.prefix for a in specifics] == [p("2001:db8:1::/48")]

    def test_len_contains_iter(self):
        table = self._table()
        assert len(table) == 3
        assert p("2001:db8::/32") in table
        assert {a.origin_asn for a in table} == {64500, 64501, 64502}


class TestDump:
    def test_parse_line(self):
        announcement = parse_dump_line("2001:db8::/32 64500\n")
        assert announcement == Announcement(p("2001:db8::/32"), 64500)

    def test_parse_line_skips_comment_and_blank(self):
        assert parse_dump_line("# comment") is None
        assert parse_dump_line("   ") is None

    def test_parse_line_errors(self):
        with pytest.raises(DumpFormatError):
            parse_dump_line("2001:db8::/32")
        with pytest.raises(DumpFormatError):
            parse_dump_line("2001:db8::/32 not-a-number")
        with pytest.raises(DumpFormatError):
            parse_dump_line("2001:db8::1/32 64500")
        with pytest.raises(DumpFormatError):
            parse_dump_line("2001:db8::/32 99999999999")

    def test_roundtrip_via_stream(self):
        announcements = [
            Announcement(p("2001:db8::/32"), 64500),
            Announcement(p("2001:db9::/48"), 64501),
        ]
        buffer = io.StringIO()
        write_dump(announcements, buffer, header="test dump")
        buffer.seek(0)
        table = read_dump(buffer)
        assert len(table) == 2
        assert table.origin_of(parse_address("2001:db9::1")) == 64501

    def test_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "dump.txt"
        write_dump([Announcement(p("2001:db8::/32"), 1)], path)
        table = read_dump(path)
        assert p("2001:db8::/32") in table

    def test_iter_dump(self):
        buffer = io.StringIO("# hi\n2001:db8::/32 7\n\n2001:db9::/48 8\n")
        assert [a.origin_asn for a in iter_dump(buffer)] == [7, 8]

    def test_write_sorted(self):
        buffer = io.StringIO()
        write_dump(
            [
                Announcement(p("2001:db9::/48"), 2),
                Announcement(p("2001:db8::/32"), 1),
            ],
            buffer,
        )
        lines = [
            line
            for line in buffer.getvalue().splitlines()
            if not line.startswith("#")
        ]
        assert lines == ["2001:db8::/32 1", "2001:db9::/48 2"]
