"""Tests for the stage-1/2/3 target constructions and other input sets."""

import random


from repro.addr.ipv6 import IPv6Prefix, parse_address
from repro.addr.partition import (
    hitlist_targets,
    route6_targets,
    stage1_targets,
    stage2_targets,
    stage3_targets,
)
from repro.addr.sra import is_sra_candidate, sra_address, sra_of


def prefixes(*texts):
    return [IPv6Prefix.parse(text) for text in texts]


class TestSRAConstruction:
    def test_sra_address_is_network(self):
        prefix = IPv6Prefix.parse("2001:db8:1::/48")
        assert sra_address(prefix) == prefix.network

    def test_sra_of_host(self):
        host = parse_address("2001:db8:1:2:3:4:5:6")
        assert sra_of(host, 64) == parse_address("2001:db8:1:2::")

    def test_sra_of_is_idempotent(self):
        host = parse_address("2001:db8::abcd")
        assert sra_of(sra_of(host, 64), 64) == sra_of(host, 64)

    def test_is_sra_candidate(self):
        assert is_sra_candidate(parse_address("2001:db8:1::"), 64)
        assert not is_sra_candidate(parse_address("2001:db8:1::1"), 64)


class TestStage1:
    def test_one_target_per_prefix(self):
        announcements = prefixes("2001:db8::/32", "2001:db9::/48")
        targets = list(stage1_targets(announcements))
        assert targets == [
            parse_address("2001:db8::"),
            parse_address("2001:db9::"),
        ]

    def test_deduplicates_same_network(self):
        announcements = prefixes("2001:db8::/32", "2001:db8::/48")
        assert len(list(stage1_targets(announcements))) == 1

    def test_empty(self):
        assert list(stage1_targets([])) == []


class TestStage2:
    def test_enumerates_all_slash48(self):
        announcements = prefixes("2001:db8::/44")
        targets = list(stage2_targets(announcements))
        assert len(targets) == 16
        assert targets[0] == parse_address("2001:db8::")
        assert targets[-1] == parse_address("2001:db8:f::")

    def test_sampling_budget(self):
        announcements = prefixes("2001:db8::/32")
        rng = random.Random(1)
        targets = list(
            stage2_targets(announcements, max_per_prefix=10, rng=rng)
        )
        assert len(targets) == 10
        assert len(set(targets)) == 10
        for target in targets:
            assert IPv6Prefix.of(target, 32).network == announcements[0].network

    def test_slash48_announcement_kept_as_is(self):
        announcements = prefixes("2001:db8:1::/48")
        assert list(stage2_targets(announcements)) == [
            parse_address("2001:db8:1::")
        ]

    def test_more_specific_lifted_to_supernet(self):
        # A /52 with no covering announcement probes its /48 supernet.
        announcements = prefixes("2001:db8:1:f000::/52")
        assert list(stage2_targets(announcements)) == [
            parse_address("2001:db8:1::")
        ]

    def test_more_specific_skipped_when_covered(self):
        announcements = prefixes("2001:db8::/32", "2001:db8:1:f000::/52")
        rng = random.Random(2)
        targets = set(stage2_targets(announcements, max_per_prefix=4, rng=rng))
        # Only the /32's own partition contributes; the /52 adds nothing
        # beyond what the covering /32 already partitions.
        assert len(targets) == 4

    def test_deduplicates_overlapping_announcements(self):
        announcements = prefixes("2001:db8::/44", "2001:db8::/48")
        targets = list(stage2_targets(announcements))
        assert len(targets) == len(set(targets)) == 16


class TestStage3:
    def test_only_slash48_announcements_expanded(self):
        announcements = prefixes("2001:db8::/32", "2001:db9:1::/48")
        rng = random.Random(3)
        targets = list(
            stage3_targets(announcements, max_per_prefix=8, rng=rng)
        )
        assert len(targets) == 8
        for target in targets:
            assert IPv6Prefix.of(target, 48).network == parse_address(
                "2001:db9:1::"
            )

    def test_targets_are_slash64_networks(self):
        announcements = prefixes("2001:db8:1::/48")
        rng = random.Random(4)
        for target in stage3_targets(announcements, max_per_prefix=32, rng=rng):
            assert is_sra_candidate(target, 64)

    def test_full_enumeration_count(self):
        announcements = prefixes("2001:db8:1::/48")
        targets = list(stage3_targets(announcements, max_per_prefix=None))
        assert len(targets) == 1 << 16


class TestRoute6:
    def test_samples_per_prefix(self):
        rng = random.Random(5)
        targets = list(
            route6_targets(prefixes("2001:db8:1::/48"), per_prefix=100, rng=rng)
        )
        assert len(targets) == 100
        assert len(set(targets)) == 100

    def test_small_prefix_enumerated(self):
        rng = random.Random(6)
        targets = list(
            route6_targets(prefixes("2001:db8:1:fff0::/60"), per_prefix=100, rng=rng)
        )
        assert len(targets) == 16  # only 16 /64s exist

    def test_longer_than_64_collapsed(self):
        rng = random.Random(7)
        targets = list(
            route6_targets(
                prefixes("2001:db8:1:2:8000::/66"), per_prefix=10, rng=rng
            )
        )
        assert targets == [parse_address("2001:db8:1:2::")]

    def test_targets_inside_registration(self):
        rng = random.Random(8)
        registration = IPv6Prefix.parse("2001:db8:42::/48")
        for target in route6_targets([registration], per_prefix=50, rng=rng):
            assert target in registration


class TestHitlistTargets:
    def test_cuts_to_slash64(self):
        hosts = [parse_address("2001:db8:1:2:3:4:5:6")]
        assert list(hitlist_targets(hosts)) == [parse_address("2001:db8:1:2::")]

    def test_deduplicates_same_subnet(self):
        hosts = [
            parse_address("2001:db8::1"),
            parse_address("2001:db8::2"),
            parse_address("2001:db8:0:1::9"),
        ]
        targets = list(hitlist_targets(hosts))
        assert len(targets) == 2

    def test_custom_subnet_length(self):
        hosts = [parse_address("2001:db8:1:2::99")]
        assert list(hitlist_targets(hosts, subnet_length=48)) == [
            parse_address("2001:db8:1::")
        ]
