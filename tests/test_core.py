"""Tests for the core contribution: alias filter, survey, method comparisons."""

import pytest

from repro.core.aliasfilter import filter_aliased, is_self_reply
from repro.core.probing import (
    ComparisonSeries,
    MethodScan,
    StabilityReport,
    VisibilityReport,
    run_direct_discovery,
    run_sra_vs_random,
    run_stability,
    run_visibility,
)
from repro.core.survey import INPUT_SET_NAMES, SRASurvey, SurveyConfig
from repro.hitlist.aliases import AliasedPrefixList
from repro.addr.ipv6 import IPv6Prefix
from repro.packet.icmpv6 import ICMPv6Type
from repro.scanner.records import ScanRecord, ScanResult

ECHO = int(ICMPv6Type.ECHO_REPLY)
UNREACH = int(ICMPv6Type.DESTINATION_UNREACHABLE)


def _record(target, source, icmp_type=ECHO):
    return ScanRecord(target=target, source=source, icmp_type=icmp_type, code=0)


class TestAliasFilter:
    def test_is_self_reply(self):
        assert is_self_reply(_record(5, 5))
        assert not is_self_reply(_record(5, 6))
        assert not is_self_reply(_record(5, 5, UNREACH))

    def test_drops_self_replies_and_their_targets(self):
        result = ScanResult(name="x", sent=3)
        result.records = [
            _record(5, 5),          # aliased tell-tale
            _record(5, 77),         # same target: also dropped
            _record(6, 88),         # unrelated: kept
        ]
        filtered, stats = filter_aliased(result)
        assert [r.source for r in filtered.records] == [88]
        assert stats.dropped_self_reply == 2
        assert stats.kept == 1

    def test_drops_alias_list_sources(self):
        aliased_prefix = IPv6Prefix.parse("2001:db8::/48")
        alias_list = AliasedPrefixList([aliased_prefix])
        inside = aliased_prefix.network + 9
        result = ScanResult(name="x", sent=2)
        result.records = [_record(1, inside), _record(2, 0x3000 << 100)]
        filtered, stats = filter_aliased(result, alias_list)
        assert stats.dropped_alias_list == 1
        assert len(filtered.records) == 1

    def test_preserves_metadata(self):
        result = ScanResult(name="x", epoch=4, sent=10, lost=2, loops_observed=3)
        filtered, _ = filter_aliased(result)
        assert (filtered.name, filtered.epoch, filtered.sent) == ("x", 4, 10)
        assert (filtered.lost, filtered.loops_observed) == (2, 3)

    def test_no_alias_list_is_fine(self):
        result = ScanResult(name="x", sent=1)
        result.records = [_record(1, 2)]
        filtered, stats = filter_aliased(result, None)
        assert stats.dropped == 0
        assert len(filtered.records) == 1


class TestSurvey:
    @pytest.fixture(scope="class")
    def survey_result(self, tiny_world, tiny_hitlist, tiny_alias_list):
        config = SurveyConfig(
            seed=3,
            slash48_per_prefix=32,
            max_bgp_48=6000,
            slash64_per_prefix=64,
            max_bgp_64=4000,
            route6_per_prefix=16,
            max_route6=6000,
            max_hitlist=4000,
        )
        survey = SRASurvey(
            tiny_world, tiny_hitlist, alias_list=tiny_alias_list, config=config
        )
        return survey.run()

    def test_all_input_sets_present(self, survey_result):
        assert set(survey_result.input_sets) == set(INPUT_SET_NAMES)

    def test_budgets_respected(self, survey_result):
        assert survey_result.input_sets["bgp-48"].targets <= 6000
        assert survey_result.input_sets["hitlist-64"].targets <= 4000

    def test_hitlist_discovers_most_routers(self, survey_result):
        """The paper's headline Table 2 property."""
        rates = {
            name: result.discovery_rate
            for name, result in survey_result.input_sets.items()
        }
        assert rates["hitlist-64"] == max(
            rates[name] for name in ("hitlist-64", "bgp-48", "bgp-64", "route6-64")
        )

    def test_hitlist_has_highest_echo_share_of_slash64_scans(self, survey_result):
        shares = {
            name: result.response_type_shares()["echo"]
            for name, result in survey_result.input_sets.items()
        }
        assert shares["hitlist-64"] > shares["bgp-64"]
        assert shares["hitlist-64"] > shares["route6-64"]

    def test_artificial_partitions_error_dominated(self, survey_result):
        for name in ("bgp-64", "route6-64"):
            shares = survey_result.input_sets[name].response_type_shares()
            assert shares["error"] > 0.8

    def test_table2_rows_shape(self, survey_result):
        rows = survey_result.table2_rows()
        assert rows[-1]["source"] == "total"
        assert rows[-1]["router_ips"] == len(survey_result.all_router_ips())
        for row in rows[:-1]:
            assert 0.0 <= row["reply_rate"] <= 1.0

    def test_alias_filter_applied(self, survey_result):
        hitlist_result = survey_result.input_sets["hitlist-64"]
        assert hitlist_result.alias_stats is not None
        # No surviving echo record may be a self-reply.
        for record in hitlist_result.result.records:
            assert not is_self_reply(record)

    def test_total_router_ips_union(self, survey_result):
        union = set()
        for result in survey_result.input_sets.values():
            union |= result.router_ips
        assert survey_result.all_router_ips() == union


class TestComparisonSeries:
    def _series(self):
        series = ComparisonSeries()
        for epoch, (sra_ips, random_ips) in enumerate(
            [({1, 2, 3}, {1, 2}), ({1, 2, 4}, {2, 3})]
        ):
            sra_result = ScanResult(name="s", epoch=epoch, sent=3)
            sra_result.records = [_record(i, ip) for i, ip in enumerate(sra_ips)]
            random_result = ScanResult(name="r", epoch=epoch, sent=3)
            random_result.records = [
                _record(i, ip, UNREACH) for i, ip in enumerate(random_ips)
            ]
            series.sra.append(MethodScan(epoch=epoch, result=sra_result))
            series.random.append(MethodScan(epoch=epoch, result=random_result))
        return series

    def test_advantage(self):
        advantages = self._series().advantage_per_epoch()
        assert advantages == [0.5, 0.5]

    def test_sra_exclusive(self):
        assert self._series().sra_exclusive() == {4}

    def test_consecutive_overlap(self):
        overlaps = self._series().consecutive_overlap("sra")
        assert overlaps == [pytest.approx(2 / 4)]


class TestMethodCampaigns:
    @pytest.fixture(scope="class")
    def sra_targets(self, tiny_hitlist):
        return tiny_hitlist.unique_slash64s()[:1500]

    def test_sra_vs_random(self, tiny_world, sra_targets):
        series = run_sra_vs_random(tiny_world, sra_targets, epochs=2)
        assert len(series.sra) == len(series.random) == 2
        # SRA should find at least as many router IPs as random probing
        # (the paper's Fig. 5 advantage).
        for sra_scan, random_scan in zip(series.sra, series.random):
            assert len(sra_scan.router_ips) >= len(random_scan.router_ips)

    def test_sra_echo_population_stable(self, tiny_world, sra_targets):
        series = run_sra_vs_random(tiny_world, sra_targets, epochs=3)
        echo_counts = [len(scan.echo_router_ips) for scan in series.sra]
        mean = sum(echo_counts) / len(echo_counts)
        assert all(abs(count - mean) / mean < 0.25 for count in echo_counts)

    def test_stability_report(self, tiny_world, sra_targets):
        report = run_stability(tiny_world, sra_targets, epochs=3)
        assert len(report.epochs) == 3
        first = report.epochs[0]
        assert first["same"] == pytest.approx(1.0)
        for epoch in report.epochs:
            total = epoch["same"] + epoch["changed"] + epoch["no_response"]
            assert total == pytest.approx(1.0)
        # Same-router share decreases (churn) but stays majority.
        assert report.epochs[-1]["same"] > 0.5

    def test_stability_empty_baseline(self):
        report = StabilityReport()
        report.add_epoch({})
        assert report.epochs[0]["same"] == 0.0

    def test_visibility_partitions(self, tiny_world, sra_targets):
        # Use router interfaces from the world as "discovered" router IPs.
        router_ips = {
            subnet.router_interface
            for subnet in list(tiny_world.subnets.values())[:400]
        }
        report = run_visibility(tiny_world, router_ips, days=3)
        shares = report.shares()
        assert shares["always"] + shares["sometimes"] + shares["never"] == (
            pytest.approx(1.0)
        )
        assert report.always | report.sometimes | report.never == report.probed
        # Most routers do not answer direct probes (paper: >70 %).
        assert shares["never"] > 0.5

    def test_visibility_empty(self):
        report = VisibilityReport()
        assert report.shares() == {
            "always": 0.0, "sometimes": 0.0, "never": 0.0
        }

    def test_direct_discovery_fewer_than_sra(self, tiny_world, sra_targets):
        """Direct probing of router addresses finds far fewer (paper: SRA
        finds 80 % more than direct targeting)."""
        series = run_sra_vs_random(tiny_world, sra_targets, epochs=1)
        sra_found = series.sra[0].router_ips
        direct_found = run_direct_discovery(tiny_world, sra_found)
        assert len(direct_found) < len(sra_found) * 0.7


class TestRepeatedSurveys:
    def test_run_repeated_and_overlap(self, tiny_world, tiny_hitlist):
        from repro.core.survey import survey_repetition_overlap

        config = SurveyConfig(
            seed=4,
            slash48_per_prefix=8,
            max_bgp_48=1500,
            slash64_per_prefix=8,
            max_bgp_64=1000,
            route6_per_prefix=4,
            max_route6=1500,
            max_hitlist=1500,
        )
        survey = SRASurvey(tiny_world, tiny_hitlist, config=config)
        results = survey.run_repeated(times=2)
        assert len(results) == 2
        overlaps = survey_repetition_overlap(results)
        assert set(overlaps) == set(INPUT_SET_NAMES)
        # The hitlist scan's (echo-based) router set is largely stable
        # between repetitions; error-based scans fluctuate more.
        assert overlaps["hitlist-64"] > 0.5

    def test_run_repeated_validates(self, tiny_world, tiny_hitlist):
        survey = SRASurvey(tiny_world, tiny_hitlist)
        with pytest.raises(ValueError):
            survey.run_repeated(times=0)

    def test_overlap_empty(self):
        from repro.core.survey import survey_repetition_overlap

        assert survey_repetition_overlap([]) == {}
