"""Unit tests for the int-backed IPv6 address/prefix primitives."""

import pytest

from repro.addr.ipv6 import (
    ADDRESS_BITS,
    MAX_ADDRESS,
    AddressError,
    IPv6Prefix,
    common_prefix_length,
    format_address,
    host_bits,
    network_of,
    parse_address,
    prefix_mask,
)


class TestParseAddress:
    def test_parses_canonical(self):
        assert parse_address("::1") == 1

    def test_parses_full_form(self):
        value = parse_address("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert value == 0x20010DB8000000000000000000000001

    def test_parses_compressed(self):
        assert parse_address("2001:db8::1") == 0x20010DB8000000000000000000000001

    def test_parses_all_zeros(self):
        assert parse_address("::") == 0

    def test_parses_max(self):
        assert parse_address("ffff" + ":ffff" * 7) == MAX_ADDRESS

    def test_rejects_ipv4(self):
        with pytest.raises(AddressError):
            parse_address("192.0.2.1")

    def test_rejects_garbage(self):
        with pytest.raises(AddressError):
            parse_address("not-an-address")

    def test_rejects_too_many_groups(self):
        with pytest.raises(AddressError):
            parse_address("1:2:3:4:5:6:7:8:9")


class TestFormatAddress:
    def test_compresses(self):
        assert format_address(0x20010DB8000000000000000000000001) == "2001:db8::1"

    def test_zero(self):
        assert format_address(0) == "::"

    def test_roundtrip(self):
        for text in ("2001:db8::", "fe80::1", "::ffff:0:1", "2001:db8:1:2:3:4:5:6"):
            assert format_address(parse_address(text)) == text

    def test_rejects_negative(self):
        with pytest.raises(AddressError):
            format_address(-1)

    def test_rejects_overflow(self):
        with pytest.raises(AddressError):
            format_address(1 << 128)

    def test_matches_stdlib_on_structured_and_random_values(self):
        # The formatter is hand-rolled (RFC 5952 group math, no ipaddress
        # object churn); pin it against the stdlib on values that exercise
        # every zero-run shape plus a pseudo-random sweep.
        import ipaddress
        import random

        values = [0, 1, MAX_ADDRESS, 0x20010DB8000000000000000000000001]
        for group in range(8):  # single non-zero group in every position
            values.append(0xBEEF << (16 * group))
        for start in range(8):  # zero runs of every length and position
            for length in range(1, 8 - start + 1):
                address = MAX_ADDRESS
                for group in range(start, start + length):
                    address &= ~(0xFFFF << (16 * group))
                values.append(address)
        rng = random.Random(7)
        values.extend(rng.getrandbits(128) for _ in range(2000))
        values.extend(rng.getrandbits(64) << 64 for _ in range(500))
        for value in values:
            assert format_address(value) == str(ipaddress.IPv6Address(value))


class TestMasks:
    def test_mask_zero(self):
        assert prefix_mask(0) == 0

    def test_mask_full(self):
        assert prefix_mask(128) == MAX_ADDRESS

    def test_mask_32(self):
        assert prefix_mask(32) == 0xFFFFFFFF << 96

    def test_mask_invalid(self):
        with pytest.raises(AddressError):
            prefix_mask(129)
        with pytest.raises(AddressError):
            prefix_mask(-1)

    def test_network_of(self):
        address = parse_address("2001:db8:abcd:1234::42")
        assert network_of(address, 48) == parse_address("2001:db8:abcd::")

    def test_host_bits(self):
        address = parse_address("2001:db8::42")
        assert host_bits(address, 64) == 0x42

    def test_all_129_table_entries(self):
        # prefix_mask/host_bits read precomputed 129-entry tables; verify
        # every entry against the arithmetic definition.
        for length in range(129):
            expected = (MAX_ADDRESS << (128 - length)) & MAX_ADDRESS
            assert prefix_mask(length) == expected
            address = 0x20010DB8FEDCBA9876543210FFFF0001
            assert host_bits(address, length) == address & (MAX_ADDRESS ^ expected)

    def test_host_bits_invalid_length(self):
        with pytest.raises(AddressError):
            host_bits(1, 129)
        with pytest.raises(AddressError):
            host_bits(1, -1)


class TestIPv6Prefix:
    def test_parse(self):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        assert prefix.network == parse_address("2001:db8::")
        assert prefix.length == 32

    def test_parse_rejects_host_bits(self):
        with pytest.raises(AddressError):
            IPv6Prefix.parse("2001:db8::1/32")

    def test_parse_requires_slash(self):
        with pytest.raises(AddressError):
            IPv6Prefix.parse("2001:db8::")

    def test_parse_rejects_bad_length(self):
        with pytest.raises(AddressError):
            IPv6Prefix.parse("2001:db8::/xx")
        with pytest.raises(AddressError):
            IPv6Prefix.parse("2001:db8::/129")

    def test_of_masks_host_bits(self):
        prefix = IPv6Prefix.of(parse_address("2001:db8::1234"), 64)
        assert prefix == IPv6Prefix.parse("2001:db8::/64")

    def test_str(self):
        assert str(IPv6Prefix.parse("2001:db8::/48")) == "2001:db8::/48"

    def test_contains(self):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        assert parse_address("2001:db8:ffff::1") in prefix
        assert parse_address("2001:db9::") not in prefix

    def test_first_last(self):
        prefix = IPv6Prefix.parse("2001:db8::/126")
        assert prefix.first == parse_address("2001:db8::")
        assert prefix.last == parse_address("2001:db8::3")

    def test_num_addresses(self):
        assert IPv6Prefix.parse("2001:db8::/127").num_addresses == 2
        assert IPv6Prefix.parse("::/0").num_addresses == 1 << 128

    def test_covers(self):
        outer = IPv6Prefix.parse("2001:db8::/32")
        inner = IPv6Prefix.parse("2001:db8:1::/48")
        assert outer.covers(inner)
        assert outer.covers(outer)
        assert not inner.covers(outer)

    def test_covers_disjoint(self):
        a = IPv6Prefix.parse("2001:db8::/32")
        b = IPv6Prefix.parse("2001:db9::/48")
        assert not a.covers(b)

    def test_supernet(self):
        prefix = IPv6Prefix.parse("2001:db8:1234::/48")
        assert prefix.supernet(32) == IPv6Prefix.parse("2001:db8::/32")

    def test_supernet_rejects_longer(self):
        with pytest.raises(AddressError):
            IPv6Prefix.parse("2001:db8::/32").supernet(48)

    def test_subnets_enumeration(self):
        prefix = IPv6Prefix.parse("2001:db8::/126")
        subnets = list(prefix.subnets(128))
        assert len(subnets) == 4
        assert subnets[0].network == prefix.network
        assert subnets[-1].network == prefix.last

    def test_subnets_same_length(self):
        prefix = IPv6Prefix.parse("2001:db8::/64")
        assert list(prefix.subnets(64)) == [prefix]

    def test_subnets_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(IPv6Prefix.parse("2001:db8::/64").subnets(48))

    def test_nth_subnet(self):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        assert prefix.nth_subnet(48, 0).network == prefix.network
        assert prefix.nth_subnet(48, 5) == IPv6Prefix.parse("2001:db8:5::/48")

    def test_nth_subnet_bounds(self):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        with pytest.raises(AddressError):
            prefix.nth_subnet(48, 1 << 16)
        with pytest.raises(AddressError):
            prefix.nth_subnet(48, -1)

    def test_ordering_groups_covering_first(self):
        prefixes = [
            IPv6Prefix.parse("2001:db8:1::/48"),
            IPv6Prefix.parse("2001:db8::/32"),
            IPv6Prefix.parse("2001:db8::/48"),
        ]
        ordered = sorted(prefixes)
        assert ordered[0] == IPv6Prefix.parse("2001:db8::/32")
        assert ordered[1] == IPv6Prefix.parse("2001:db8::/48")

    def test_hashable(self):
        assert len({IPv6Prefix.parse("::/0"), IPv6Prefix.parse("::/0")}) == 1


class TestCommonPrefixLength:
    def test_identical(self):
        assert common_prefix_length(5, 5) == ADDRESS_BITS

    def test_disjoint_top_bit(self):
        assert common_prefix_length(0, 1 << 127) == 0

    def test_partial(self):
        a = parse_address("2001:db8::")
        b = parse_address("2001:db9::")
        assert common_prefix_length(a, b) == 31
