"""The resilient transport layer, unit by unit.

The backend contract suite (tests/test_backend_contract.py) pins the
end-to-end properties — wrapper identity, transient-fault byte identity,
quarantine, the breaker cycle under a real scan.  This file covers the
mechanisms underneath:

* ``RetryPolicy`` validation and the backoff/jitter math (hypothesis
  properties: bounds, determinism, jitter-0 exactness),
* transactional attempts: a failed ``send_batch`` rolls back stats,
  deferred rate-limit checks, and ``unmatched_replies``,
* the watchdog deadline recovering a hung backend (injected join, zero
  wall-time),
* batch splitting isolating a single poison probe,
* the ``CircuitBreaker`` state machine on a fake clock,
* checkpoint ``config_key`` refusing a resume across a policy change,
* CLI validation (exit 2 + one-line stderr) for the resilience flags,
* the sharded runner's injectable retry-backoff sleep,
* ``merge_results`` summing ``faulted_probes``,
* ``FaultyBackend``'s short-outcome and blackhole modes.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.engine import EngineStats, ProbeResult
from repro.netsim.faults import ChaosEngine, FaultPlan, FaultyBackend
from repro.scanner.backends import (
    BackendSpec,
    BackendTimeoutError,
    CircuitBreaker,
    ResilientBackend,
    RetryPolicy,
    make_backend_spec,
    ProbeBackend,
)
from repro.scanner.checkpoint import (
    CheckpointMismatchError,
    ScanCheckpoint,
    config_key,
)
from repro.scanner.records import ScanResult, merge_results
from repro.scanner.sharded import ShardedScanRunner
from repro.scanner.zmapv6 import ScanConfig

TARGETS = [0x2001_0DB8_0000_0000_0000_0000_0000_0000 + i for i in range(8)]
TIMES = [i / 1000.0 for i in range(8)]


class ScriptedBackend(ProbeBackend):
    """A backend whose per-call behaviour is a script.

    Every call mutates observable state *before* acting out its step —
    like a real backend that got half-way before failing — so the
    transactional-rollback tests can prove the wrapper undoes it.
    """

    name = "scripted"
    supports_columns = False
    deterministic = True
    requires_privilege = False

    def __init__(self, script=(), release=None):
        self.script = list(script)  # "ok" | "fail" | "short" | "hang"
        self.calls = 0
        self.unmatched_replies = 0
        self._epoch = 0
        self._stats = EngineStats()
        self._checks: list[tuple[float, int]] = []
        self._release = release

    @classmethod
    def from_spec(cls, spec, *, world=None, engine=None, epoch=0,
                  defer_rate_limit=False):
        raise TypeError("test backend; never spec-built")

    def spec(self) -> BackendSpec:
        return make_backend_spec("sim")

    @property
    def epoch(self) -> int:
        return self._epoch

    def new_epoch(self, epoch: int) -> None:
        self._epoch = epoch

    @property
    def stats(self) -> EngineStats:
        return self._stats

    @property
    def pending_checks(self) -> list[tuple[float, int]]:
        return self._checks

    def send_batch(self, targets, times, *, hop_limit=64, probe_ids=None):
        step = self.script[self.calls] if self.calls < len(self.script) else "ok"
        self.calls += 1
        # Mutations first: a failure leaves them behind for the wrapper
        # to roll back.
        self._stats.probes += len(targets)
        self._checks.append((times[0], 1))
        self.unmatched_replies += 1
        if step == "fail":
            raise RuntimeError("scripted transport failure")
        if step == "hang":
            self._release.wait()
        outcomes = [
            ProbeResult(target=target, time=time, epoch=self._epoch)
            for target, time in zip(targets, times)
        ]
        if step == "short" and len(outcomes) > 1:
            return outcomes[:-1]
        return outcomes


class PoisonBackend(ScriptedBackend):
    """Fails any batch containing the poison target; clean otherwise."""

    def __init__(self, poison: int):
        super().__init__()
        self.poison = poison

    def send_batch(self, targets, times, *, hop_limit=64, probe_ids=None):
        if self.poison in targets:
            self.calls += 1
            raise RuntimeError("poison probe in batch")
        return super().send_batch(
            targets, times, hop_limit=hop_limit, probe_ids=probe_ids
        )


# ---------------- RetryPolicy validation + backoff math ---------------- #


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_retries": -1},
        {"max_retries": 1.5},
        {"backoff": -0.1},
        {"backoff": float("nan")},
        {"backoff_cap": float("inf")},
        {"jitter": -0.01},
        {"jitter": 1.01},
        {"timeout": 0.0},
        {"timeout": float("nan")},
        {"breaker_threshold": 0.0},
        {"breaker_threshold": 1.5},
        {"breaker_threshold": float("nan")},
        {"breaker_window": 0},
        {"breaker_min_batches": 0},
        {"breaker_cooldown": -1.0},
        {"max_split_depth": -1},
    ],
)
def test_policy_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_policy_is_picklable_and_hashable():
    import pickle

    policy = RetryPolicy(max_retries=3, jitter=0.5, seed=7)
    assert pickle.loads(pickle.dumps(policy)) == policy
    assert hash(policy) == hash(RetryPolicy(max_retries=3, jitter=0.5, seed=7))


@settings(max_examples=200, deadline=None)
@given(
    attempt=st.integers(0, 20),
    backoff=st.floats(0.0, 100.0),
    cap=st.floats(0.0, 100.0),
    jitter=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**32 - 1),
    keys=st.lists(st.integers(0, 1_000), max_size=3),
)
def test_backoff_delay_bounds_and_determinism(
    attempt, backoff, cap, jitter, seed, keys
):
    policy = RetryPolicy(
        backoff=backoff, backoff_cap=cap, jitter=jitter, seed=seed
    )
    delay = policy.backoff_delay(attempt, *keys)
    base = min(backoff * 2.0**attempt, cap)
    assert 0.0 <= delay <= cap + 1e-9
    assert base * (1.0 - jitter) - 1e-9 <= delay <= base + 1e-9
    # Same policy, same keys, same delay: retried runs back off alike.
    assert delay == policy.backoff_delay(attempt, *keys)


@settings(max_examples=100, deadline=None)
@given(
    attempt=st.integers(0, 20),
    backoff=st.floats(0.0, 100.0),
    cap=st.floats(0.0, 100.0),
)
def test_zero_jitter_reproduces_exponential_formula(attempt, backoff, cap):
    policy = RetryPolicy(backoff=backoff, backoff_cap=cap)
    assert policy.backoff_delay(attempt) == min(backoff * 2.0**attempt, cap)


def test_jitterless_schedule_matches_historical_shard_backoff():
    # The sharded runner's pre-policy formula, bit for bit.
    policy = RetryPolicy(max_retries=5, backoff=0.1, backoff_cap=5.0)
    assert [policy.backoff_delay(i) for i in range(7)] == [
        0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 5.0,
    ]


# ---------------- transactional attempts ---------------- #


def test_failed_attempt_rolls_back_observable_state():
    inner = ScriptedBackend(script=["fail", "ok"])
    policy = RetryPolicy(max_retries=1, backoff=0.0)
    backend = ResilientBackend(inner, policy, sleep=lambda _d: None)
    outcomes = backend.send_batch(TARGETS, TIMES)
    assert len(outcomes) == len(TARGETS)
    # One logical batch: the failed attempt's mutations were undone.
    assert inner.stats.probes == len(TARGETS)
    assert len(inner.pending_checks) == 1
    assert inner.unmatched_replies == 1
    assert backend.resilience.retries == 1
    assert backend.resilience.faulted_probes == 0


def test_short_outcome_list_is_rolled_back_and_retried():
    inner = ScriptedBackend(script=["short", "ok"])
    policy = RetryPolicy(max_retries=1, backoff=0.0)
    backend = ResilientBackend(inner, policy, sleep=lambda _d: None)
    outcomes = backend.send_batch(TARGETS, TIMES)
    assert len(outcomes) == len(TARGETS)
    assert inner.stats.probes == len(TARGETS)
    assert backend.resilience.retries == 1


def test_exhausted_batch_records_last_error():
    inner = ScriptedBackend(script=["fail", "fail"])
    policy = RetryPolicy(max_retries=1, backoff=0.0, max_split_depth=0)
    backend = ResilientBackend(inner, policy, sleep=lambda _d: None)
    outcomes = backend.send_batch(TARGETS, TIMES)
    assert all(not outcome.replies for outcome in outcomes)
    assert inner.stats.probes == 0, "every attempt rolled back"
    (fault,) = backend.resilience.faults
    assert fault.reason == "exhausted"
    assert fault.attempts == 2
    assert "scripted transport failure" in fault.error
    assert backend.resilience.faulted_probes == len(TARGETS)


# ---------------- watchdog deadline ---------------- #


def test_watchdog_recovers_hung_backend():
    import threading

    release = threading.Event()
    inner = ScriptedBackend(script=["hang", "ok"], release=release)
    policy = RetryPolicy(max_retries=1, backoff=0.0, timeout=30.0)
    # Injected join returns without waiting: the "deadline" expires
    # instantly, so the test spends zero wall-time on the hang.
    backend = ResilientBackend(
        inner,
        policy,
        sleep=lambda _d: None,
        join=lambda _thread, _timeout: None,
    )
    try:
        outcomes = backend.send_batch(TARGETS, TIMES)
        assert len(outcomes) == len(TARGETS)
        assert backend.resilience.timeouts == 1
        assert backend.resilience.retries == 1
        assert backend.resilience.faulted_probes == 0
    finally:
        release.set()  # let the abandoned watchdog thread finish


def test_timeout_error_names_the_deadline():
    with pytest.raises(ValueError):
        RetryPolicy(timeout=-1.0)
    error = BackendTimeoutError("send_batch exceeded the 2.0s deadline")
    assert "2.0s" in str(error)


# ---------------- splitting isolates poison probes ---------------- #


def test_split_quarantines_only_the_poison_probe():
    poison = TARGETS[5]
    inner = PoisonBackend(poison)
    policy = RetryPolicy(max_retries=0, backoff=0.0, max_split_depth=3)
    backend = ResilientBackend(inner, policy, sleep=lambda _d: None)
    outcomes = backend.send_batch(TARGETS, TIMES)
    assert [outcome.target for outcome in outcomes] == TARGETS
    assert backend.resilience.faulted_probes == 1
    (fault,) = backend.resilience.faults
    assert fault.probes == 1
    assert fault.reason == "exhausted"
    # The seven clean probes were actually sent.
    assert inner.stats.probes == len(TARGETS) - 1


# ---------------- the breaker state machine ---------------- #


def test_breaker_opens_half_opens_and_closes_on_fake_clock():
    clock = [0.0]
    breaker = CircuitBreaker(
        threshold=0.5, window=4, min_batches=2, cooldown=10.0,
        clock=lambda: clock[0],
    )
    assert breaker.allow() and breaker.state == "closed"
    breaker.record(False)
    assert breaker.state == "closed", "below min_batches"
    breaker.record(False)
    assert breaker.state == "open"
    assert not breaker.allow(), "cooldown has not expired"
    clock[0] = 10.0
    assert breaker.allow()
    assert breaker.state == "half-open"
    breaker.record(True)
    assert breaker.state == "closed"
    assert breaker.transitions == [
        ("closed", "open"), ("open", "half-open"), ("half-open", "closed"),
    ]


def test_breaker_reopens_on_failed_trial():
    clock = [0.0]
    breaker = CircuitBreaker(
        threshold=0.5, window=4, min_batches=2, cooldown=5.0,
        clock=lambda: clock[0],
    )
    breaker.record(False)
    breaker.record(False)
    clock[0] = 5.0
    assert breaker.allow() and breaker.state == "half-open"
    breaker.record(False)
    assert breaker.state == "open"
    assert not breaker.allow(), "cooldown restarted"


# ---------------- checkpoint: policy is part of the identity ------------ #


def test_config_key_includes_retry_policy():
    without = config_key(ScanConfig(pps=100.0))
    with_policy = config_key(
        ScanConfig(pps=100.0, retry_policy=RetryPolicy())
    )
    assert without != with_policy
    assert with_policy == config_key(
        ScanConfig(pps=100.0, retry_policy=RetryPolicy())
    )


def test_resume_across_policy_change_fails_loudly():
    stored = config_key(ScanConfig(pps=100.0))
    checkpoint = ScanCheckpoint(
        name="scan", epoch=0, shards=2, scan_key=stored,
        target_count=8, fingerprint=1,
    )
    resuming = config_key(
        ScanConfig(pps=100.0, retry_policy=RetryPolicy(max_retries=1))
    )
    with pytest.raises(CheckpointMismatchError, match="scan config"):
        checkpoint.validate_resume(
            name="scan", epoch=0, shards=2, scan_key=resuming,
            target_count=8, fingerprint=1,
        )


def test_scan_config_rejects_non_policy():
    with pytest.raises(ValueError, match="retry_policy"):
        ScanConfig(pps=100.0, retry_policy="not-a-policy")


# ---------------- CLI validation: exit 2, one-line stderr ------------- #


@pytest.mark.parametrize(
    "argv, fragment",
    [
        (["--backend-retries", "-1"], "--backend-retries"),
        (["--backend-timeout", "0"], "--backend-timeout"),
        (["--backend-timeout", "-3"], "--backend-timeout"),
        (["--backend-timeout", "nan"], "--backend-timeout"),
        (["--breaker-threshold", "0"], "--breaker-threshold"),
        (["--breaker-threshold", "1.5"], "--breaker-threshold"),
        (["--breaker-threshold", "nan"], "--breaker-threshold"),
        (["--max-shard-retries", "-1"], "--max-shard-retries"),
    ],
)
def test_scan_cli_rejects_bad_resilience_flags(argv, fragment, capsys):
    from repro.scanner.cli import main

    assert main(argv) == 2
    err = capsys.readouterr().err
    assert err.startswith("sra-scan: ")
    assert fragment in err
    assert err.count("\n") == 1, "one-line diagnostics only"


@pytest.mark.parametrize(
    "argv, fragment",
    [
        (["--backend-retries", "-1"], "--backend-retries"),
        (["--backend-timeout", "0"], "--backend-timeout"),
        (["--backend-timeout", "nan"], "--backend-timeout"),
        (["--breaker-threshold", "0"], "--breaker-threshold"),
        (["--breaker-threshold", "nan"], "--breaker-threshold"),
    ],
)
def test_repro_cli_rejects_bad_resilience_flags(argv, fragment, capsys):
    from repro.experiments.runner import main

    assert main(argv) == 2
    err = capsys.readouterr().err
    assert err.startswith("sra-repro: ")
    assert fragment in err
    assert err.count("\n") == 1, "one-line diagnostics only"


def test_scan_cli_accepts_resilience_flags(tmp_path, capsys):
    from repro.scanner.cli import main

    code = main(
        [
            "--world", "tiny",
            "--input-set", "bgp-plain",
            "--max-targets", "32",
            "--backend-retries", "2",
            "--breaker-threshold", "0.5",
            "--jsonl", str(tmp_path / "records.jsonl"),
            "--summary",
        ]
    )
    assert code == 0
    assert (tmp_path / "records.jsonl").exists()


# ---------------- sharded runner: injectable backoff sleep ------------ #


def test_shard_retry_backoff_uses_injected_sleep(tiny_world):
    from repro.scanner.cli import build_targets

    delays: list[float] = []
    chaos = ChaosEngine(
        FaultPlan(crash_shard=0, crash_at_probe=0, crash_attempts=2)
    )
    runner = ShardedScanRunner(
        tiny_world,
        shards=2,
        executor="thread",
        max_shard_retries=2,
        sleep=delays.append,
        chaos=chaos,
    )
    targets = build_targets(tiny_world, "bgp-plain", max_targets=32, seed=5)
    result = runner.scan(
        targets,
        ScanConfig(pps=10_000.0, seed=5),
        name="backoff-sleep",
        epoch=7300,
    )
    assert result.sent == len(targets)
    # Two failed rounds, exponential schedule, zero wall-time.
    assert delays == [0.1, 0.2]


# ---------------- merge + FaultyBackend odds and ends ----------------- #


def test_merge_results_sums_faulted_probes():
    merged = merge_results(
        "merged",
        [
            ScanResult(name="a", sent=10, faulted_probes=3),
            ScanResult(name="b", sent=10, faulted_probes=0),
            ScanResult(name="c", sent=10, faulted_probes=4),
        ],
    )
    assert merged.faulted_probes == 7
    assert merged.sent == 30


def test_faulty_backend_short_mode_truncates_once():
    inner = ScriptedBackend()
    faulty = FaultyBackend(
        inner, FaultPlan(backend_short_batch=0), shard=0
    )
    first = faulty.send_batch(TARGETS, TIMES)
    assert len(first) == len(TARGETS) - 1, "first attempt is short"
    second = faulty.send_batch(TARGETS, TIMES)
    assert len(second) == len(TARGETS), "retries see the full batch"


def test_faulty_backend_blackhole_eats_echo_replies(tiny_world):
    from repro.scanner.backends import build_backend
    from repro.scanner.cli import build_targets

    spec = ScanConfig(backend="sim").backend_spec()
    targets = list(
        build_targets(tiny_world, "bgp-plain", max_targets=16, seed=5)
    )
    times = [i / 1000.0 for i in range(len(targets))]
    clean = build_backend(spec, world=tiny_world, epoch=0)
    baseline = clean.send_batch(targets, times)
    echoes = sum(
        reply.count
        for outcome in baseline
        for reply in outcome.replies
        if reply.is_echo
    )
    assert echoes > 0, "vacuous: the tiny world answered nothing"

    fresh = build_backend(spec, world=tiny_world, epoch=0)
    faulty = FaultyBackend(fresh, FaultPlan(backend_blackhole=True))
    eaten = faulty.send_batch(targets, times)
    assert all(
        not reply.is_echo for outcome in eaten for reply in outcome.replies
    )
    # Counters stay coherent with the surviving replies.
    assert fresh.stats.echo_replies == 0


def test_stochastic_fault_plan_is_deterministic():
    plan = FaultPlan(seed=42, backend_error_probability=0.5)
    first = FaultyBackend(ScriptedBackend(), plan, shard=3)
    second = FaultyBackend(ScriptedBackend(), plan, shard=3)
    verdicts_a = [first._fated(ordinal) for ordinal in range(64)]
    verdicts_b = [second._fated(ordinal) for ordinal in range(64)]
    assert verdicts_a == verdicts_b
    assert any(verdicts_a) and not all(verdicts_a)


def test_resilience_is_invisible_without_math_weirdness():
    # A policy whose knobs are all no-ops must behave as pure delegation.
    inner = ScriptedBackend()
    backend = ResilientBackend(
        inner, RetryPolicy(max_retries=0, backoff=0.0), sleep=lambda _d: None
    )
    outcomes = backend.send_batch(TARGETS, TIMES)
    assert len(outcomes) == len(TARGETS)
    assert backend.resilience.empty()
    assert math.isfinite(RetryPolicy().backoff_delay(1000))
