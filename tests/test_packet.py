"""Tests for the byte-accurate IPv6/ICMPv6 codecs and the probe payload."""

import pytest

from repro.addr.ipv6 import parse_address
from repro.packet.icmpv6 import (
    MAX_ERROR_QUOTE,
    ICMPv6Message,
    ICMPv6Type,
    TimeExceededCode,
    UnreachableCode,
    echo_reply_for,
    echo_request,
    error_message,
)
from repro.packet.ipv6hdr import (
    HEADER_LENGTH,
    IPv6Header,
    PacketError,
    internet_checksum,
    pseudo_header,
)
from repro.packet.probe import (
    PAYLOAD_LENGTH,
    build_probe_packet,
    decode_payload,
    encode_payload,
    extract_probe,
)

SRC = parse_address("2001:db8:ffff::1")
DST = parse_address("2001:db8:1::")
KEY = b"0123456789abcdef0123456789abcdef"


class TestIPv6Header:
    def test_roundtrip(self):
        header = IPv6Header(src=SRC, dst=DST, payload_length=64, hop_limit=64)
        decoded = IPv6Header.decode(header.encode())
        assert decoded == header

    def test_encoded_length(self):
        header = IPv6Header(src=SRC, dst=DST, payload_length=0)
        assert len(header.encode()) == HEADER_LENGTH

    def test_version_nibble(self):
        raw = IPv6Header(src=SRC, dst=DST, payload_length=0).encode()
        assert raw[0] >> 4 == 6

    def test_traffic_class_and_flow_label(self):
        header = IPv6Header(
            src=SRC, dst=DST, payload_length=1, traffic_class=0xAB,
            flow_label=0x12345,
        )
        decoded = IPv6Header.decode(header.encode())
        assert decoded.traffic_class == 0xAB
        assert decoded.flow_label == 0x12345

    def test_rejects_truncated(self):
        with pytest.raises(PacketError):
            IPv6Header.decode(b"\x60" + b"\x00" * 10)

    def test_rejects_wrong_version(self):
        raw = bytearray(IPv6Header(src=SRC, dst=DST, payload_length=0).encode())
        raw[0] = 0x40  # IPv4 version nibble
        with pytest.raises(PacketError):
            IPv6Header.decode(bytes(raw))

    def test_rejects_bad_hop_limit(self):
        with pytest.raises(PacketError):
            IPv6Header(src=SRC, dst=DST, payload_length=0, hop_limit=256).encode()

    def test_decremented(self):
        header = IPv6Header(src=SRC, dst=DST, payload_length=0, hop_limit=5)
        assert header.decremented().hop_limit == 4

    def test_decremented_at_zero(self):
        header = IPv6Header(src=SRC, dst=DST, payload_length=0, hop_limit=0)
        with pytest.raises(PacketError):
            header.decremented()


class TestChecksum:
    def test_known_value(self):
        # RFC 1071 example: checksum of 0001 f203 f4f5 f6f7.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == ~0xDDF2 & 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")

    def test_pseudo_header_layout(self):
        pseudo = pseudo_header(SRC, DST, 8, 58)
        assert len(pseudo) == 40
        assert pseudo[-1] == 58


class TestICMPv6Message:
    def test_echo_roundtrip(self):
        message = echo_request(0x1234, 0x5678, b"payload")
        raw = message.encode(SRC, DST)
        decoded = ICMPv6Message.decode(raw, src=SRC, dst=DST)
        assert decoded.type is ICMPv6Type.ECHO_REQUEST
        assert decoded.identifier == 0x1234
        assert decoded.sequence == 0x5678
        assert decoded.body == b"payload"

    def test_checksum_verified(self):
        raw = bytearray(echo_request(1, 2, b"x").encode(SRC, DST))
        raw[-1] ^= 0xFF
        with pytest.raises(PacketError):
            ICMPv6Message.decode(bytes(raw), src=SRC, dst=DST)

    def test_checksum_depends_on_addresses(self):
        raw = echo_request(1, 2, b"x").encode(SRC, DST)
        with pytest.raises(PacketError):
            ICMPv6Message.decode(raw, src=SRC, dst=DST + 1)

    def test_verify_can_be_skipped(self):
        raw = bytearray(echo_request(1, 2, b"x").encode(SRC, DST))
        raw[-1] ^= 0xFF
        decoded = ICMPv6Message.decode(bytes(raw), src=SRC, dst=DST, verify=False)
        assert decoded.type is ICMPv6Type.ECHO_REQUEST

    def test_rejects_truncated(self):
        with pytest.raises(PacketError):
            ICMPv6Message.decode(b"\x80\x00", src=SRC, dst=DST)

    def test_rejects_unknown_type(self):
        raw = bytearray(echo_request(1, 2, b"").encode(SRC, DST))
        raw[0] = 200
        with pytest.raises(PacketError):
            ICMPv6Message.decode(bytes(raw), src=SRC, dst=DST, verify=False)

    def test_error_types_are_errors(self):
        assert ICMPv6Type.DESTINATION_UNREACHABLE.is_error
        assert ICMPv6Type.TIME_EXCEEDED.is_error
        assert not ICMPv6Type.ECHO_REPLY.is_error

    def test_echo_reply_for(self):
        request = echo_request(7, 9, b"data")
        reply = echo_reply_for(request)
        assert reply.type is ICMPv6Type.ECHO_REPLY
        assert (reply.identifier, reply.sequence, reply.body) == (7, 9, b"data")

    def test_echo_reply_for_rejects_non_request(self):
        with pytest.raises(PacketError):
            echo_reply_for(echo_reply_for(echo_request(1, 1, b"")))

    def test_error_quote_truncated_to_min_mtu(self):
        huge = b"\x60" + b"\x00" * 3000
        message = error_message(
            ICMPv6Type.TIME_EXCEEDED, TimeExceededCode.HOP_LIMIT_EXCEEDED, huge
        )
        assert len(message.body) == MAX_ERROR_QUOTE
        raw = message.encode(SRC, DST)
        assert len(raw) <= 1280 - HEADER_LENGTH

    def test_error_message_rejects_info_type(self):
        with pytest.raises(PacketError):
            error_message(ICMPv6Type.ECHO_REPLY, 0, b"")

    def test_error_roundtrip(self):
        quote = b"\x60" + b"\x00" * 47
        message = error_message(
            ICMPv6Type.DESTINATION_UNREACHABLE,
            UnreachableCode.NO_ROUTE,
            quote,
        )
        raw = message.encode(SRC, DST)
        decoded = ICMPv6Message.decode(raw, src=SRC, dst=DST)
        assert decoded.is_error
        assert decoded.code == UnreachableCode.NO_ROUTE
        assert decoded.body == quote


class TestProbePayload:
    def test_roundtrip(self):
        payload = encode_payload(DST, 42, KEY)
        assert len(payload) == PAYLOAD_LENGTH
        decoded = decode_payload(payload, KEY)
        assert decoded is not None
        assert decoded.target == DST
        assert decoded.probe_id == 42

    def test_rejects_wrong_key(self):
        payload = encode_payload(DST, 42, KEY)
        assert decode_payload(payload, b"different-key-material") is None

    def test_rejects_tampered_target(self):
        payload = bytearray(encode_payload(DST, 42, KEY))
        payload[6] ^= 0x01
        assert decode_payload(bytes(payload), KEY) is None

    def test_rejects_short_payload(self):
        assert decode_payload(b"SRA6", KEY) is None

    def test_rejects_foreign_traffic(self):
        assert decode_payload(b"\x00" * PAYLOAD_LENGTH, KEY) is None

    def test_extra_trailing_bytes_tolerated(self):
        payload = encode_payload(DST, 7, KEY) + b"padding"
        decoded = decode_payload(payload, KEY)
        assert decoded is not None and decoded.probe_id == 7


class TestExtractProbe:
    def _probe(self, probe_id=9):
        return build_probe_packet(
            src=SRC,
            target=DST,
            probe_id=probe_id,
            key=KEY,
            hop_limit=64,
            identifier=1,
            sequence=2,
        )

    def test_from_echo_reply(self):
        wire = self._probe()
        request = ICMPv6Message.decode(wire[HEADER_LENGTH:], src=SRC, dst=DST)
        reply = echo_reply_for(request)
        extraction = extract_probe(reply, KEY)
        assert extraction is not None
        payload, target = extraction
        assert target == DST and payload.probe_id == 9

    def test_from_error_message(self):
        wire = self._probe(probe_id=11)
        error = error_message(
            ICMPv6Type.TIME_EXCEEDED,
            TimeExceededCode.HOP_LIMIT_EXCEEDED,
            wire,
        )
        extraction = extract_probe(error, KEY)
        assert extraction is not None
        payload, target = extraction
        assert target == DST and payload.probe_id == 11

    def test_error_with_short_quote_rejected(self):
        error = error_message(
            ICMPv6Type.DESTINATION_UNREACHABLE,
            UnreachableCode.NO_ROUTE,
            b"\x60\x00\x00\x00",
        )
        assert extract_probe(error, KEY) is None

    def test_rewritten_destination_rejected(self):
        wire = bytearray(self._probe())
        # A middlebox rewrote the inner destination address.
        wire[24:40] = (DST + 1).to_bytes(16, "big")
        error = error_message(
            ICMPv6Type.TIME_EXCEEDED,
            TimeExceededCode.HOP_LIMIT_EXCEEDED,
            bytes(wire),
        )
        assert extract_probe(error, KEY) is None

    def test_echo_request_not_extracted(self):
        wire = self._probe()
        request = ICMPv6Message.decode(wire[HEADER_LENGTH:], src=SRC, dst=DST)
        assert extract_probe(request, KEY) is None

    def test_wrong_key_rejected_everywhere(self):
        wire = self._probe()
        error = error_message(
            ICMPv6Type.TIME_EXCEEDED,
            TimeExceededCode.HOP_LIMIT_EXCEEDED,
            wire,
        )
        assert extract_probe(error, b"wrong-key") is None
