"""Unit tests for the probe-backend seam.

The cross-backend contract lives in ``backend_contract.py``; this module
covers the seam's specifics: the deprecated ``wire_format`` alias, the
unmatched-reply accounting (the previously *silent* drop), checkpoint
keys carrying the backend spec, the sharded runner refusing
non-deterministic backends, the CLI validation one-liners, and — when
the environment grants raw sockets — a live ``raw`` loopback scan.
"""

from __future__ import annotations

import pytest

from repro.core.survey import SRASurvey, SurveyConfig
from repro.netsim.engine import SimulationEngine
from repro.scanner.backends import (
    BackendAuthorizationError,
    BackendPrivilegeError,
    RawSocketBackend,
    SimBackend,
    WireSimBackend,
    backend_class,
    build_backend,
    make_backend_spec,
)
from repro.scanner.checkpoint import config_key
from repro.scanner.cli import main as scan_main
from repro.scanner.records import record_jsonl_line
from repro.scanner.sharded import ShardedScanRunner
from repro.scanner.zmapv6 import ScanConfig, ZMapV6Scanner
from repro.telemetry.scan import UNMATCHED_REPLIES_TOTAL, ScanTelemetry

MINI_BUDGETS = dict(
    seed=13,
    slash48_per_prefix=4,
    max_bgp_48=400,
    slash64_per_prefix=4,
    max_bgp_64=300,
    route6_per_prefix=2,
    max_route6=400,
    max_hitlist=400,
)


class TestWireFormatAlias:
    def test_wire_format_maps_to_wire_sim_backend(self):
        config = ScanConfig(wire_format=True)
        assert config.backend == "wire-sim"
        assert config.backend_spec().name == "wire-sim"

    def test_alias_is_idempotent_under_replace(self):
        from dataclasses import replace

        config = ScanConfig(wire_format=True)
        again = replace(config, shard=0, shards=1)
        assert again.backend == "wire-sim"

    def test_alias_conflicts_with_other_backends(self):
        with pytest.raises(ValueError, match="deprecated alias"):
            ScanConfig(wire_format=True, backend="raw")

    def test_explicit_wire_sim_accepts_redundant_flag(self):
        assert ScanConfig(wire_format=True, backend="wire-sim").backend == (
            "wire-sim"
        )


class TestMiniSurveyEquivalence:
    """Table 2 mini-survey: wire-sim output == sim output, byte for byte."""

    def _run(self, world, hitlist, alias_list, backend):
        survey = SRASurvey(
            world,
            hitlist,
            alias_list=alias_list,
            config=SurveyConfig(**MINI_BUDGETS, backend=backend),
        )
        return survey.run()

    def test_wire_sim_survey_matches_sim(
        self, tiny_world, tiny_hitlist, tiny_alias_list
    ):
        sim = self._run(tiny_world, tiny_hitlist, tiny_alias_list, "sim")
        wire = self._run(tiny_world, tiny_hitlist, tiny_alias_list, "wire-sim")
        assert sim.input_sets.keys() == wire.input_sets.keys()
        for name in sim.input_sets:
            left = sim.input_sets[name].result
            right = wire.input_sets[name].result
            assert "".join(map(record_jsonl_line, left.records)) == "".join(
                map(record_jsonl_line, right.records)
            ), name
            assert left.engine_stats == right.engine_stats, name
            assert right.unmatched_replies == 0, name


class TestUnmatchedReplyAccounting:
    """The silent wire-reply drop is now counted end to end."""

    def test_wire_sim_counts_failed_extraction(self, tiny_world, monkeypatch):
        # Forge the receive path failing to authenticate any reply: every
        # matched record disappears AND the loss becomes visible.
        monkeypatch.setattr(
            "repro.scanner.backends.wiresim.extract_probe",
            lambda message, key: None,
        )
        config = ScanConfig(pps=5_000.0, seed=3, backend="wire-sim")
        scanner = ZMapV6Scanner(SimulationEngine(tiny_world, epoch=0), config)
        targets = list(range_targets(tiny_world, 64))
        result = scanner.scan(targets, name="unmatched", epoch=9000)
        assert result.received == 0
        assert result.unmatched_replies > 0
        assert (
            scanner.backend.unmatched_replies == result.unmatched_replies
        )

    def test_unmatched_total_reaches_ops_channel(self, tiny_world, monkeypatch):
        monkeypatch.setattr(
            "repro.scanner.backends.wiresim.extract_probe",
            lambda message, key: None,
        )
        telemetry = ScanTelemetry()
        config = ScanConfig(pps=5_000.0, seed=3, backend="wire-sim")
        scanner = ZMapV6Scanner(
            SimulationEngine(tiny_world, epoch=0), config, telemetry=telemetry
        )
        result = scanner.scan(
            range_targets(tiny_world, 64), name="unmatched", epoch=9001
        )
        assert result.unmatched_replies > 0
        counter = telemetry.ops_registry.get(UNMATCHED_REPLIES_TOTAL)
        assert counter is not None
        assert counter.value == result.unmatched_replies
        kinds = [event["event"] for event in telemetry.ops_events]
        assert "unmatched_replies" in kinds
        assert "backend_selected" in kinds

    def test_healthy_scans_leave_ops_channel_untouched(self, tiny_world):
        """The skip-zero idiom: a sim scan emits no backend ops events."""
        telemetry = ScanTelemetry()
        scanner = ZMapV6Scanner(
            SimulationEngine(tiny_world, epoch=0),
            ScanConfig(pps=5_000.0, seed=3),
            telemetry=telemetry,
        )
        result = scanner.scan(
            range_targets(tiny_world, 64), name="healthy", epoch=9002
        )
        assert result.unmatched_replies == 0
        assert telemetry.ops_events == []
        assert telemetry.ops_registry.get(UNMATCHED_REPLIES_TOTAL) is None


class TestBackendSpecPlumbing:
    def test_config_key_carries_backend_spec(self):
        sim = config_key(ScanConfig())
        wire = config_key(ScanConfig(backend="wire-sim"))
        legacy = config_key(ScanConfig(wire_format=True))
        assert sim != wire
        assert wire == legacy  # the alias resumes wire-sim journals
        other_key = config_key(ScanConfig(backend="wire-sim", key=b"k" * 32))
        assert other_key != wire  # a different probe key is a mismatch

    def test_engine_as_backend(self, tiny_world):
        engine = SimulationEngine(tiny_world, epoch=4)
        backend = engine.as_backend()
        assert isinstance(backend, SimBackend)
        assert backend.engine is engine
        assert backend.epoch == 4

    def test_scanner_accepts_backend_directly(self, tiny_world):
        backend = SimBackend(SimulationEngine(tiny_world, epoch=0))
        scanner = ZMapV6Scanner(backend, ScanConfig(pps=5_000.0, seed=3))
        assert scanner.backend is backend
        assert scanner.engine is backend.engine

    def test_wire_sim_wraps_engine_from_config(self, tiny_world):
        scanner = ZMapV6Scanner(
            SimulationEngine(tiny_world, epoch=0),
            ScanConfig(pps=5_000.0, seed=3, backend="wire-sim"),
        )
        assert isinstance(scanner.backend, WireSimBackend)
        assert scanner.backend.key == scanner.config.key
        assert scanner.engine is scanner.backend.engine

    def test_sharded_runner_refuses_nondeterministic_backends(
        self, tiny_world
    ):
        runner = ShardedScanRunner(tiny_world, shards=2, executor="serial")
        with pytest.raises(ValueError, match="not deterministic"):
            runner.scan(
                range_targets(tiny_world, 8),
                ScanConfig(pps=5_000.0, backend="raw", authorized=True),
                name="refused",
            )


class TestRawBackendValidation:
    """Everything here runs without privileges — and without sockets."""

    def test_requires_explicit_authorization(self):
        with pytest.raises(BackendAuthorizationError):
            RawSocketBackend()
        with pytest.raises(BackendAuthorizationError):
            build_backend(make_backend_spec("raw"))

    def test_spec_round_trip_without_sockets(self):
        backend = RawSocketBackend(authorized=True, pps=500.0, linger=0.5)
        spec = backend.spec()
        rebuilt = build_backend(spec)
        assert isinstance(rebuilt, RawSocketBackend)
        assert rebuilt.pps == 500.0
        assert rebuilt.linger == 0.5
        assert rebuilt.spec() == spec

    def test_capability_flags(self):
        cls = backend_class("raw")
        assert cls.requires_privilege
        assert not cls.deterministic
        assert not cls.supports_columns

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="pps"):
            RawSocketBackend(authorized=True, pps=0.0)
        with pytest.raises(ValueError, match="linger"):
            RawSocketBackend(authorized=True, linger=-1.0)


class TestCliValidation:
    """One-line stderr + exit 2, the repo's CLI validation idiom."""

    def _check(self, argv, capsys, fragment):
        assert scan_main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("sra-scan: ")
        assert fragment in err
        assert len(err.strip().splitlines()) == 1

    def test_unknown_backend(self, capsys):
        self._check(["--backend", "nope"], capsys, "unknown backend")

    def test_raw_without_authorization(self, capsys):
        self._check(["--backend", "raw"], capsys, "--i-am-authorized")

    def test_raw_without_targets_file(self, capsys):
        self._check(
            ["--backend", "raw", "--i-am-authorized"],
            capsys,
            "--targets-file",
        )

    def test_raw_refuses_shards(self, capsys, tmp_path):
        targets = tmp_path / "targets.txt"
        targets.write_text("::1\n")
        self._check(
            [
                "--backend",
                "raw",
                "--i-am-authorized",
                "--targets-file",
                str(targets),
                "--shards",
                "4",
            ],
            capsys,
            "unsharded",
        )

    def test_targets_file_requires_raw(self, capsys, tmp_path):
        targets = tmp_path / "targets.txt"
        targets.write_text("::1\n")
        self._check(
            ["--targets-file", str(targets)], capsys, "--backend raw"
        )

    def test_repro_rejects_raw(self, capsys):
        from repro.experiments.runner import main as repro_main

        assert repro_main(["--backend", "raw", "--list"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("sra-repro: ")
        assert "simulator" in err

    def test_repro_rejects_unknown_backend(self, capsys):
        from repro.experiments.runner import main as repro_main

        assert repro_main(["--backend", "nope", "--list"]) == 2
        assert "unknown backend" in capsys.readouterr().err


def _raw_socket_available() -> bool:
    probe = RawSocketBackend(authorized=True, pps=1_000.0, linger=0.2)
    try:
        probe.open()
    except BackendPrivilegeError:
        return False
    finally:
        probe.close()
    return True


class TestRawLoopback:
    """Live raw-socket tests; skipped wherever CAP_NET_RAW is absent."""

    @pytest.fixture(autouse=True)
    def _require_raw_sockets(self):
        if not _raw_socket_available():
            pytest.skip("raw ICMPv6 sockets unavailable (no CAP_NET_RAW)")

    def test_loopback_echo_matches_probe_ids(self):
        backend = RawSocketBackend(authorized=True, pps=1_000.0, linger=0.3)
        try:
            backend.new_epoch(1)
            loopback = 1  # ::1
            outcomes = backend.send_batch(
                [loopback, loopback],
                [0.0, 0.001],
                probe_ids=[(1 << 32) | 0, (1 << 32) | 1],
            )
            assert len(outcomes) == 2
            for outcome in outcomes:
                assert not outcome.lost
                assert any(reply.is_echo for reply in outcome.replies)
                assert all(
                    reply.source == loopback for reply in outcome.replies
                )
            assert backend.stats.probes == 2
            assert backend.stats.echo_replies >= 2
        finally:
            backend.close()

    def test_cli_raw_loopback_scan(self, tmp_path, capsys):
        targets = tmp_path / "targets.txt"
        targets.write_text("::1\n# a comment\n")
        jsonl = tmp_path / "records.jsonl"
        code = scan_main(
            [
                "--backend",
                "raw",
                "--i-am-authorized",
                "--targets-file",
                str(targets),
                "--pps",
                "200",
                "--jsonl",
                str(jsonl),
                "--summary",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "raw backend" in out
        assert jsonl.exists()
        assert '"source": "::1"' in jsonl.read_text()


def range_targets(world, count: int):
    """``count`` subnet-router anycast targets that actually reply."""
    from repro.scanner.cli import build_targets

    return build_targets(world, "bgp-plain", max_targets=count, seed=5)
