"""Shim for legacy editable installs on offline hosts without `wheel`."""
from setuptools import setup

setup()
