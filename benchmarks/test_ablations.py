"""Ablation benchmarks for the design choices DESIGN.md calls out.

These quantify *why* the method is built the way it is:

* hop limit 64 bounds loop amplification (§6 mitigation advice),
* the alias filter is load-bearing for router counts,
* scan pacing (per-router probe rate) drives error-message loss — the
  rate-limiting mechanism behind the SRA advantage,
* zmap-style permutation spreads probes and reduces per-router bursts.

They run on the quick-scale world to stay fast.
"""

from __future__ import annotations

import random

import pytest

from repro.core.aliasfilter import filter_aliased
from repro.core.probing import run_sra_vs_random
from repro.netsim.engine import SimulationEngine
from repro.scanner.targets import hitlist_slash64_targets
from repro.scanner.zmapv6 import ScanConfig, ZMapV6Scanner


@pytest.fixture(scope="module")
def quick():
    from repro.experiments.world import get_context

    return get_context("quick")


def test_ablation_hoplimit_bounds_amplification(benchmark, quick):
    """Sweep the probe hop limit over looping space: total reply volume
    (amplification mass) must grow monotonically with the hop limit."""
    world = quick.world
    targets = []
    for region in world.loop_regions:
        for index in range(min(8, region.slash48_count())):
            targets.append(region.prefix.network | (index << 80) | 0x1)

    def sweep():
        mass = {}
        for hop_limit in (8, 16, 32, 64, 128):
            engine = SimulationEngine(world, epoch=50 + hop_limit)
            total = 0
            for index, target in enumerate(targets):
                result = engine.probe(
                    target, index / 1000.0, hop_limit=hop_limit, probe_id=index
                )
                total += result.amplification
            mass[hop_limit] = total
        return mass

    mass = benchmark.pedantic(sweep, rounds=1, iterations=1)
    values = [mass[h] for h in (8, 16, 32, 64, 128)]
    assert values == sorted(values)
    assert mass[128] > mass[8]


def test_ablation_alias_filter(benchmark, quick):
    """Router counts with vs without the alias filter: unfiltered scans
    overcount (aliased networks answer on every address)."""
    world = quick.world
    targets = hitlist_slash64_targets(quick.hitlist, max_targets=12_000)

    def run():
        engine = SimulationEngine(world, epoch=60)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=2_000, seed=60))
        raw = scanner.scan(targets, name="alias-ablation", epoch=60)
        filtered, stats = filter_aliased(raw, quick.alias_list)
        return raw, filtered, stats

    raw, filtered, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.dropped > 0
    assert len(filtered.sources()) < len(raw.sources())
    # The filter must not touch legitimate router replies: every kept echo
    # source differs from its probed target.
    for record in filtered.records:
        if record.is_echo:
            assert record.source != record.target


def test_ablation_scan_pacing(benchmark, quick):
    """Error-message loss as a function of sweep rate: scanning the same
    targets faster loses more error replies to RFC 4443 rate limiting
    (Echo replies are unaffected — the SRA mechanism)."""
    world = quick.world
    targets = hitlist_slash64_targets(quick.hitlist, max_targets=8_000)
    rng = random.Random(61)
    from repro.addr.randomgen import random_targets_for_sras

    random_probe_targets = list(
        random_targets_for_sras(list(targets), 64, rng)
    )

    def sweep():
        errors_by_duration = {}
        echoes_by_duration = {}
        for duration in (0.05, 0.5, 5.0, 50.0):
            pps = max(100.0, len(random_probe_targets) / duration)
            engine = SimulationEngine(world, epoch=70)
            scanner = ZMapV6Scanner(engine, ScanConfig(pps=pps, seed=70))
            result = scanner.scan(
                random_probe_targets, name=f"pace-{duration}", epoch=70
            )
            errors_by_duration[duration] = sum(
                1 for r in result.records if r.is_error
            )
            sra_engine = SimulationEngine(world, epoch=70)
            sra_scanner = ZMapV6Scanner(sra_engine, ScanConfig(pps=pps, seed=70))
            sra_result = sra_scanner.scan(
                list(targets), name=f"pace-sra-{duration}", epoch=70
            )
            echoes_by_duration[duration] = sum(
                1 for r in sra_result.records if r.is_echo
            )
        return errors_by_duration, echoes_by_duration

    errors, echoes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Slower sweeps recover more error replies...
    assert errors[50.0] > errors[0.05]
    # ...while the SRA echo count is rate-independent.
    echo_values = list(echoes.values())
    mean_echo = sum(echo_values) / len(echo_values)
    assert all(abs(v - mean_echo) / mean_echo < 0.05 for v in echo_values)


def test_ablation_probe_order(benchmark, quick):
    """Permuted vs sequential probe order: address-ordered probing bursts
    all of a router's subnets together and loses more errors."""
    world = quick.world
    targets = sorted(hitlist_slash64_targets(quick.hitlist, max_targets=10_000))
    rng = random.Random(62)
    from repro.addr.randomgen import random_targets_for_sras

    random_probe_targets = list(random_targets_for_sras(targets, 64, rng))

    def run():
        counts = {}
        for label, permute in (("permuted", True), ("sequential", False)):
            engine = SimulationEngine(world, epoch=80)
            scanner = ZMapV6Scanner(
                engine,
                ScanConfig(pps=5_000, seed=80, permute=permute),
            )
            result = scanner.scan(
                random_probe_targets, name=f"order-{label}", epoch=80
            )
            counts[label] = sum(1 for r in result.records if r.is_error)
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts["permuted"] >= counts["sequential"]


def test_ablation_sra_advantage_is_rate_limiting(benchmark, quick):
    """With pacing slow enough that buckets never empty, the SRA vs random
    gap shrinks towards the silent-router floor — demonstrating that rate
    limiting (not magic) is the mechanism."""
    world = quick.world
    targets = hitlist_slash64_targets(quick.hitlist, max_targets=5_000)

    def run():
        fast = run_sra_vs_random(
            world, list(targets), epochs=1, scan_duration=0.05, seed=90
        )
        slow = run_sra_vs_random(
            world, list(targets), epochs=1, scan_duration=60.0, seed=90
        )
        return (
            fast.advantage_per_epoch()[0],
            slow.advantage_per_epoch()[0],
        )

    fast_advantage, slow_advantage = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert fast_advantage > slow_advantage
