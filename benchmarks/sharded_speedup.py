"""Wall-clock speedup of sharded parallel scanning.

Runs the survey's heaviest input sets serially and sharded (process pool)
on the same world and verifies the results are identical while timing
both.  On a multi-core machine the sharded run should finish in a
fraction of the serial wall-clock; on one core it documents the overhead.

    PYTHONPATH=src python benchmarks/sharded_speedup.py
    PYTHONPATH=src python benchmarks/sharded_speedup.py --shards 8 --scale full
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.core.survey import SRASurvey
from repro.datasets.tum import harvest_hitlist, published_alias_list
from repro.experiments.world import SCALES
from repro.scanner.sharded import ShardedScanRunner, auto_shard_count
from repro.scanner.pacing import paced_pps
from repro.scanner.zmapv6 import ScanConfig
from repro.topology.generator import build_world


def time_scan(runner, targets, config, *, epoch):
    started = time.perf_counter()
    result = runner.scan(targets, config, name="bench", epoch=epoch)
    return result, time.perf_counter() - started


def bench_input_sets(world, hitlist, alias_list, scale, shards, executor):
    survey = SRASurvey(
        world, hitlist, alias_list=alias_list, config=scale.survey_config
    )
    serial_runner = ShardedScanRunner(world, shards=1)
    sharded_runner = ShardedScanRunner(world, shards=shards, executor=executor)
    config = scale.survey_config
    print(f"{'input set':<12} {'targets':>9} {'serial':>8} {'sharded':>8} {'speedup':>8}")
    totals = [0.0, 0.0]
    for name, targets in survey.build_input_sets().items():
        target_list = list(targets)
        pps = paced_pps(len(target_list), config.scan_duration, config.pps)
        scan_config = ScanConfig(
            pps=pps, hop_limit=config.hop_limit, seed=config.seed
        )
        serial, serial_s = time_scan(serial_runner, target_list, scan_config, epoch=0)
        sharded, sharded_s = time_scan(sharded_runner, target_list, scan_config, epoch=0)
        if sharded.records != serial.records:
            print(f"!! {name}: sharded result differs from serial", file=sys.stderr)
            return 1
        totals[0] += serial_s
        totals[1] += sharded_s
        speedup = serial_s / sharded_s if sharded_s else float("inf")
        print(
            f"{name:<12} {len(target_list):>9} {serial_s:>7.2f}s {sharded_s:>7.2f}s "
            f"{speedup:>7.2f}x"
        )
    speedup = totals[0] / totals[1] if totals[1] else float("inf")
    print(
        f"{'total':<12} {'':>9} {totals[0]:>7.2f}s {totals[1]:>7.2f}s {speedup:>7.2f}x"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--shards", type=int, default=None, help="default: one per core"
    )
    parser.add_argument(
        "--executor",
        choices=("auto", "process", "thread", "serial"),
        default="process",
    )
    args = parser.parse_args(argv)

    shards = args.shards or auto_shard_count()
    cores = os.cpu_count() or 1
    print(f"cores={cores} shards={shards} executor={args.executor} scale={args.scale}")
    if cores < 2:
        print("note: <2 cores — expect overhead, not speedup, from processes")

    scale = SCALES[args.scale](args.seed)
    print("building world ...")
    world = build_world(scale.world_config)
    hitlist = harvest_hitlist(world, stale_fraction=scale.hitlist_stale_fraction)
    alias_list = published_alias_list(world)
    return bench_input_sets(world, hitlist, alias_list, scale, shards, args.executor)


if __name__ == "__main__":
    sys.exit(main())
