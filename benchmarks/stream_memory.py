"""Peak-RSS benchmark: streaming scan pipeline vs materialised lists.

The streaming refactor's claim is that target memory no longer scales
with scan size: a computable :class:`SubnetPartitionStream` plus a
:class:`CountingSink` runs a scan in O(1) extra memory, where the list
path holds every target (and buffers every record) at once.  This
harness measures both paths' peak RSS across target counts and records
the trajectory future PRs must defend.

Because ``ru_maxrss``/``VmHWM`` are lifetime-monotonic *per process*,
each configuration is measured in a fresh subprocess; the parent only
orchestrates.  Three modes per target count:

* **baseline** — world + scanner machinery warm-up (1 024 targets), so
  import/allocator overhead is not charged to either path,
* **list**     — targets materialised as ``list[int]``, records buffered
  on the ``ScanResult``,
* **stream**   — :class:`SubnetPartitionStream` targets, records to a
  :class:`CountingSink`; nothing is ever buffered.

The gate (CI smoke-perf, and this PR's acceptance criterion): the
stream path's peak RSS *above baseline* stays within ``--max-ratio``
(default 10 %) of the list path's extra RSS, plus an absolute
``--slack`` floor for allocator noise at small counts.

    PYTHONPATH=src python benchmarks/stream_memory.py
    PYTHONPATH=src python benchmarks/stream_memory.py --targets 200000 \
        --check benchmarks/results/BENCH_memory.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from collections.abc import Sequence
from pathlib import Path

DEFAULT_RESULTS = Path(__file__).parent / "results" / "BENCH_memory.json"
DEFAULT_COUNTS = (10_000, 100_000, 1_000_000)
DEFAULT_RATIO = 0.10
DEFAULT_SLACK_MIB = 8.0
BASELINE_TARGETS = 1_024

# A /32 has 2^32 /64 subnets: enough headroom for any target count here.
_BENCH_PREFIX = "2001:db8::/32"


def peak_rss_mib() -> float:
    """Lifetime peak resident set size of this process, in MiB."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


# --------------------------------------------------------------------- #
# child: one measurement per process
# --------------------------------------------------------------------- #


def measure(mode: str, count: int, seed: int) -> dict:
    from repro.addr.ipv6 import IPv6Prefix
    from repro.netsim.engine import SimulationEngine
    from repro.scanner.stream import CountingSink, SubnetPartitionStream
    from repro.scanner.zmapv6 import ScanConfig, ZMapV6Scanner
    from repro.topology.config import tiny_config
    from repro.topology.generator import build_world

    world = build_world(tiny_config(seed=seed))
    stream = SubnetPartitionStream(IPv6Prefix.parse(_BENCH_PREFIX), 64)
    if mode == "baseline":
        count = BASELINE_TARGETS
    targets = stream[:count] if mode == "list" else _window(stream, count)
    engine = SimulationEngine(world, epoch=0)
    scanner = ZMapV6Scanner(
        engine, ScanConfig(pps=200_000.0, seed=seed, batch_size=1024)
    )
    sink = None if mode == "list" else CountingSink()
    result = scanner.scan(targets, name=f"mem-{mode}", sink=sink)
    return {
        "mode": mode,
        "targets": count,
        "received": result.received,
        "peak_mib": round(peak_rss_mib(), 2),
    }


def _window(stream, count: int):
    """The first ``count`` targets of a stream, still computed on demand."""
    if count >= len(stream):
        return stream
    return _Window(stream, count)


class _Window(Sequence):
    """A length-limited view of a stream (keeps O(1) memory)."""

    def __init__(self, stream, count: int) -> None:
        self._stream = stream
        self._count = count
        self.name = stream.name
        self.subnet_length = stream.subnet_length

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        return self._stream[index]

    def __iter__(self):
        return (self._stream[i] for i in range(self._count))


# --------------------------------------------------------------------- #
# parent: orchestration, reporting, regression gate
# --------------------------------------------------------------------- #


def _measure_in_subprocess(mode: str, count: int, seed: int) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    output = subprocess.run(
        [
            sys.executable,
            __file__,
            "--measure",
            mode,
            "--targets",
            str(count),
            "--seed",
            str(seed),
        ],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    )
    return json.loads(output.stdout.strip().splitlines()[-1])


def run_benchmark(counts: list[int], seed: int) -> dict:
    report: dict = {
        "meta": {
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "prefix": _BENCH_PREFIX,
        },
        "runs": [],
    }
    baseline = _measure_in_subprocess("baseline", BASELINE_TARGETS, seed)
    report["baseline_mib"] = baseline["peak_mib"]
    print(f"baseline       {BASELINE_TARGETS:>9} targets  {baseline['peak_mib']:>8.1f} MiB peak")
    for count in counts:
        row: dict = {"targets": count}
        for mode in ("list", "stream"):
            stats = _measure_in_subprocess(mode, count, seed)
            extra = max(0.0, stats["peak_mib"] - baseline["peak_mib"])
            row[mode] = {
                "peak_mib": stats["peak_mib"],
                "extra_mib": round(extra, 2),
                "received": stats["received"],
            }
            print(
                f"{mode:<8} {count:>15,} targets  {stats['peak_mib']:>8.1f} MiB peak"
                f"  (+{extra:>7.1f} MiB over baseline)"
            )
        report["runs"].append(row)
    return report


def check_invariant(report: dict, max_ratio: float, slack_mib: float) -> list[str]:
    """The streaming-memory guarantee, per target count."""
    failures = []
    for row in report["runs"]:
        list_extra = row["list"]["extra_mib"]
        stream_extra = row["stream"]["extra_mib"]
        ceiling = max_ratio * list_extra + slack_mib
        verdict = "ok" if stream_extra <= ceiling else "EXCEEDED"
        print(
            f"check {row['targets']:>12,}: stream +{stream_extra:.1f} MiB vs "
            f"ceiling {ceiling:.1f} MiB ({max_ratio:.0%} of list "
            f"+{list_extra:.1f} MiB, slack {slack_mib:.0f}) {verdict}"
        )
        if stream_extra > ceiling:
            failures.append(
                f"{row['targets']} targets: stream extra {stream_extra:.1f} MiB "
                f"> {ceiling:.1f} MiB"
            )
    return failures


def compare_baseline(report: dict, baseline_path: Path) -> None:
    """Informational trajectory vs the committed baseline file."""
    baseline = json.loads(baseline_path.read_text())
    committed = {row["targets"]: row for row in baseline.get("runs", [])}
    for row in report["runs"]:
        reference = committed.get(row["targets"])
        if reference is None:
            continue
        print(
            f"vs committed {row['targets']:>12,}: stream "
            f"+{row['stream']['extra_mib']:.1f} MiB now, "
            f"+{reference['stream']['extra_mib']:.1f} MiB at baseline"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--measure",
        choices=("baseline", "list", "stream"),
        default=None,
        help=argparse.SUPPRESS,  # internal: child-process mode
    )
    parser.add_argument(
        "--targets",
        type=int,
        default=None,
        help="single target count (default: 10k/100k/1M sweep)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--max-ratio", type=float, default=DEFAULT_RATIO)
    parser.add_argument("--slack", type=float, default=DEFAULT_SLACK_MIB)
    parser.add_argument("--output", type=Path, default=DEFAULT_RESULTS)
    parser.add_argument(
        "--no-write", action="store_true", help="measure only, keep baseline file"
    )
    parser.add_argument(
        "--check",
        nargs="?",
        type=Path,
        const=DEFAULT_RESULTS,
        default=None,
        help="verify the streaming-memory invariant (and report against "
        "this committed baseline); exit 1 on breach",
    )
    args = parser.parse_args(argv)

    if args.measure is not None:
        stats = measure(args.measure, args.targets or BASELINE_TARGETS, args.seed)
        print(json.dumps(stats))
        return 0

    counts = [args.targets] if args.targets else list(DEFAULT_COUNTS)
    report = run_benchmark(counts, args.seed)
    write = not args.no_write and (
        args.check is None or args.output != DEFAULT_RESULTS
    )
    if write:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    failures = check_invariant(report, args.max_ratio, args.slack)
    if args.check is not None and args.check.exists():
        compare_baseline(report, args.check)
    if failures:
        print("streaming-memory invariant violated:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
