"""World-scale benchmark: streamed artifact builds vs eager object graphs.

The artifact refactor's claim is that world *generation* memory no longer
scales with router count: ``build_world_artifact`` streams periphery
routers and subnets to disk as each AS is populated, so peak RSS is
bounded by the pinned core (border routers, BGP table, AS paths — all
O(AS count)) while the eager ``build_world`` path holds every router and
subnet at once.  A second claim rides along: shard workers of an
artifact-backed world bootstrap from a pickled :class:`WorldRef` (a path
plus a fingerprint, O(KB)) instead of a pickled world (O(world)).

Because ``ru_maxrss``/``VmHWM`` are lifetime-monotonic *per process*,
each (mode, scale) cell is measured in a fresh subprocess; the parent
only orchestrates.  Scales are AS counts under a router-dense config
(~31 routers per AS), so the default sweep tops out above the 100k-router
paper magnitude:

    PYTHONPATH=src python benchmarks/world_scale.py
    PYTHONPATH=src python benchmarks/world_scale.py --ases 200 \
        --check benchmarks/results/BENCH_world.json

Gates (CI smoke-perf runs the small scale only):

* **flat generation RSS** — the streamed build's peak stays under
  ``--max-stream-fraction`` of the eager build's peak at the same scale
  (plus a ``--slack`` floor for allocator noise at small scales),
* **O(KB) bootstrap** — the pickled ``WorldRef`` stays under 4 KiB,
* **no regression** — with ``--check``, build time and peak RSS at
  scales present in the committed baseline must stay within
  ``--max-time-ratio`` / ``--max-rss-ratio`` of the recorded values.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

DEFAULT_RESULTS = Path(__file__).parent / "results" / "BENCH_world.json"
DEFAULT_ASES = (200, 1000, 3400)  # 3400 ASes ≈ 107k routers
DEFAULT_STREAM_FRACTION = 0.75
DEFAULT_SLACK_MIB = 32.0
DEFAULT_TIME_RATIO = 2.0
DEFAULT_RSS_RATIO = 1.5
BOOTSTRAP_CEILING_BYTES = 4096


def peak_rss_mib() -> float:
    """Lifetime peak resident set size of this process, in MiB."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def bench_config(ases: int, seed: int):
    """A router-dense world config: ~31 routers per AS.

    The stock config aggregates many subnets onto BNG-style routers;
    turning the aggregation tail off shifts the same subnet count onto
    many more routers, which is the dimension this benchmark scales.
    """
    from repro.topology.config import WorldConfig

    return WorldConfig(
        seed=seed,
        num_ases=ases,
        num_tier1=10,
        num_tier2=110,
        subnets_per_router_tail=0.0,
        max_subnets_per_router=4,
        single_router_as_fraction=0.0,
    )


# --------------------------------------------------------------------- #
# child: one measurement per process
# --------------------------------------------------------------------- #


def measure(mode: str, ases: int, seed: int) -> dict:
    import pickle

    from repro.topology.artifact import world_payload
    from repro.topology.generator import build_world, build_world_artifact

    config = bench_config(ases, seed)
    stats: dict = {"mode": mode, "ases": ases}
    start = time.perf_counter()
    if mode == "eager":
        world = build_world(config)
        stats["build_seconds"] = round(time.perf_counter() - start, 3)
        stats["bootstrap_bytes"] = len(pickle.dumps(world))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "bench.sraw"
            world = build_world_artifact(config, path)
            stats["build_seconds"] = round(time.perf_counter() - start, 3)
            stats["artifact_bytes"] = path.stat().st_size
            stats["bootstrap_bytes"] = len(pickle.dumps(world_payload(world)))
    stats["routers"] = len(world.routers)
    stats["subnets"] = len(world.subnets)
    stats["peak_mib"] = round(peak_rss_mib(), 2)
    return stats


# --------------------------------------------------------------------- #
# parent: orchestration, reporting, regression gate
# --------------------------------------------------------------------- #


def _measure_in_subprocess(mode: str, ases: int, seed: int) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    output = subprocess.run(
        [
            sys.executable,
            __file__,
            "--measure",
            mode,
            "--ases",
            str(ases),
            "--seed",
            str(seed),
        ],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    )
    return json.loads(output.stdout.strip().splitlines()[-1])


def run_benchmark(as_counts: list[int], seed: int) -> dict:
    report: dict = {
        "meta": {
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "runs": [],
    }
    for ases in as_counts:
        row: dict = {"ases": ases}
        for mode in ("eager", "stream"):
            stats = _measure_in_subprocess(mode, ases, seed)
            row[mode] = {
                key: stats[key]
                for key in (
                    "build_seconds",
                    "peak_mib",
                    "bootstrap_bytes",
                    "routers",
                    "subnets",
                    "artifact_bytes",
                )
                if key in stats
            }
            extra = (
                f"  artifact {stats['artifact_bytes'] / 2**20:>7.1f} MiB"
                if "artifact_bytes" in stats
                else ""
            )
            print(
                f"{mode:<7} {ases:>6} ASes  {stats['routers']:>9,} routers"
                f"  {stats['build_seconds']:>7.2f}s"
                f"  {stats['peak_mib']:>8.1f} MiB peak"
                f"  bootstrap {stats['bootstrap_bytes']:>12,} B{extra}"
            )
        report["runs"].append(row)
    return report


def check_invariant(
    report: dict, stream_fraction: float, slack_mib: float
) -> list[str]:
    """Flat-RSS and O(KB)-bootstrap guarantees, per scale."""
    failures = []
    for row in report["runs"]:
        eager_peak = row["eager"]["peak_mib"]
        stream_peak = row["stream"]["peak_mib"]
        ceiling = stream_fraction * eager_peak + slack_mib
        verdict = "ok" if stream_peak <= ceiling else "EXCEEDED"
        print(
            f"check {row['ases']:>6} ASes: stream {stream_peak:.1f} MiB vs "
            f"ceiling {ceiling:.1f} MiB ({stream_fraction:.0%} of eager "
            f"{eager_peak:.1f} MiB, slack {slack_mib:.0f}) {verdict}"
        )
        if stream_peak > ceiling:
            failures.append(
                f"{row['ases']} ASes: stream peak {stream_peak:.1f} MiB "
                f"> {ceiling:.1f} MiB"
            )
        ref_bytes = row["stream"]["bootstrap_bytes"]
        if ref_bytes > BOOTSTRAP_CEILING_BYTES:
            failures.append(
                f"{row['ases']} ASes: WorldRef bootstrap {ref_bytes} B "
                f"> {BOOTSTRAP_CEILING_BYTES} B"
            )
    return failures


def compare_baseline(
    report: dict, baseline_path: Path, time_ratio: float, rss_ratio: float
) -> list[str]:
    """Regression gate against the committed baseline at matching scales.

    Build time gets a generous ratio (CI machines vary); peak RSS is a
    property of the code, so its ratio is tighter.
    """
    baseline = json.loads(baseline_path.read_text())
    committed = {row["ases"]: row for row in baseline.get("runs", [])}
    failures = []
    for row in report["runs"]:
        reference = committed.get(row["ases"])
        if reference is None:
            continue
        for mode in ("eager", "stream"):
            now = row[mode]
            then = reference[mode]
            time_ceiling = then["build_seconds"] * time_ratio
            rss_ceiling = then["peak_mib"] * rss_ratio
            print(
                f"vs committed {row['ases']:>6} ASes [{mode}]: "
                f"{now['build_seconds']:.2f}s vs {time_ceiling:.2f}s ceiling, "
                f"{now['peak_mib']:.1f} MiB vs {rss_ceiling:.1f} MiB ceiling"
            )
            if now["build_seconds"] > time_ceiling:
                failures.append(
                    f"{row['ases']} ASes {mode}: build {now['build_seconds']:.2f}s "
                    f"> {time_ceiling:.2f}s ({time_ratio:.1f}x committed)"
                )
            if now["peak_mib"] > rss_ceiling:
                failures.append(
                    f"{row['ases']} ASes {mode}: peak {now['peak_mib']:.1f} MiB "
                    f"> {rss_ceiling:.1f} MiB ({rss_ratio:.1f}x committed)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--measure",
        choices=("eager", "stream"),
        default=None,
        help=argparse.SUPPRESS,  # internal: child-process mode
    )
    parser.add_argument(
        "--ases",
        type=int,
        nargs="+",
        default=None,
        help="AS counts to sweep (default: 200/1000/3400; 3400 ≈ 107k routers)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--max-stream-fraction", type=float, default=DEFAULT_STREAM_FRACTION
    )
    parser.add_argument("--slack", type=float, default=DEFAULT_SLACK_MIB)
    parser.add_argument("--max-time-ratio", type=float, default=DEFAULT_TIME_RATIO)
    parser.add_argument("--max-rss-ratio", type=float, default=DEFAULT_RSS_RATIO)
    parser.add_argument("--output", type=Path, default=DEFAULT_RESULTS)
    parser.add_argument(
        "--no-write", action="store_true", help="measure only, keep baseline file"
    )
    parser.add_argument(
        "--check",
        nargs="?",
        type=Path,
        const=DEFAULT_RESULTS,
        default=None,
        help="verify the flat-RSS/O(KB)-bootstrap invariants and gate "
        "build time + peak RSS against this committed baseline; exit 1 "
        "on breach",
    )
    args = parser.parse_args(argv)

    if args.measure is not None:
        if not args.ases or len(args.ases) != 1:
            parser.error("--measure needs exactly one --ases value")
        stats = measure(args.measure, args.ases[0], args.seed)
        print(json.dumps(stats))
        return 0

    as_counts = list(args.ases) if args.ases else list(DEFAULT_ASES)
    report = run_benchmark(as_counts, args.seed)
    write = not args.no_write and (
        args.check is None or args.output != DEFAULT_RESULTS
    )
    if write:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    failures = check_invariant(report, args.max_stream_fraction, args.slack)
    if args.check is not None and args.check.exists():
        failures += compare_baseline(
            report, args.check, args.max_time_ratio, args.max_rss_ratio
        )
    if failures:
        print("world-scale invariant violated:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
