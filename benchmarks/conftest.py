"""Benchmark fixtures: the full-scale experiment context, built once.

Each benchmark regenerates one paper table/figure and writes its rendered
text to ``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can be checked
against fresh output.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    """The full-scale context (600-AS world, paper-shaped budgets)."""
    from repro.experiments.world import get_context

    return get_context("full")


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_report(results_dir):
    def _save(report):
        path = results_dir / f"{report.experiment_id}.txt"
        path.write_text(str(report) + "\n", encoding="utf-8")
        return report

    return _save
