"""Benchmarks regenerating the paper's Figures 3–10 at full scale."""

from __future__ import annotations

from repro.experiments.runner import run_experiment


def _regenerate(benchmark, ctx, experiment_id):
    return benchmark.pedantic(
        run_experiment, args=(experiment_id, ctx), rounds=1, iterations=1
    )


def test_fig3_country_distribution(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "fig3")
    save_report(report)
    # Asia-heavy skew: India and China in the global top 4 (paper: 27/20 %).
    top4 = [country for country, _ in report.data["shares"][:4]]
    assert "IND" in top4 and "CHN" in top4
    assert report.data["countries"] >= 20


def test_fig4_response_classes(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "fig4")
    save_report(report)
    shares = report.data["shares"]
    # Echo-share ordering: hitlist > plain BGP > the artificial partitions.
    assert shares["hitlist-64"]["echo"] > shares["bgp-plain"]["echo"] * 0.9
    for name in ("bgp-48", "bgp-64", "route6-64"):
        assert shares[name]["error"] > 0.75
        assert shares[name]["echo"] < shares["hitlist-64"]["echo"]


def test_fig5_sra_vs_random(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "fig5")
    save_report(report)
    advantages = report.data["advantages"]
    mean_advantage = sum(advantages) / len(advantages)
    # Paper: ~10 % more router IPs with SRA probing, every scan.
    assert 0.02 < mean_advantage < 0.6
    assert all(a > 0 for a in advantages)
    assert report.data["sra_exclusive"] > 0
    # Echo populations stay stable across scans (no rate limiting).
    echo = [row["sra_echo_routers"] for row in report.data["per_epoch"]]
    mean_echo = sum(echo) / len(echo)
    assert all(abs(count - mean_echo) / mean_echo < 0.25 for count in echo)


def test_fig6_visibility_and_stability(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "fig6")
    save_report(report)
    visibility = report.data["visibility"]
    # Paper: >70 % of SRA-discovered routers never answer direct probes.
    assert visibility["never"] > 0.6
    assert visibility["always"] < 0.4
    stability = report.data["stability"]
    # Paper: >=66 % same router on re-probing, <=7 % changed.
    assert stability[-1]["same"] >= 0.6
    assert stability[-1]["changed"] <= 0.08


def test_fig7_as_overlap(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "fig7")
    save_report(report)
    # Paper: >99 % of SRA ASes appear in at least one other source.
    assert report.data["sra_as_coverage"] > 0.95


def test_fig8_loops_and_amplification(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "fig8")
    save_report(report)
    data = report.data
    assert data["looping_slash48s"] > 100
    assert data["looping_routers"] > 10
    # The majority of looping routers loop few subnets; a heavy tail loops
    # orders of magnitude more (Fig. 8b).
    assert max(v for v, _ in data["loops_per_router_ccdf"]) >= 8
    # Amplification exists, and extreme factors are rare (Fig. 8a).
    if data["amplifying_routers"]:
        amp = data["amplification_ccdf"]
        assert amp[0][1] == 1.0
        assert amp[-1][1] <= 0.5 or len(amp) == 1


def test_fig10_network_types(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "fig10")
    save_report(report)
    per_source = report.data["per_source_type_shares"]
    # Paper: SRA router IPs overwhelmingly in ISP networks (>80 %).
    assert per_source["sra"]["isp"] > 0.6
    assert per_source["ixp-flows"]["isp"] > 0.4
