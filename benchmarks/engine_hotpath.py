"""Probe hot-path benchmark: probes/sec per destination behaviour class.

The simulator's wall-clock is dominated by ``SimulationEngine``'s per-probe
cost, so this harness times the four workloads that exercise its distinct
code paths and records a trajectory future PRs must defend:

* **routed-subnet** — SRA addresses of active subnets (the paper's money
  path: BGP LPM + resolution LPM + SRA behaviour draw),
* **unrouted**     — destinations with no BGP route (upstream "no route"
  errors through the vantage's rate limiter),
* **loop**         — destinations inside routing-loop regions (ping-pong
  amplification arithmetic),
* **rate-limited** — unassigned addresses inside active subnets hammered
  fast enough that every reply fights the RFC 4443 token bucket.

Results go to ``benchmarks/results/BENCH_engine.json``; ``--check`` mode
compares a fresh run against a committed baseline and fails on >30 %
probes/sec regression, **any byte difference** in the records JSONL,
Prometheus text, or telemetry JSONL between batch sizes 1/1024 and
1/4-way sharding (the CI smoke-perf gate on the columnar hot path), or
>5 % probes/sec overhead from the ``ProbeBackend`` seam versus an
inline direct-engine loop on the routed workload.
Every report also carries the shared-memory ring transport counters from
one process-pool scan, uploaded by CI as an artifact.

    PYTHONPATH=src python benchmarks/engine_hotpath.py
    PYTHONPATH=src python benchmarks/engine_hotpath.py --probes 5000 \
        --check benchmarks/results/BENCH_engine.json --tolerance 0.5
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

from repro.addr.ipv6 import IPv6Prefix
from repro.netsim.engine import SimulationEngine
from repro.scanner.zmapv6 import ScanConfig, ZMapV6Scanner
from repro.topology.config import tiny_config
from repro.topology.entities import World
from repro.topology.generator import build_world

DEFAULT_RESULTS = Path(__file__).parent / "results" / "BENCH_engine.json"
DEFAULT_PROBES = 60_000
DEFAULT_TOLERANCE = 0.30
# The backend seam (ProbeBackend between scanner and engine) must stay
# within this fraction of a seamless direct-engine loop on the routed
# sim path — the refactor's "zero-cost abstraction" budget.
SEAM_TOLERANCE = 0.05

# A ULA block: never announced by the generator, so always unrouted.
_UNROUTED_BASE = IPv6Prefix.parse("fd00::/8").network


def _cycle_to(pool: list[int], count: int) -> list[int]:
    """Repeat ``pool`` until ``count`` targets (probes are stateless per
    target; only the rate limiter carries state across repeats)."""
    if not pool:
        raise SystemExit("workload pool is empty; world too small")
    out: list[int] = []
    while len(out) < count:
        out.extend(pool[: count - len(out)])
    return out


def build_workloads(world: World, probes: int) -> dict[str, tuple[list[int], float]]:
    """Target lists plus the pps each workload is paced at."""
    subnets = list(world.subnets.values())
    routed = [subnet.sra_address for subnet in subnets]

    unrouted = [
        _UNROUTED_BASE | (index << 64) for index in range(min(probes, 200_000))
    ]
    unrouted = [a for a in unrouted if world.bgp.origin_of(a) is None]

    loop = []
    for region in world.loop_regions:
        base = region.prefix.first
        for index in range(64):
            loop.append(base | (index << 16) | 1)

    # Unassigned addresses inside live subnets: every probe draws an
    # Address Unreachable that must pass the emitting router's bucket.
    limited = [subnet.prefix.first | 0xFFF7 for subnet in subnets]

    return {
        "routed": (_cycle_to(routed, probes), 200_000.0),
        "unrouted": (_cycle_to(unrouted, probes), 200_000.0),
        "loop": (_cycle_to(loop, probes), 200_000.0),
        # Paced 25x faster so bucket pressure stays high all scan long.
        "rate_limited": (_cycle_to(limited, probes), 5_000_000.0),
    }


def time_workload(
    world: World, targets: list[int], pps: float, *, repeats: int
) -> dict[str, float]:
    """Best-of-N scan timing on a fresh engine per run (buckets are state).

    The collector is paused around each timed scan: a buffered scan
    allocates one record per reply, and letting generational GC walk
    those mid-run adds double-digit-percent noise on small machines.
    """
    best = float("inf")
    received = 0
    for _ in range(repeats):
        engine = SimulationEngine(world, epoch=0)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=pps, seed=3))
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            result = scanner.scan(targets, name="bench")
            elapsed = time.perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
        gc.collect()
        best = min(best, elapsed)
        received = result.received
    return {
        "targets": len(targets),
        "received": received,
        "seconds": round(best, 6),
        "pps": round(len(targets) / best, 1),
    }


def _inline_engine_scan(
    world: World, targets: list[int], pps: float
) -> list:
    """The pre-seam hot loop: scanner logic driving the engine directly.

    A faithful replica of the scanner's batched path — same permutation,
    pacing, columnar kernel, and record construction — with the
    ``ProbeBackend`` indirection removed.  This is the seamless baseline
    the seam measurement compares against; telemetry off on both sides,
    exactly like the timed workloads.
    """
    from itertools import islice

    from repro.netsim.engine import FLAG_REPLY, ProbeColumns
    from repro.scanner.records import ScanRecord
    from repro.scanner.stream import IndexWindow, shard_positions

    engine = SimulationEngine(world, epoch=0)
    probe_columns = engine.probe_columns
    need_ids = engine.world.packet_loss > 0.0
    epoch_bits = engine.epoch << 32
    records: list = []
    append_record = records.append
    cols = ProbeColumns()
    batch = 1024
    positions = shard_positions(
        len(targets),
        seed=3,
        epoch=engine.epoch,
        window=IndexWindow(0, 1),
        permute=True,
    )
    while True:
        chunk = list(islice(positions, batch))
        if not chunk:
            break
        batch_targets = [targets[index] for _, index in chunk]
        batch_times = [position / pps for position, _ in chunk]
        batch_ids = (
            [epoch_bits | index for _, index in chunk] if need_ids else None
        )
        probe_columns(
            batch_targets,
            batch_times,
            hop_limit=64,
            probe_ids=batch_ids,
            out=cols,
        )
        flags = cols.flags
        source_hi = cols.source_hi
        source_lo = cols.source_lo
        icmp_col = cols.icmp_type
        code_col = cols.code
        count_col = cols.count
        for offset in range(len(chunk)):
            f = flags[offset]
            if not f:
                continue
            if f & FLAG_REPLY:
                append_record(
                    ScanRecord(
                        target=batch_targets[offset],
                        source=(source_hi[offset] << 64) | source_lo[offset],
                        icmp_type=icmp_col[offset],
                        code=code_col[offset],
                        count=count_col[offset],
                        time=batch_times[offset],
                    )
                )
    return records


def measure_seam(
    world: World, workloads: dict, *, repeats: int
) -> dict[str, float]:
    """Seam overhead on the routed sim path: scanner vs inline loop.

    The two loops do identical work, so the true seam cost is a fixed
    multiplicative factor — and scheduler noise only ever *adds* time,
    so the best-of-N minimum is a consistent estimator of each
    variant's true cost.  Two defences against bursty shared-runner
    noise: the seam scan is stretched to at least 60 k probes (long
    enough that sub-100 ms steal bursts cannot swallow a whole run),
    and the repeat floor gives each variant at least 8 interleaved
    tries to land one quiet run.  The order within each interleaved
    pair alternates per repeat (allocator and cache state favour
    whichever loop runs second).
    """
    targets, pps = workloads["routed"]
    targets = _cycle_to(targets, max(len(targets), 60_000))

    def run_inline() -> int:
        return len(_inline_engine_scan(world, targets, pps))

    def run_scanner() -> int:
        engine = SimulationEngine(world, epoch=0)
        scanner = ZMapV6Scanner(engine, ScanConfig(pps=pps, seed=3))
        return len(scanner.scan(targets, name="bench-seam").records)

    variants = {"inline": run_inline, "scanner": run_scanner}
    best = {"inline": float("inf"), "scanner": float("inf")}
    records = {"inline": 0, "scanner": 0}
    for index in range(max(repeats, 8)):
        order = ("inline", "scanner") if index % 2 == 0 else ("scanner", "inline")
        for name in order:
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                started = time.perf_counter()
                records[name] = variants[name]()
                elapsed = time.perf_counter() - started
            finally:
                if gc_was_enabled:
                    gc.enable()
            best[name] = min(best[name], elapsed)
            gc.collect()
        # Both variants must do the same work, or the timing is a lie.
        if records["inline"] != records["scanner"]:
            raise SystemExit(
                "seam benchmark divergence: inline loop and scanner "
                f"produced {records['inline']} vs {records['scanner']} "
                "records"
            )
    return {
        "inline_pps": round(len(targets) / best["inline"], 1),
        "scanner_pps": round(len(targets) / best["scanner"], 1),
        "overhead": round(1.0 - best["inline"] / best["scanner"], 4),
    }


def measure_ring(world: World, workloads: dict) -> dict:
    """One process-pool scan through the shared-memory ring.

    The transport counters land in the report so the CI artifact shows,
    per run, how many frames/bytes crossed the shard channel and whether
    anything silently fell back to pickling.
    """
    from repro.scanner.sharded import ShardedScanRunner

    targets = workloads["routed"][0][:4_000]
    runner = ShardedScanRunner(world, shards=2, executor="process")
    runner.scan(
        targets, ScanConfig(pps=200_000.0, seed=3), name="bench-ring"
    )
    return runner.ring_stats.as_dict()


def verify_byte_identity(world: World, workloads: dict) -> list[str]:
    """The columnar path's correctness gate: every byte of output.

    Runs one mixed workload (routed + loop + rate-limited) through the
    serial scanner at batch sizes 1 and 1024 and through a 4-way sharded
    runner, comparing the records JSONL, the telemetry JSONL and the
    Prometheus text.  Batch size must change nothing; sharding must
    change nothing in records and Prometheus (the telemetry event stream
    legitimately reports its own shard count).  Returns human-readable
    failure strings, empty when identical.
    """
    import tempfile

    from repro.scanner.sharded import ShardedScanRunner
    from repro.telemetry import ScanTelemetry

    targets: list[int] = []
    for name in ("routed", "loop", "rate_limited"):
        targets.extend(workloads[name][0][:1_500])

    def serial(batch_size):
        telemetry = ScanTelemetry()
        engine = SimulationEngine(world, epoch=0)
        scanner = ZMapV6Scanner(
            engine,
            ScanConfig(
                pps=200_000.0,
                seed=3,
                batch_size=batch_size,
                progress_every=1_000,
            ),
            telemetry=telemetry,
        )
        return scanner.scan(targets, name="bench"), telemetry

    def sharded(shards):
        telemetry = ScanTelemetry()
        runner = ShardedScanRunner(
            world, shards=shards, executor="thread", telemetry=telemetry
        )
        result = runner.scan(
            targets,
            ScanConfig(pps=200_000.0, seed=3, progress_every=1_000),
            name="bench",
        )
        return result, telemetry

    def jsonl_bytes(result):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "records.jsonl"
            result.write_jsonl(path)
            return path.read_bytes()

    failures = []
    base_result, base_tel = serial(1)
    base_bytes = jsonl_bytes(base_result)
    batched_result, batched_tel = serial(1024)
    if jsonl_bytes(batched_result) != base_bytes:
        failures.append("records JSONL differs: batch 1024 vs 1")
    if batched_tel.to_jsonl() != base_tel.to_jsonl():
        failures.append("telemetry JSONL differs: batch 1024 vs 1")
    if batched_tel.to_prometheus() != base_tel.to_prometheus():
        failures.append("Prometheus text differs: batch 1024 vs 1")
    sharded_result, sharded_tel = sharded(4)
    if jsonl_bytes(sharded_result) != base_bytes:
        failures.append("records JSONL differs: 4 shards vs serial")
    if sharded_tel.to_prometheus() != base_tel.to_prometheus():
        failures.append("Prometheus text differs: 4 shards vs serial")
    return failures


def run_benchmark(
    probes: int, repeats: int, seed: int
) -> tuple[dict, World, dict]:
    world = build_world(tiny_config(seed=seed))
    workloads = build_workloads(world, probes)
    report: dict = {
        "meta": {
            "probes_per_workload": probes,
            "repeats": repeats,
            "world_seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "workloads": {},
    }
    for name, (targets, pps) in workloads.items():
        stats = time_workload(world, targets, pps, repeats=repeats)
        report["workloads"][name] = stats
        print(
            f"{name:<14} {stats['targets']:>8} probes  {stats['seconds']:>8.3f}s"
            f"  {stats['pps']:>12,.0f} probes/s  ({stats['received']} replies)"
        )
    report["ring"] = measure_ring(world, workloads)
    print(
        "ring transport {segments} segments, {bytes} bytes, "
        "{records} records, {checks} checks, {fallbacks} fallbacks".format(
            **report["ring"]
        )
    )
    report["seam"] = measure_seam(world, workloads, repeats=repeats)
    print(
        "backend seam   scanner {scanner_pps:>12,.0f} probes/s vs inline "
        "{inline_pps:,.0f} ({overhead:+.1%} overhead)".format(**report["seam"])
    )
    return report, world, workloads


def check_regression(report: dict, baseline_path: Path, tolerance: float) -> int:
    """Exit status 1 if any workload regressed more than ``tolerance``."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, stats in report["workloads"].items():
        reference = baseline["workloads"].get(name)
        if reference is None:
            continue
        floor = reference["pps"] * (1.0 - tolerance)
        verdict = "ok" if stats["pps"] >= floor else "REGRESSED"
        print(
            f"check {name:<14} {stats['pps']:>12,.0f} vs baseline "
            f"{reference['pps']:>12,.0f} (floor {floor:,.0f}) {verdict}"
        )
        if stats["pps"] < floor:
            failures.append(name)
    if failures:
        print(f"probes/sec regression >{tolerance:.0%} in: {', '.join(failures)}")
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probes", type=int, default=DEFAULT_PROBES)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_RESULTS,
        help="where to write BENCH_engine.json",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="measure only, keep baseline file"
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON to compare against (CI smoke-perf gate)",
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    args = parser.parse_args(argv)

    report, world, workloads = run_benchmark(
        args.probes, args.repeats, args.seed
    )
    # Default runs refresh the committed baseline; --check runs only
    # write when pointed at an explicit --output (the CI artifact).
    write = not args.no_write and (
        args.check is None or args.output != DEFAULT_RESULTS
    )
    if write:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check is not None:
        status = check_regression(report, args.check, args.tolerance)
        failures = verify_byte_identity(world, workloads)
        for failure in failures:
            print(f"byte-identity FAILED: {failure}")
        if failures:
            status = 1
        else:
            print("byte-identity ok (batch 1/1024, shards 1/4)")
        overhead = report["seam"]["overhead"]
        if overhead > SEAM_TOLERANCE:
            print(
                f"backend seam FAILED: {overhead:.1%} overhead exceeds "
                f"{SEAM_TOLERANCE:.0%} budget on the routed sim path"
            )
            status = 1
        else:
            print(
                f"backend seam ok ({overhead:+.1%} vs inline, "
                f"budget {SEAM_TOLERANCE:.0%})"
            )
        return status
    return 0


if __name__ == "__main__":
    sys.exit(main())
