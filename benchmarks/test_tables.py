"""Benchmarks regenerating the paper's Tables 1–4 at full scale.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark produces
the table once (rounds=1 — these are campaigns, not microbenchmarks),
asserts the paper-shape property the table is about, and writes the
rendered text to ``benchmarks/results/``.
"""

from __future__ import annotations

from repro.experiments.runner import run_experiment


def _regenerate(benchmark, ctx, experiment_id):
    return benchmark.pedantic(
        run_experiment, args=(experiment_id, ctx), rounds=1, iterations=1
    )


def test_table1_methods_overview(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "table1")
    save_report(report)
    data = report.data
    # SRA discovers a large router population; the hitlist holds end hosts.
    assert data["sra_routers"] > 0
    assert data["hitlist_hosts"] > data["ark_addresses"]


def test_table2_input_sets(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "table2")
    save_report(report)
    rows = {row["source"]: row for row in report.data["rows"]}
    # Paper shape: hitlist /64 discovery rate ~10 % dominates all other
    # /64-style inputs (<1 %); plain BGP has high rate, tiny volume.
    assert rows["hitlist-64"]["discovery_rate"] > 0.05
    for source in ("bgp-48", "bgp-64", "route6-64"):
        assert rows[source]["discovery_rate"] < rows["hitlist-64"]["discovery_rate"]
    assert rows["hitlist-64"]["router_ips"] == max(
        rows[s]["router_ips"] for s in ("hitlist-64", "bgp-48", "bgp-64", "route6-64")
    )


def test_table3_top_ases_and_overlap(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "table3")
    save_report(report)
    exclusives = report.data["exclusive_fractions"]
    # Paper: 97–99.9 % of SRA addresses appear in no other source.
    assert exclusives["sra"] > 0.9
    table = report.data["table3"]
    # IXP flows are far more concentrated than SRA (43 % vs 11 %).
    assert table["ixp-flows"][0][1] > table["sra"][0][1]


def test_table4_loop_countries(benchmark, ctx, save_report):
    report = _regenerate(benchmark, ctx, "table4")
    save_report(report)
    loops = report.data["loops"]
    assert loops, "no looping countries observed"
    top_countries = [row["country"] for row in loops[:3]]
    # Brazil leads the looping-subnet count in the paper (26 %).
    assert "BRA" in top_countries
    amplification = report.data["amplification"]
    if amplification:
        max_amps = {row["country"]: row["max_amplification"] for row in amplification}
        # Mega-amplifiers (>10k) only in DEU/USA per the generator priors.
        for country, max_amp in max_amps.items():
            if max_amp > 10_000:
                assert country in ("DEU", "USA")
