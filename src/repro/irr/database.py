"""An in-memory IRR database of route6 objects with file I/O."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from ..addr.ipv6 import IPv6Prefix
from .rpsl import Route6Object, parse_database, serialize_database


class IRRDatabase:
    """A collection of route6 objects, keyed by (prefix, origin).

    Real IRRs allow several origins to register the same prefix; we keep
    all of them and expose both per-prefix and per-origin views.
    """

    def __init__(self, objects: Iterable[Route6Object] = ()) -> None:
        self._objects: dict[tuple[IPv6Prefix, int], Route6Object] = {}
        for obj in objects:
            self.add(obj)

    def add(self, obj: Route6Object) -> None:
        self._objects[(obj.prefix, obj.origin_asn)] = obj

    def remove(self, prefix: IPv6Prefix, origin_asn: int) -> bool:
        return self._objects.pop((prefix, origin_asn), None) is not None

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[Route6Object]:
        return iter(self._objects.values())

    def prefixes(self) -> list[IPv6Prefix]:
        """Distinct registered prefixes, sorted."""
        return sorted({prefix for prefix, _ in self._objects})

    def objects_for_origin(self, origin_asn: int) -> list[Route6Object]:
        return sorted(
            (obj for obj in self._objects.values() if obj.origin_asn == origin_asn),
            key=lambda obj: obj.prefix,
        )

    def length_histogram(self) -> dict[int, int]:
        """Count of registered prefixes per prefix length.

        The paper notes nearly 50 % of route6 objects register a /48 —
        this histogram is how that statistic is checked.
        """
        histogram: dict[int, int] = {}
        for prefix in self.prefixes():
            histogram[prefix.length] = histogram.get(prefix.length, 0) + 1
        return histogram

    @classmethod
    def load(cls, path: str | Path) -> "IRRDatabase":
        text = Path(path).read_text(encoding="utf-8")
        return cls(parse_database(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            serialize_database(list(self._objects.values())), encoding="utf-8"
        )
