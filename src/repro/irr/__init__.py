"""IRR substrate: RPSL route6 objects and an in-memory database."""

from .database import IRRDatabase
from .rpsl import RPSLError, Route6Object, parse_database, parse_route6, serialize_database

__all__ = [
    "IRRDatabase",
    "RPSLError",
    "Route6Object",
    "parse_database",
    "parse_route6",
    "serialize_database",
]
