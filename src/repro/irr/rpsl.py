"""RPSL ``route6`` object parsing and serialisation (RFC 2622/4012 subset).

IRR databases hold routing-policy objects; the one the SRA survey consumes
is ``route6``, which registers an IPv6 prefix with its intended origin AS::

    route6:     2001:db8::/48
    origin:     AS64500
    descr:      Example customer block
    mnt-by:     MAINT-EXAMPLE
    source:     RIPE

Objects are attribute blocks separated by blank lines; attribute values may
continue onto following lines that start with whitespace.  We parse the
subset of the grammar the survey needs and keep unknown attributes verbatim
so round trips are lossless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..addr.ipv6 import AddressError, IPv6Prefix


class RPSLError(ValueError):
    """Raised for malformed RPSL text."""


@dataclass(frozen=True, slots=True)
class Route6Object:
    """A parsed ``route6`` object."""

    prefix: IPv6Prefix
    origin_asn: int
    descr: str = ""
    maintainer: str = ""
    source: str = ""
    extra: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def to_rpsl(self) -> str:
        """Serialise back to RPSL text (without trailing blank line)."""
        lines = [
            f"route6:         {self.prefix}",
            f"origin:         AS{self.origin_asn}",
        ]
        if self.descr:
            lines.append(f"descr:          {self.descr}")
        if self.maintainer:
            lines.append(f"mnt-by:         {self.maintainer}")
        for key, value in self.extra:
            lines.append(f"{key + ':':<16}{value}")
        if self.source:
            lines.append(f"source:         {self.source}")
        return "\n".join(lines)


def _attribute_lines(block: str) -> Iterator[tuple[str, str]]:
    """Yield (key, value) pairs, folding continuation lines."""
    current_key: str | None = None
    current_value: list[str] = []
    for raw in block.splitlines():
        if raw.startswith(("%", "#")):
            continue
        if raw[:1] in (" ", "\t", "+") and current_key is not None:
            current_value.append(raw.lstrip("+ \t"))
            continue
        if current_key is not None:
            yield current_key, " ".join(current_value).strip()
        if not raw.strip():
            current_key = None
            current_value = []
            continue
        key, sep, value = raw.partition(":")
        if not sep:
            raise RPSLError(f"attribute line without colon: {raw!r}")
        current_key = key.strip().lower()
        current_value = [value.strip()]
    if current_key is not None:
        yield current_key, " ".join(current_value).strip()


def parse_route6(block: str) -> Route6Object:
    """Parse a single route6 object from its RPSL text block."""
    prefix: IPv6Prefix | None = None
    origin: int | None = None
    descr = ""
    maintainer = ""
    source = ""
    extra: list[tuple[str, str]] = []
    for key, value in _attribute_lines(block):
        if key == "route6":
            try:
                prefix = IPv6Prefix.parse(value)
            except AddressError as exc:
                raise RPSLError(f"bad route6 prefix {value!r}: {exc}") from exc
        elif key == "origin":
            asn_text = value.upper().removeprefix("AS")
            try:
                origin = int(asn_text)
            except ValueError as exc:
                raise RPSLError(f"bad origin {value!r}") from exc
        elif key == "descr":
            descr = value
        elif key == "mnt-by":
            maintainer = value
        elif key == "source":
            source = value
        else:
            extra.append((key, value))
    if prefix is None:
        raise RPSLError("object has no route6 attribute")
    if origin is None:
        raise RPSLError(f"route6 {prefix} has no origin attribute")
    return Route6Object(
        prefix=prefix,
        origin_asn=origin,
        descr=descr,
        maintainer=maintainer,
        source=source,
        extra=tuple(extra),
    )


def parse_database(text: str) -> list[Route6Object]:
    """Parse a whole-file RPSL dump of blank-line separated objects.

    Non-route6 objects (those whose first attribute is not ``route6``)
    are skipped, matching how IRR mirrors are filtered in practice.
    """
    objects: list[Route6Object] = []
    for block in text.split("\n\n"):
        if not block.strip():
            continue
        attributes = dict(_attribute_lines(block))
        if "route6" not in attributes:
            continue
        objects.append(parse_route6(block))
    return objects


def serialize_database(objects: list[Route6Object]) -> str:
    """Serialise objects with blank-line separators, sorted by prefix."""
    ordered = sorted(objects, key=lambda obj: obj.prefix)
    return "\n\n".join(obj.to_rpsl() for obj in ordered) + "\n"
