"""A RIPE Atlas-style traceroute dataset.

Atlas differs from Ark in two ways that matter for the §5.1 comparison:

* probes sit *inside* thousands of member ASes, so the dataset contains
  first-hop and intra-AS router addresses of ASes no outside-in campaign
  traverses (Fig. 7: Atlas contributes exclusive ASes),
* targets are hitlist-style host addresses (built-in measurements, anchor
  meshes), not per-prefix sweeps.

We reproduce both: traceroutes towards sampled hitlist targets from the
central vantage, plus the probe-local view — each probe-hosting AS
contributes its first-hop infrastructure (border/peering interfaces), as
every Atlas trace records them regardless of target.
"""

from __future__ import annotations

import random

from ..hitlist.hitlist import Hitlist
from ..netsim.engine import SimulationEngine
from ..topology.entities import World
from .common import AddressDataset
from .traceroute import traceroute


def run_atlas_campaign(
    world: World,
    hitlist: Hitlist,
    *,
    seed: int = 73,
    epoch: int = 2100,
    probe_as_fraction: float = 0.5,
    max_targets: int = 2000,
    max_hops: int = 32,
) -> AddressDataset:
    """Build the Atlas-style dataset: target traces + probe-local hops."""
    rng = random.Random(seed)
    dataset = AddressDataset(name="ripe-atlas")
    engine = SimulationEngine(world, epoch=epoch)

    # Traces towards (a sample of) hitlist targets.
    addresses = hitlist.addresses()
    if len(addresses) > max_targets:
        addresses = rng.sample(addresses, max_targets)
    time = 0.0
    probe_id = 1 << 41
    for target in addresses:
        trace = traceroute(
            engine, target, max_hops=max_hops, time=time, probe_id_base=probe_id
        )
        dataset.update(trace.responding_sources())
        time += 0.05
        probe_id += 256

    # Probe-local first hops: every Atlas probe's traces start with its
    # host AS's gateway and border interfaces.
    vantage_asn = world.vantage.asn if world.vantage else None
    candidate_asns = [asn for asn in world.ases if asn != vantage_asn]
    probe_asns = rng.sample(
        candidate_asns, k=max(1, int(len(candidate_asns) * probe_as_fraction))
    )
    for asn in probe_asns:
        info = world.ases[asn]
        if info.border_router_id is None:
            continue
        border = world.routers[info.border_router_id]
        if border.interface_addresses:
            dataset.add(border.interface_addresses[0])
        if border.peering_lan_address is not None:
            dataset.add(border.peering_lan_address)
        # One internal gateway interface per probe, if the AS has any.
        internal_candidates = [
            router_id for router_id in info.router_ids
            if router_id != info.border_router_id
        ]
        if internal_candidates:
            router = world.routers[rng.choice(internal_candidates)]
            if router.interface_addresses:
                dataset.add(router.interface_addresses[0])
    return dataset
