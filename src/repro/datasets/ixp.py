"""IXP flow capture: sampled (1:N) traffic between member ASes.

The paper analyses one month of 1:16k-sampled flow data from a large
regional IXP: 2.5 B sampled packets, 198 M unique addresses, a strong bias
towards a few hyper-active ASNs (>60 % of packets from the top members).

The generator draws packets between *hosts* of IXP member ASes with a
Zipf-like activity skew, then applies packet sampling.  Because flow
endpoints are end hosts while SRA probing discovers router interfaces, the
IP-level overlap between the two datasets is naturally tiny (§5.3: 0.2 %),
while the AS-level overlap is large.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..topology.entities import World
from .common import AddressDataset


@dataclass(slots=True)
class IXPFlowDataset:
    """Sampled flow records: source/destination address multisets."""

    name: str = "ixp-flows"
    sample_rate: int = 16_384
    packets_generated: int = 0
    packets_sampled: int = 0
    source_addresses: set[int] = field(default_factory=set)
    destination_addresses: set[int] = field(default_factory=set)

    def all_addresses(self) -> set[int]:
        return self.source_addresses | self.destination_addresses

    def bidirectional_addresses(self) -> set[int]:
        """Addresses seen both as source and destination (§5.3: 35 M)."""
        return self.source_addresses & self.destination_addresses

    def as_dataset(self) -> AddressDataset:
        return AddressDataset(name=self.name, addresses=self.all_addresses())


def run_ixp_capture(
    world: World,
    *,
    seed: int = 79,
    packets: int = 2_000_000,
    sample_rate: int = 256,
    zipf_exponent: float = 1.2,
) -> IXPFlowDataset:
    """Generate IXP traffic and keep a 1:``sample_rate`` packet sample.

    ``sample_rate`` defaults far below the paper's 1:16k because the
    simulated packet count is also scaled down; what must survive is the
    *sampled* address population's skew, not the raw packet count.
    """
    rng = random.Random(seed)
    dataset = IXPFlowDataset(sample_rate=sample_rate)
    members = [
        info for info in world.ases.values() if info.is_ixp_member
    ]
    if len(members) < 2:
        raise ValueError("world has fewer than two IXP member ASes")

    # Hosts per member, with a Zipf-ranked activity weight per AS.
    member_hosts: list[list[int]] = []
    for info in members:
        hosts = [
            host
            for router_id in info.router_ids
            for network in world.routers[router_id].subnet_interfaces
            for host in world.subnets[network].hosts
        ]
        if not hosts:
            hosts = [
                world.routers[info.router_ids[0]].loopback
            ] if info.router_ids else []
        member_hosts.append(hosts)
    ranked = sorted(
        range(len(members)), key=lambda i: len(member_hosts[i]), reverse=True
    )
    weights = [0.0] * len(members)
    for rank, member_index in enumerate(ranked, start=1):
        weights[member_index] = (
            (1.0 / rank**zipf_exponent) if member_hosts[member_index] else 0.0
        )

    indices = list(range(len(members)))
    dataset.packets_generated = packets
    # Draw only the *sampled* packets: sampling a Bernoulli(1/rate) per
    # generated packet is equivalent and O(packets/rate).
    expected_samples = max(1, packets // sample_rate)
    for _ in range(expected_samples):
        src_member, dst_member = rng.choices(indices, weights=weights, k=2)
        src_hosts = member_hosts[src_member]
        dst_hosts = member_hosts[dst_member]
        if not src_hosts or not dst_hosts:
            continue
        dataset.source_addresses.add(rng.choice(src_hosts))
        dataset.destination_addresses.add(rng.choice(dst_hosts))
        dataset.packets_sampled += 1
    return dataset
