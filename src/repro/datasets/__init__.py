"""Comparison datasets (§5): traceroute campaigns, hitlist, IXP flows."""

from .caida import run_ark_campaign
from .common import AddressDataset
from .ixp import IXPFlowDataset, run_ixp_capture
from .ripeatlas import run_atlas_campaign
from .traceroute import TracerouteHop, TracerouteResult, traceroute
from .tum import (
    harvest_hitlist,
    hitlist_ground_truth_slash64s,
    published_alias_list,
)

__all__ = [
    "AddressDataset",
    "IXPFlowDataset",
    "TracerouteHop",
    "TracerouteResult",
    "harvest_hitlist",
    "hitlist_ground_truth_slash64s",
    "published_alias_list",
    "run_ark_campaign",
    "run_atlas_campaign",
    "run_ixp_capture",
    "traceroute",
]
