"""A CAIDA Ark-style IPv6 topology campaign.

Ark nodes continuously traceroute every BGP-announced prefix: one trace to
the low-byte ``<prefix>::1`` address and one to a random in-prefix address,
every 24 hours.  We run the same target policy over the simulator.  Ark is
globally distributed; our single vantage is a documented simplification —
the dataset's *collection semantics* (traceroute hops towards every
announced prefix) are what the §5.1 comparison depends on.
"""

from __future__ import annotations

import random

from ..addr.randomgen import random_address_in
from ..netsim.engine import SimulationEngine
from ..topology.entities import World
from .common import AddressDataset
from .traceroute import traceroute


def run_ark_campaign(
    world: World,
    *,
    seed: int = 71,
    epoch: int = 2000,
    max_hops: int = 32,
    max_prefixes: int | None = None,
) -> AddressDataset:
    """Traceroute ``<prefix>::1`` and a random address per announcement."""
    rng = random.Random(seed)
    engine = SimulationEngine(world, epoch=epoch)
    dataset = AddressDataset(name="caida-ark")
    prefixes = world.bgp.prefixes()
    if max_prefixes is not None and len(prefixes) > max_prefixes:
        prefixes = rng.sample(prefixes, max_prefixes)
    time = 0.0
    probe_id = 1 << 40
    for prefix in prefixes:
        low_byte = prefix.network | 1
        targets = (low_byte, random_address_in(prefix, rng))
        for target in targets:
            trace = traceroute(
                engine,
                target,
                max_hops=max_hops,
                time=time,
                probe_id_base=probe_id,
            )
            dataset.update(trace.responding_sources())
            time += 0.05
            probe_id += 256
    return dataset
