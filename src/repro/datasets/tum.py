"""A TUM-hitlist-like community hitlist harvested from the world.

The real hitlist aggregates years of passive sources (DNS, CT logs, IXP
flows, NTP pools) into ~20 M active hosts plus an aliased-prefix list.  We
reproduce its *statistical* role:

* most entries are genuinely active hosts (sampled from the world's ground
  truth), so hitlist-derived /64s are very likely live subnets — the
  property that makes the Hitlist /64 input the survey's best performer,
* a staleness fraction points at hosts that no longer exist (dead subnets
  or random addresses in announced space), capping the echo rate,
* the published aliased-prefix list covers *most but not all* aliased
  networks, which is why the survey additionally needs the self-reply rule.
"""

from __future__ import annotations

import random

from ..addr.ipv6 import IPv6Prefix
from ..hitlist.aliases import AliasedPrefixList
from ..hitlist.hitlist import Hitlist
from ..topology.entities import World


def harvest_hitlist(
    world: World,
    *,
    coverage: float = 0.65,
    stale_fraction: float = 0.65,
    router_fraction: float = 0.03,
    seed: int = 97,
    name: str = "tum-hitlist",
) -> Hitlist:
    """Build a community-style hitlist from the world's host population.

    ``coverage`` is the fraction of live hosts the community has ever seen;
    ``stale_fraction`` (of the final list) are entries that no longer
    respond: addresses inside announced-but-unassigned space, mimicking
    hosts that existed when collected.  ``router_fraction`` of router
    interface addresses are also included — the extended TUM hitlist folds
    in traceroute-discovered router addresses, which is what gives the
    (small) SRA/hitlist overlap the paper reports (§5.2: 4.4 M shared).
    """
    if not 0 < coverage <= 1:
        raise ValueError("coverage must be in (0, 1]")
    if not 0 <= stale_fraction < 1:
        raise ValueError("stale_fraction must be in [0, 1)")
    if not 0 <= router_fraction < 1:
        raise ValueError("router_fraction must be in [0, 1)")
    rng = random.Random(seed)
    hitlist = Hitlist(name=name)
    for subnet in world.subnets.values():
        for host in subnet.hosts:
            if rng.random() < coverage:
                hitlist.add(host)
    if router_fraction:
        for subnet in world.subnets.values():
            if rng.random() < router_fraction:
                hitlist.add(subnet.router_interface)
    live_count = len(hitlist)
    stale_count = int(live_count * stale_fraction / (1 - stale_fraction))
    announcements = world.bgp.prefixes()
    added = 0
    while added < stale_count and announcements:
        prefix = rng.choice(announcements)
        free_bits = 128 - prefix.length
        address = prefix.network | rng.randrange(1, 1 << free_bits)
        if hitlist.add(address):
            added += 1
    return hitlist


def published_alias_list(
    world: World,
    *,
    recall: float = 0.90,
    seed: int = 101,
) -> AliasedPrefixList:
    """The community aliased-prefix list: high but imperfect recall.

    Covers ``recall`` of the world's aliased subnets/regions; the rest must
    be caught by the survey's self-reply rule.
    """
    if not 0 <= recall <= 1:
        raise ValueError("recall must be in [0, 1]")
    rng = random.Random(seed)
    alias_list = AliasedPrefixList()
    for region in world.alias_regions:
        if rng.random() < recall:
            alias_list.add(region.prefix)
    for subnet in world.subnets.values():
        if subnet.aliased and rng.random() < recall:
            alias_list.add(subnet.prefix)
    return alias_list


def hitlist_ground_truth_slash64s(world: World) -> set[IPv6Prefix]:
    """All /64s that actually contain hosts (for recall metrics in tests)."""
    return {
        subnet.prefix
        for subnet in world.subnets.values()
        if subnet.hosts
    }
