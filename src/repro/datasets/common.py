"""Shared dataset container for the §5 comparisons."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..metadata.asn import ASNMapper


@dataclass(slots=True)
class AddressDataset:
    """A named set of observed IPv6 addresses (one §5 data source)."""

    name: str
    addresses: set[int] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.addresses)

    def __contains__(self, address: int) -> bool:
        return address in self.addresses

    def add(self, address: int) -> None:
        self.addresses.add(address)

    def update(self, addresses) -> None:
        self.addresses.update(addresses)

    def asns(self, mapper: ASNMapper) -> set[int]:
        """Distinct origin ASNs of the dataset's addresses."""
        return {
            asn
            for asn in (mapper.asn_of(address) for address in self.addresses)
            if asn is not None
        }

    def asn_histogram(self, mapper: ASNMapper) -> Counter[int]:
        return mapper.asn_histogram(self.addresses)

    def top_asns(self, mapper: ASNMapper, n: int = 5) -> list[tuple[int, float]]:
        """Table 3: top ASNs and their share of this dataset's addresses."""
        return mapper.top_asns(self.addresses, n)

    def overlap(self, other: "AddressDataset") -> set[int]:
        return self.addresses & other.addresses

    def exclusive(self, others: list["AddressDataset"]) -> set[int]:
        """Addresses present here and in none of ``others``."""
        result = set(self.addresses)
        for other in others:
            result -= other.addresses
        return result
