"""A yarrp-style traceroute engine on top of the simulator.

Traceroute sends probes with increasing hop limits; each Time Exceeded
reveals one transit router interface, and the final reply (Echo or
Destination Unreachable) terminates the trace.  The CAIDA-Ark and
RIPE-Atlas dataset builders run campaigns of these traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim.engine import SimulationEngine
from ..packet.icmpv6 import ICMPv6Type


@dataclass(frozen=True, slots=True)
class TracerouteHop:
    """One hop of a trace: the TTL and who answered (None = timeout)."""

    ttl: int
    source: int | None
    icmp_type: int | None


@dataclass(slots=True)
class TracerouteResult:
    """A full trace towards one target."""

    target: int
    hops: list[TracerouteHop] = field(default_factory=list)
    reached: bool = False
    destination_source: int | None = None
    loop_detected: bool = False

    def responding_sources(self) -> set[int]:
        """All addresses that answered along this trace."""
        sources = {hop.source for hop in self.hops if hop.source is not None}
        if self.destination_source is not None:
            sources.add(self.destination_source)
        return sources


def traceroute(
    engine: SimulationEngine,
    target: int,
    *,
    max_hops: int = 32,
    time: float = 0.0,
    probe_id_base: int = 0,
    probes_per_hop: int = 1,
) -> TracerouteResult:
    """Trace towards ``target`` with increasing hop limits."""
    result = TracerouteResult(target=target)
    for ttl in range(1, max_hops + 1):
        hop_reply = None
        terminal = None
        for attempt in range(probes_per_hop):
            outcome = engine.probe(
                target,
                time + ttl * 1e-3,
                hop_limit=ttl,
                probe_id=probe_id_base + ttl * 4 + attempt,
            )
            for reply in outcome.replies:
                if reply.icmp_type is ICMPv6Type.TIME_EXCEEDED:
                    hop_reply = reply
                else:
                    terminal = reply
            if hop_reply is not None or terminal is not None:
                break
        if terminal is not None:
            result.hops.append(
                TracerouteHop(ttl, terminal.source, int(terminal.icmp_type))
            )
            result.reached = terminal.icmp_type is ICMPv6Type.ECHO_REPLY
            result.destination_source = terminal.source
            return result
        if hop_reply is not None:
            result.hops.append(
                TracerouteHop(ttl, hop_reply.source, int(hop_reply.icmp_type))
            )
            # Heuristic every traceroute tool uses: stop when the same
            # source repeats (we are past the last replying router or in
            # a loop).
            if (
                len(result.hops) >= 2
                and result.hops[-2].source == hop_reply.source
            ):
                return result
            # Persistent-loop signature: sources alternating A,B,A,B
            # (Maier & Ullrich's detection criterion).
            if len(result.hops) >= 4:
                a, b, c, d = (hop.source for hop in result.hops[-4:])
                if a is not None and b is not None and a == c and b == d and a != b:
                    result.loop_detected = True
                    return result
        else:
            result.hops.append(TracerouteHop(ttl, None, None))
            # Three consecutive silent hops: give up (gap limit).
            if len(result.hops) >= 3 and all(
                hop.source is None for hop in result.hops[-3:]
            ):
                return result
    return result
