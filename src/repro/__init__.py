"""Reproduction of "Scanning the IPv6 Internet Using Subnet-Router Anycast
Probing" (Koch et al., CoNEXT 2025) on a simulated IPv6 Internet.

Quickstart::

    from repro import build_world, SimulationEngine, ZMapV6Scanner
    from repro.addr import IPv6Prefix, stage1_targets

    world = build_world()
    engine = SimulationEngine(world)
    scanner = ZMapV6Scanner(engine)
    result = scanner.scan(list(stage1_targets(world.bgp.prefixes())))
    print(len(result.sources()), "router IPs discovered")

See ``repro.experiments`` for the per-table/figure reproduction harness.
"""

from .core import SRASurvey, SurveyConfig
from .netsim import SimulationEngine
from .scanner import ScanConfig, ZMapV6Scanner
from .topology import World, WorldConfig, build_world, tiny_config

__version__ = "1.0.0"

__all__ = [
    "SRASurvey",
    "ScanConfig",
    "SimulationEngine",
    "SurveyConfig",
    "World",
    "WorldConfig",
    "ZMapV6Scanner",
    "build_world",
    "tiny_config",
    "__version__",
]
