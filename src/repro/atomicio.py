"""Crash-safe file output: the temp + rename + fsync discipline.

Long scans die — workers segfault, operators hit Ctrl-C, machines lose
power — and a scan that dies mid-``write()`` must never leave a *torn*
output file (half a CSV row, a JSONL line cut in two, a checkpoint with
a stale header and fresh tail).  Every durable artifact this codebase
produces therefore goes through one of two disciplines:

* **whole-file writes** (:func:`atomic_write_bytes` /
  :func:`atomic_write_text`): write the full content to a temporary file
  in the destination directory, ``fsync`` it, then ``os.replace`` it over
  the destination.  POSIX rename is atomic, so readers see either the old
  complete file or the new complete file, never a mix.
* **incremental writes** (:func:`partial_path`): streaming sinks append
  to ``<dest>.partial`` and atomically rename to ``<dest>`` on a clean
  close.  A crash leaves only the clearly-labelled partial file; the
  final path either does not exist yet or holds a previous complete run.

Both fsync the containing directory afterwards (best effort — some
filesystems refuse), so the rename itself survives power loss.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "partial_path",
    "replace_partial",
]


def fsync_directory(directory: str | Path) -> None:
    """Flush a directory's entry table to disk (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all filesystems allow this
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    The temporary file lives in the destination directory so the final
    ``os.replace`` never crosses a filesystem boundary.  On any failure
    the temporary file is removed and the destination is untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> None:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


def partial_path(path: str | Path) -> Path:
    """Where a streaming sink stages its in-progress output."""
    path = Path(path)
    return path.with_name(path.name + ".partial")


def replace_partial(path: str | Path) -> None:
    """Promote ``<path>.partial`` to ``<path>`` atomically."""
    path = Path(path)
    os.replace(partial_path(path), path)
    fsync_directory(path.parent)
