"""Network simulator: rate limiting, stochastic gates, and the probe engine."""

from .engine import (
    AMPLIFICATION_CAP,
    EngineStats,
    ProbeResult,
    Reply,
    SimulationEngine,
)
from .pcap import PcapWriter, capture_scan, read_pcap
from .ratelimit import TokenBucket
from .stochastic import stable_bool, stable_unit

__all__ = [
    "AMPLIFICATION_CAP",
    "EngineStats",
    "PcapWriter",
    "ProbeResult",
    "Reply",
    "SimulationEngine",
    "TokenBucket",
    "capture_scan",
    "read_pcap",
    "stable_bool",
    "stable_unit",
]
