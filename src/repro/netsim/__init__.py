"""Network simulator: rate limiting, stochastic gates, and the probe engine."""

from .engine import (
    AMPLIFICATION_CAP,
    EngineStats,
    ProbeResult,
    Reply,
    SimulationEngine,
)
from .faults import (
    ChaosEngine,
    FaultPlan,
    InjectedCrash,
    InjectedSinkError,
    truncate_tail,
)
from .pcap import PcapWriter, capture_scan, read_pcap
from .ratelimit import TokenBucket
from .stochastic import stable_bool, stable_unit

__all__ = [
    "AMPLIFICATION_CAP",
    "ChaosEngine",
    "EngineStats",
    "FaultPlan",
    "InjectedCrash",
    "InjectedSinkError",
    "PcapWriter",
    "ProbeResult",
    "Reply",
    "SimulationEngine",
    "TokenBucket",
    "capture_scan",
    "read_pcap",
    "stable_bool",
    "stable_unit",
    "truncate_tail",
]
