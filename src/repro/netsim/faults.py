"""Deterministic fault injection for exercising crash-recovery paths.

Recovery code that is only ever exercised by real crashes is recovery
code that does not work.  This module provides a :class:`ChaosEngine`
that injects the failure modes the scan runner must survive — worker
crashes at an exact probe index, sink-write exceptions, truncated JSONL
output, slow shards, and operator interrupts — all *deterministically*:
stochastic faults are keyed BLAKE2 draws over ``(seed, purpose, shard,
attempt)`` exactly like every other stochastic decision in the simulator
(:mod:`repro.netsim.stochastic`), so a failing CI run reproduces locally
from the seed alone.

The engine is plain data and picklable, so it rides the same process-pool
payload as the scan config and fires *inside* the worker — a "hard" crash
is a genuine ``os._exit`` that the parent observes as a broken pool, not
a polite exception.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from .stochastic import stable_unit

__all__ = [
    "ChaosEngine",
    "CrashingSequence",
    "FailingSink",
    "FaultPlan",
    "InjectedCrash",
    "InjectedSinkError",
    "truncate_tail",
]

# Exit status a hard-crashed worker dies with; chosen to be recognisable
# in pool post-mortems and unlike any real Python exit code.
HARD_CRASH_EXIT = 66


class InjectedCrash(RuntimeError):
    """A deliberate, planned worker failure (soft crash)."""


class InjectedSinkError(OSError):
    """A deliberate, planned record-sink write failure."""


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """What to break, where, and how often.

    All fields default to "inject nothing", so an empty plan is a no-op
    engine.  Deterministic triggers (``crash_shard``/``crash_at_probe``)
    and stochastic ones (``crash_probability``) compose; either may fire.
    """

    seed: int = 0
    # Crash shard `crash_shard` at its `crash_at_probe`-th probe, on the
    # first `crash_attempts` attempts (so retries eventually succeed).
    crash_shard: int | None = None
    crash_at_probe: int = 0
    crash_attempts: int = 1
    # Hard crashes os._exit the worker (parent sees a broken pool);
    # soft crashes raise InjectedCrash.  Hard mode is only meaningful
    # under the process executor — in-process it would kill the test run.
    hard: bool = False
    # Independently of the planned crash, each (shard, attempt) crashes
    # with this probability, drawn via stable_unit(seed, ...).
    crash_probability: float = 0.0
    # Sink writes raise after this many successful emits (None = never).
    sink_fail_after: int | None = None
    # Per-shard start-up delays in seconds (simulates stragglers).
    slow_shards: Mapping[int, float] = field(default_factory=dict)
    # Ask the runner to interrupt itself (as if SIGINT arrived) once this
    # many shards have completed and checkpointed.
    interrupt_after_shards: int | None = None


class CrashingSequence:
    """A target sequence that dies at its N-th per-probe access.

    The scan hot path reads ``targets[index]`` exactly once per probe, so
    counting ``__getitem__`` calls addresses faults by probe ordinal —
    "crash at probe 37" — independent of batch size or permutation.
    """

    __slots__ = ("_targets", "_remaining", "_hard")

    def __init__(self, targets: Sequence[int], at_probe: int, hard: bool) -> None:
        self._targets = targets
        self._remaining = at_probe
        self._hard = hard

    def __len__(self) -> int:
        return len(self._targets)

    def __getitem__(self, index: int) -> int:
        if self._remaining <= 0:
            if self._hard:  # pragma: no cover - kills the process by design
                os._exit(HARD_CRASH_EXIT)
            raise InjectedCrash(
                f"planned crash at probe access (index {index})"
            )
        self._remaining -= 1
        return self._targets[index]


class FailingSink:
    """A record-sink proxy whose ``emit`` fails after N successes."""

    __slots__ = ("_sink", "_remaining")

    def __init__(self, sink, fail_after: int) -> None:
        self._sink = sink
        self._remaining = fail_after

    @property
    def emitted(self) -> int:
        return self._sink.emitted

    def emit(self, record) -> None:
        if self._remaining <= 0:
            raise InjectedSinkError("planned sink write failure")
        self._remaining -= 1
        self._sink.emit(record)

    def drain(self, records) -> None:
        # Route the bulk path through the failing emit so the injection
        # counts records identically in streaming and post-merge drains.
        for record in records:
            self.emit(record)

    def close(self) -> None:
        self._sink.close()

    def __enter__(self) -> "FailingSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def truncate_tail(path: str | Path, drop_bytes: int) -> None:
    """Chop ``drop_bytes`` off a file's tail — a torn write, simulated.

    Used by tests to model the crash-mid-write corruption that atomic
    renames prevent and checkpoint CRCs detect.
    """
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - drop_bytes))


@dataclass(slots=True)
class ChaosEngine:
    """Applies a :class:`FaultPlan` at the scan runner's seams.

    Picklable plain data: process-pool workers receive a copy and decide
    locally (and identically, thanks to keyed hashing) whether their
    (shard, attempt) is fated to fail.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)

    def should_crash(self, shard: int, attempt: int) -> bool:
        """Is this (shard, attempt) planned or fated to crash?"""
        plan = self.plan
        if plan.crash_shard == shard and attempt < plan.crash_attempts:
            return True
        if plan.crash_probability > 0.0:
            draw = stable_unit(plan.seed, b"chaos-crash", shard, attempt)
            if draw < plan.crash_probability:
                return True
        return False

    def wrap_targets(
        self, targets: Sequence[int], shard: int, attempt: int
    ) -> Sequence[int]:
        """Arm the crash trigger on a shard's target view (or pass through)."""
        if self.should_crash(shard, attempt):
            return CrashingSequence(targets, self.plan.crash_at_probe, self.plan.hard)
        return targets

    def wrap_sink(self, sink):
        """Arm the sink-failure trigger (or pass through)."""
        if sink is not None and self.plan.sink_fail_after is not None:
            return FailingSink(sink, self.plan.sink_fail_after)
        return sink

    def delay_shard(self, shard: int) -> None:
        """Stall a slow shard's start-up per the plan."""
        delay = self.plan.slow_shards.get(shard, 0.0)
        if delay > 0.0:  # pragma: no branch
            time.sleep(delay)

    def wants_interrupt(self, completed_shards: int) -> bool:
        """Should the runner self-interrupt after this many completions?"""
        after = self.plan.interrupt_after_shards
        return after is not None and completed_shards >= after
