"""Deterministic fault injection for exercising crash-recovery paths.

Recovery code that is only ever exercised by real crashes is recovery
code that does not work.  This module provides a :class:`ChaosEngine`
that injects the failure modes the scan runner must survive — worker
crashes at an exact probe index, sink-write exceptions, truncated JSONL
output, slow shards, and operator interrupts — all *deterministically*:
stochastic faults are keyed BLAKE2 draws over ``(seed, purpose, shard,
attempt)`` exactly like every other stochastic decision in the simulator
(:mod:`repro.netsim.stochastic`), so a failing CI run reproduces locally
from the seed alone.

The engine is plain data and picklable, so it rides the same process-pool
payload as the scan config and fires *inside* the worker — a "hard" crash
is a genuine ``os._exit`` that the parent observes as a broken pool, not
a polite exception.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Sequence

from pathlib import Path

from ..scanner.backends.base import BackendError, BackendSpec, ProbeBackend
from .stochastic import stable_unit

if TYPE_CHECKING:
    from ..topology.entities import World
    from .engine import EngineStats, ProbeResult

__all__ = [
    "ChaosEngine",
    "CrashingSequence",
    "FailingSink",
    "FaultPlan",
    "FaultyBackend",
    "InjectedBackendError",
    "InjectedCrash",
    "InjectedSinkError",
    "truncate_tail",
]

# Exit status a hard-crashed worker dies with; chosen to be recognisable
# in pool post-mortems and unlike any real Python exit code.
HARD_CRASH_EXIT = 66


class InjectedCrash(RuntimeError):
    """A deliberate, planned worker failure (soft crash)."""


class InjectedBackendError(BackendError):
    """A deliberate, planned ``send_batch`` failure (transport fault)."""


class InjectedSinkError(OSError):
    """A deliberate, planned record-sink write failure."""


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """What to break, where, and how often.

    All fields default to "inject nothing", so an empty plan is a no-op
    engine.  Deterministic triggers (``crash_shard``/``crash_at_probe``)
    and stochastic ones (``crash_probability``) compose; either may fire.
    """

    seed: int = 0
    # Crash shard `crash_shard` at its `crash_at_probe`-th probe, on the
    # first `crash_attempts` attempts (so retries eventually succeed).
    crash_shard: int | None = None
    crash_at_probe: int = 0
    crash_attempts: int = 1
    # Hard crashes os._exit the worker (parent sees a broken pool);
    # soft crashes raise InjectedCrash.  Hard mode is only meaningful
    # under the process executor — in-process it would kill the test run.
    hard: bool = False
    # Independently of the planned crash, each (shard, attempt) crashes
    # with this probability, drawn via stable_unit(seed, ...).
    crash_probability: float = 0.0
    # Sink writes raise after this many successful emits (None = never).
    sink_fail_after: int | None = None
    # Per-shard start-up delays in seconds (simulates stragglers).
    slow_shards: Mapping[int, float] = field(default_factory=dict)
    # Ask the runner to interrupt itself (as if SIGINT arrived) once this
    # many shards have completed and checkpointed.
    interrupt_after_shards: int | None = None

    # ---- backend-level transport faults (FaultyBackend) ---- #
    # Fated batches raise InjectedBackendError from send_batch.  Batch
    # identity is the ordinal of the first sighting (stable across
    # retries of the same batch; split sub-batches get fresh ordinals).
    #
    # Fail exactly this batch ordinal (on backend_error_shard if set,
    # else on every shard).
    backend_error_batch: int | None = None
    # Fail the first N distinct batch ordinals (composable with the
    # shard filter; used to exercise breaker open -> half-open -> close).
    backend_error_batches: int | None = None
    # Shard filter for the two triggers above — or, set alone (both
    # batch triggers None, probability 0), fail *every* batch on this
    # shard (a permanently-dead transport).
    backend_error_shard: int | None = None
    # Independently, each (shard, batch) is fated with this probability
    # via stable_unit(seed, b"chaos-backend", shard, batch).
    backend_error_probability: float = 0.0
    # A fated batch fails its first N send attempts (retries then
    # succeed); None makes the fault permanent (every attempt fails).
    backend_error_attempts: int | None = 1
    # Hang the first attempt of this batch ordinal: send_batch blocks
    # (before touching the wrapped backend) until the chaos backend is
    # closed, then raises — the shape of a wedged raw socket.
    backend_hang_batch: int | None = None
    # Return a truncated outcome list (one outcome short) from the first
    # attempt of this batch ordinal — a seam-contract violation the
    # resilience layer must catch and retry.
    backend_short_batch: int | None = None
    # Eat every echo reply in flight: probes are sent, replies never
    # arrive (stats stay coherent — the eaten replies are uncounted).
    backend_blackhole: bool = False


class CrashingSequence:
    """A target sequence that dies at its N-th per-probe access.

    The scan hot path reads ``targets[index]`` exactly once per probe, so
    counting ``__getitem__`` calls addresses faults by probe ordinal —
    "crash at probe 37" — independent of batch size or permutation.
    """

    __slots__ = ("_targets", "_remaining", "_hard")

    def __init__(self, targets: Sequence[int], at_probe: int, hard: bool) -> None:
        self._targets = targets
        self._remaining = at_probe
        self._hard = hard

    def __len__(self) -> int:
        return len(self._targets)

    def __getitem__(self, index: int) -> int:
        if self._remaining <= 0:
            if self._hard:  # pragma: no cover - kills the process by design
                os._exit(HARD_CRASH_EXIT)
            raise InjectedCrash(
                f"planned crash at probe access (index {index})"
            )
        self._remaining -= 1
        return self._targets[index]


class FailingSink:
    """A record-sink proxy whose ``emit`` fails after N successes."""

    __slots__ = ("_sink", "_remaining")

    def __init__(self, sink, fail_after: int) -> None:
        self._sink = sink
        self._remaining = fail_after

    @property
    def emitted(self) -> int:
        return self._sink.emitted

    def emit(self, record) -> None:
        if self._remaining <= 0:
            raise InjectedSinkError("planned sink write failure")
        self._remaining -= 1
        self._sink.emit(record)

    def drain(self, records) -> None:
        # Route the bulk path through the failing emit so the injection
        # counts records identically in streaming and post-merge drains.
        for record in records:
            self.emit(record)

    def close(self) -> None:
        self._sink.close()

    def __enter__(self) -> "FailingSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FaultyBackend(ProbeBackend):
    """A :class:`ProbeBackend` wrapper that injects transport faults.

    Sits *under* the resilience layer (``ResilientBackend`` wraps it),
    exactly where a flaky NIC or a wedged raw socket would be.  Every
    injected fault fires *before* the wrapped backend is touched (or,
    for blackholes/truncation, adjusts only the returned outcomes), so a
    transactional retry above observes a clean rollback and reproduces
    the fault-free byte stream — the property the chaos contract tests
    pin for every registered backend.

    Batch identity: the ordinal of first sighting, keyed on
    ``(len, first target, last target)`` — retries of a batch keep their
    ordinal, split sub-batches get fresh ones.
    """

    def __init__(
        self, inner: ProbeBackend, plan: FaultPlan, shard: int = 0
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.shard = shard
        self._batches: dict[tuple[int, int, int], list[int]] = {}
        self._next_ordinal = 0
        self._hang_fired = False
        self._release = threading.Event()
        self.name = inner.name
        # Faults only fire through send_batch, never the columnar kernel.
        self.supports_columns = False
        self.deterministic = inner.deterministic
        self.requires_privilege = inner.requires_privilege

    # ---------------- construction ---------------- #

    @classmethod
    def from_spec(
        cls,
        spec: BackendSpec,
        *,
        world: "World | None" = None,
        engine=None,
        epoch: int = 0,
        defer_rate_limit: bool = False,
    ) -> "ProbeBackend":
        raise TypeError(
            "FaultyBackend wraps a built backend (ChaosEngine.wrap_backend)"
        )

    def spec(self) -> BackendSpec:
        return self.inner.spec()

    # ---------------- lifecycle + delegation ---------------- #

    def open(self) -> None:
        self.inner.open()

    def close(self) -> None:
        # Release any hung send first so its (abandoned) watchdog thread
        # raises and exits instead of blocking forever.
        self._release.set()
        self.inner.close()

    @property
    def epoch(self) -> int:
        return self.inner.epoch

    def new_epoch(self, epoch: int) -> None:
        self.inner.new_epoch(epoch)

    @property
    def stats(self) -> "EngineStats":
        return self.inner.stats

    @property
    def pending_checks(self) -> list[tuple[float, int]]:
        return self.inner.pending_checks

    @property
    def needs_probe_ids(self) -> bool:
        return self.inner.needs_probe_ids

    @property
    def engine(self):
        return getattr(self.inner, "engine", None)

    @property
    def telemetry(self):
        return self.inner.telemetry

    @telemetry.setter
    def telemetry(self, collector) -> None:
        self.inner.telemetry = collector

    @property
    def unmatched_replies(self) -> int:
        return self.inner.unmatched_replies

    @unmatched_replies.setter
    def unmatched_replies(self, value: int) -> None:
        self.inner.unmatched_replies = value

    def pop_warnings(self) -> list[str]:
        return self.inner.pop_warnings()

    # ---------------- fault logic ---------------- #

    def _fated(self, ordinal: int) -> bool:
        plan = self.plan
        shard_matches = (
            plan.backend_error_shard is None
            or plan.backend_error_shard == self.shard
        )
        if plan.backend_error_batch is not None:
            if shard_matches and ordinal == plan.backend_error_batch:
                return True
        if plan.backend_error_batches is not None:
            if shard_matches and ordinal < plan.backend_error_batches:
                return True
        if (
            plan.backend_error_batch is None
            and plan.backend_error_batches is None
            and plan.backend_error_shard == self.shard
            and plan.backend_error_probability == 0.0
        ):
            return True  # dead-transport mode: every batch on the shard
        if plan.backend_error_probability > 0.0:
            draw = stable_unit(plan.seed, b"chaos-backend", self.shard, ordinal)
            if draw < plan.backend_error_probability:
                return True
        return False

    def send_batch(
        self,
        targets: Sequence[int],
        times: Sequence[float],
        *,
        hop_limit: int = 64,
        probe_ids: Sequence[int] | None = None,
    ) -> "list[ProbeResult]":
        plan = self.plan
        key = (
            len(targets),
            targets[0] if targets else -1,
            targets[-1] if targets else -1,
        )
        state = self._batches.get(key)
        if state is None:
            state = self._batches[key] = [self._next_ordinal, 0]
            self._next_ordinal += 1
        ordinal, attempt = state
        state[1] += 1
        if (
            ordinal == plan.backend_hang_batch
            and attempt == 0
            and not self._hang_fired
        ):
            self._hang_fired = True
            self._release.wait()
            raise InjectedBackendError(
                f"hung batch {ordinal} released at close"
            )
        if self._fated(ordinal) and (
            plan.backend_error_attempts is None
            or attempt < plan.backend_error_attempts
        ):
            raise InjectedBackendError(
                f"injected backend error "
                f"(shard {self.shard}, batch {ordinal}, attempt {attempt})"
            )
        outcomes = self.inner.send_batch(
            targets, times, hop_limit=hop_limit, probe_ids=probe_ids
        )
        if (
            ordinal == plan.backend_short_batch
            and attempt == 0
            and len(outcomes) > 1
        ):
            return outcomes[:-1]
        if plan.backend_blackhole:
            outcomes = [self._eat_replies(outcome) for outcome in outcomes]
        return outcomes

    def _eat_replies(self, outcome: "ProbeResult") -> "ProbeResult":
        kept = tuple(r for r in outcome.replies if not r.is_echo)
        eaten = len(outcome.replies) - len(kept)
        if eaten:
            # Keep the counters coherent with the surviving outcome set.
            self.inner.stats.echo_replies -= eaten
            outcome = replace(outcome, replies=kept)
        return outcome


def truncate_tail(path: str | Path, drop_bytes: int) -> None:
    """Chop ``drop_bytes`` off a file's tail — a torn write, simulated.

    Used by tests to model the crash-mid-write corruption that atomic
    renames prevent and checkpoint CRCs detect.
    """
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - drop_bytes))


@dataclass(slots=True)
class ChaosEngine:
    """Applies a :class:`FaultPlan` at the scan runner's seams.

    Picklable plain data: process-pool workers receive a copy and decide
    locally (and identically, thanks to keyed hashing) whether their
    (shard, attempt) is fated to fail.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)

    def should_crash(self, shard: int, attempt: int) -> bool:
        """Is this (shard, attempt) planned or fated to crash?"""
        plan = self.plan
        if plan.crash_shard == shard and attempt < plan.crash_attempts:
            return True
        if plan.crash_probability > 0.0:
            draw = stable_unit(plan.seed, b"chaos-crash", shard, attempt)
            if draw < plan.crash_probability:
                return True
        return False

    def wrap_targets(
        self, targets: Sequence[int], shard: int, attempt: int
    ) -> Sequence[int]:
        """Arm the crash trigger on a shard's target view (or pass through)."""
        if self.should_crash(shard, attempt):
            return CrashingSequence(targets, self.plan.crash_at_probe, self.plan.hard)
        return targets

    def wrap_sink(self, sink):
        """Arm the sink-failure trigger (or pass through)."""
        if sink is not None and self.plan.sink_fail_after is not None:
            return FailingSink(sink, self.plan.sink_fail_after)
        return sink

    def has_backend_faults(self) -> bool:
        """Does the plan inject anything at the ProbeBackend seam?"""
        plan = self.plan
        return (
            plan.backend_error_batch is not None
            or plan.backend_error_batches is not None
            or plan.backend_error_shard is not None
            or plan.backend_error_probability > 0.0
            or plan.backend_hang_batch is not None
            or plan.backend_short_batch is not None
            or plan.backend_blackhole
        )

    def wrap_backend(self, backend: ProbeBackend, shard: int) -> ProbeBackend:
        """Interpose transport faults under a shard's backend (or pass
        through when the plan injects nothing at this seam)."""
        if self.has_backend_faults():
            return FaultyBackend(backend, self.plan, shard)
        return backend

    def delay_shard(self, shard: int) -> None:
        """Stall a slow shard's start-up per the plan."""
        delay = self.plan.slow_shards.get(shard, 0.0)
        if delay > 0.0:  # pragma: no branch
            time.sleep(delay)

    def wants_interrupt(self, completed_shards: int) -> bool:
        """Should the runner self-interrupt after this many completions?"""
        after = self.plan.interrupt_after_shards
        return after is not None and completed_shards >= after
