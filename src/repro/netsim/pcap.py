"""Raw packet captures in pcap format.

The paper observes that loop-amplified Time Exceeded floods are invisible
to scan tools and "only visible in raw packet captures" (§7).  This module
provides that raw view: a classic-pcap writer (LINKTYPE_RAW — packets
start at the IPv6 header) and :func:`capture_scan`, which runs a scan in
wire format and records every probe and every reply — including amplified
duplicates, up to a configurable cap — with virtual timestamps.

The produced files open in wireshark/tcpdump.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Sequence

from ..packet.icmpv6 import ICMPv6Type, echo_reply_for, error_message
from ..packet.ipv6hdr import HEADER_LENGTH, IPv6Header
from ..packet.probe import build_probe_packet
from ..packet.icmpv6 import ICMPv6Message
from ..topology.entities import World
from .engine import SimulationEngine

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_RAW = 101  # packets begin with the IP header
DEFAULT_SNAPLEN = 65_535

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapWriter:
    """Streams packets into a classic-pcap file.

    Use as a context manager::

        with PcapWriter.open("scan.pcap") as pcap:
            pcap.write(0.5, packet_bytes)
    """

    def __init__(self, stream: BinaryIO, *, snaplen: int = DEFAULT_SNAPLEN) -> None:
        self._stream = stream
        self.snaplen = snaplen
        self.packets_written = 0
        stream.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                PCAP_VERSION[0],
                PCAP_VERSION[1],
                0,  # timezone offset
                0,  # timestamp accuracy
                snaplen,
                LINKTYPE_RAW,
            )
        )

    @classmethod
    def open(cls, path: str | Path, **kwargs) -> "PcapWriter":
        writer = cls(open(path, "wb"), **kwargs)
        writer._owns_stream = True  # type: ignore[attr-defined]
        return writer

    def write(self, timestamp: float, packet: bytes) -> None:
        """Append one packet with a (virtual) timestamp in seconds."""
        seconds = int(timestamp)
        microseconds = int((timestamp - seconds) * 1_000_000)
        captured = packet[: self.snaplen]
        self._stream.write(
            _RECORD_HEADER.pack(seconds, microseconds, len(captured), len(packet))
        )
        self._stream.write(captured)
        self.packets_written += 1

    def close(self) -> None:
        if getattr(self, "_owns_stream", False):
            self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_pcap(path: str | Path) -> list[tuple[float, bytes]]:
    """Read a classic-pcap file back into (timestamp, packet) pairs."""
    data = Path(path).read_bytes()
    if len(data) < _GLOBAL_HEADER.size:
        raise ValueError("truncated pcap file")
    magic, *_rest = _GLOBAL_HEADER.unpack_from(data)
    if magic != PCAP_MAGIC:
        raise ValueError(f"not a (little-endian classic) pcap file: {magic:#x}")
    packets: list[tuple[float, bytes]] = []
    offset = _GLOBAL_HEADER.size
    while offset < len(data):
        seconds, micros, captured, _original = _RECORD_HEADER.unpack_from(
            data, offset
        )
        offset += _RECORD_HEADER.size
        packets.append((seconds + micros / 1e6, data[offset : offset + captured]))
        offset += captured
    return packets


def capture_scan(
    world: World,
    targets: Sequence[int],
    path: str | Path,
    *,
    epoch: int = 0,
    pps: float = 1_000.0,
    hop_limit: int = 64,
    key: bytes = b"sra-probing-key-0123456789abcdef",
    max_duplicates: int = 1_000,
) -> dict[str, int]:
    """Run a scan and write the raw traffic — probes, replies, and the
    amplified flood duplicates that scan tools never report.

    Returns counters: probes, replies, flood_packets (duplicates written,
    capped at ``max_duplicates`` per reply), flood_truncated (duplicates
    that exceeded the cap and were *not* written).
    """
    engine = SimulationEngine(world, epoch=epoch)
    assert world.vantage is not None
    vantage = world.vantage.address
    counters = {"probes": 0, "replies": 0, "flood_packets": 0, "flood_truncated": 0}
    with PcapWriter.open(path) as pcap:
        for index, target in enumerate(targets):
            time = index / pps
            wire = build_probe_packet(
                src=vantage,
                target=target,
                probe_id=index,
                key=key,
                hop_limit=hop_limit,
                identifier=index & 0xFFFF,
                sequence=(index >> 16) & 0xFFFF,
            )
            pcap.write(time, wire)
            counters["probes"] += 1
            request = ICMPv6Message.decode(
                wire[HEADER_LENGTH:], src=vantage, dst=target
            )
            outcome = engine.probe(
                target, time, hop_limit=hop_limit, probe_id=index
            )
            for reply in outcome.replies:
                if reply.icmp_type is ICMPv6Type.ECHO_REPLY:
                    message = echo_reply_for(request)
                else:
                    message = error_message(reply.icmp_type, reply.code, wire)
                raw = message.encode(reply.source, vantage)
                header = IPv6Header(
                    src=reply.source,
                    dst=vantage,
                    payload_length=len(raw),
                    hop_limit=64,
                )
                packet = header.encode() + raw
                duplicates = min(reply.count, max_duplicates)
                for duplicate in range(duplicates):
                    pcap.write(time + 0.001 + duplicate * 1e-6, packet)
                counters["replies"] += 1
                counters["flood_packets"] += duplicates - 1
                counters["flood_truncated"] += reply.count - duplicates
    return counters
