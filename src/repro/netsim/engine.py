"""Packet-level behaviour of the simulated Internet.

:class:`SimulationEngine` answers one question: *given a probe sent from
the vantage point to destination D at virtual time t in scan epoch e, which
ICMPv6 packets come back?*  It walks the probe hop by hop:

1. BGP longest-prefix match.  Unrouted destinations draw a (rate-limited)
   "no route" error from the vantage's upstream router.
2. Transit traversal.  Each AS on the vantage→origin path costs one hop;
   a hop limit that expires in transit yields a Time Exceeded from that
   transit router — this is also how the traceroute datasets are built.
3. Destination resolution via the world's longest-prefix index:
   an active subnet (SRA semantics, hosts, router interfaces, unassigned
   addresses), an aliased region, an infrastructure subnet, a routing-loop
   region (with the amplification firmware bug), or — default — unassigned
   announced space answered by the origin's border router.

ICMPv6 *error* messages pass through the emitting router's RFC 4443 token
bucket plus an "on-off" background-load gate (Ravaioli et al. observed
routers alternating between answering and silence under cross traffic);
Echo replies are never rate limited, which is exactly the asymmetry SRA
probing exploits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..packet.icmpv6 import ICMPv6Type, TimeExceededCode, UnreachableCode
from ..topology.entities import (
    AliasRegion,
    EntryKind,
    InfraSubnet,
    LoopRegion,
    Router,
    Subnet,
    World,
)
from ..topology.profiles import SRABehavior
from .ratelimit import TokenBucket
from .stochastic import base_hasher, stable_bool, stable_unit

# Cap on materialised reply counts for amplified loops; counts above this
# are reported truthfully in `Reply.count` but the engine never enumerates.
AMPLIFICATION_CAP = 1 << 22  # ~4.2M replies per probe

_PURPOSE_LOSS = b"loss"
# Packed-word layouts for the inlined loss draw (see probe_batch): the
# loss keys are (target, probe_id, epoch); a 128-bit target contributes
# two words, exactly as stable_unit would pack them.
_PACK_LOSS_3 = struct.Struct(">3q")
_PACK_LOSS_4 = struct.Struct(">4q")
_MASK63 = 0x7FFFFFFFFFFFFFFF
_UNIT_SCALE = float(1 << 64)
_PURPOSE_FLAKY = b"flaky"
_PURPOSE_HOST = b"host"
_PURPOSE_DIRECT = b"direct"
_PURPOSE_FLIP = b"flip"
_PURPOSE_BG_WINDOW = b"bgwin"
_PURPOSE_BG_JITTER = b"bgjit"


@dataclass(slots=True)
class Reply:
    """One (possibly replicated) ICMPv6 reply arriving at the vantage.

    Treated as immutable by convention; not ``frozen=True`` because the
    frozen ``__init__`` funnels every field through ``object.__setattr__``,
    which costs ~3x on this allocation-heavy hot path.
    """

    source: int
    icmp_type: ICMPv6Type
    code: int
    count: int = 1
    router_id: int | None = None

    @property
    def is_echo(self) -> bool:
        return self.icmp_type is ICMPv6Type.ECHO_REPLY

    @property
    def is_error(self) -> bool:
        return self.icmp_type.is_error


@dataclass(slots=True)
class ProbeResult:
    """Everything a probe produced.

    Immutable by convention (see :class:`Reply` for why not ``frozen``).
    """

    target: int
    time: float
    epoch: int
    replies: tuple[Reply, ...] = ()
    lost: bool = False
    looped: bool = False
    amplification: int = 0
    transit_hops: int = 0

    @property
    def replied(self) -> bool:
        return bool(self.replies)


@dataclass(slots=True)
class EngineStats:
    """Aggregate counters over an engine's lifetime (scan epoch)."""

    probes: int = 0
    lost: int = 0
    echo_replies: int = 0
    error_replies: int = 0
    suppressed_errors: int = 0
    loops_hit: int = 0
    amplified_replies: int = 0


class SimulationEngine:
    """Stateful per-epoch simulation: owns rate-limiter buckets.

    Create one engine per scan (or call :meth:`new_epoch` between scans);
    token-bucket state deliberately persists *within* an epoch so that
    scan pacing interacts with rate limiting the way it does on real
    routers.
    """

    def __init__(
        self,
        world: World,
        *,
        epoch: int = 0,
        background_window: float = 1.0,
        defer_rate_limit: bool = False,
    ) -> None:
        if world.vantage is None:
            raise ValueError("world has no vantage point")
        self.world = world
        self.epoch = epoch
        self.background_window = background_window
        self.stats = EngineStats()
        # Deferred mode: `_error_allowed` records (time, router_id) and lets
        # every error through.  A sharded scan runs each shard deferred, then
        # replays the recorded checks in global time order on a fresh engine —
        # the rate limiter is the engine's only cross-probe mutable state, so
        # the replay reproduces the serial outcome exactly (scanner/sharded).
        self.defer_rate_limit = defer_rate_limit
        self.pending_checks: list[tuple[float, int]] = []
        self._buckets: dict[int, TokenBucket] = {}
        self._bg_load: dict[int, float] = {}
        # Optional hot-path observability hook (duck-typed: anything with
        # on_loop(router_id, time) / on_suppressed(router_id, time), e.g.
        # repro.telemetry.HotPathCollector).  Scanners attach one for the
        # duration of an instrumented scan.  Both call sites sit on rare
        # branches (loop entry, error suppression), so a disabled engine
        # pays a single `is not None` check there and nothing on the
        # per-probe fast path.
        self.telemetry = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def new_epoch(self, epoch: int) -> None:
        """Start a new scan epoch: reset buckets, caches, and counters."""
        self.epoch = epoch
        self.stats = EngineStats()
        self.pending_checks.clear()
        self._buckets.clear()
        self._bg_load.clear()

    # ------------------------------------------------------------------ #
    # the probe path
    # ------------------------------------------------------------------ #

    def probe(
        self,
        target: int,
        time: float,
        *,
        hop_limit: int = 64,
        probe_id: int = 0,
    ) -> ProbeResult:
        """Send one ICMPv6 Echo Request from the vantage to ``target``."""
        world = self.world
        self.stats.probes += 1
        if stable_bool(
            world.seed, _PURPOSE_LOSS, world.packet_loss, target, probe_id, self.epoch
        ):
            self.stats.lost += 1
            return ProbeResult(target, time, self.epoch, lost=True)

        origin = world.bgp.origin_of(target)
        if origin is None:
            upstream = world.routers[world.vantage.upstream_router_id]
            reply = self._emit_error(
                upstream,
                self._router_error_source(upstream),
                ICMPv6Type.DESTINATION_UNREACHABLE,
                UnreachableCode.NO_ROUTE,
                time,
            )
            return ProbeResult(target, time, self.epoch, replies=_as_tuple(reply))

        hops = world.paths.get(origin, ())
        transit = len(hops)
        if hop_limit <= transit:
            if hop_limit < 1:
                return ProbeResult(target, time, self.epoch)
            hop = hops[hop_limit - 1]
            router = world.routers[hop.router_id]
            reply = self._emit_error(
                router,
                hop.interface,
                ICMPv6Type.TIME_EXCEEDED,
                TimeExceededCode.HOP_LIMIT_EXCEEDED,
                time,
            )
            return ProbeResult(
                target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit
            )

        remaining = hop_limit - transit
        match = world.resolution.longest_match(target)
        if match is None:
            return self._unassigned_space(target, time, origin, transit)

        entry = match[1]
        if entry.kind is EntryKind.SUBNET:
            return self._probe_subnet(target, time, entry.payload, transit)
        if entry.kind is EntryKind.ALIAS:
            return self._probe_alias(target, time, entry.payload, transit)
        if entry.kind is EntryKind.INFRA:
            return self._probe_infra(target, time, entry.payload, transit)
        return self._probe_loop(target, time, entry.payload, remaining, transit)

    def probe_batch(
        self,
        targets: list[int],
        times: list[float],
        *,
        hop_limit: int = 64,
        probe_ids: list[int] | None = None,
    ) -> list[ProbeResult]:
        """Send one Echo Request per target; bit-identical to calling
        :meth:`probe` once per ``(target, time, probe_id)`` in order.

        This is the scanner's hot path: per-probe Python overhead
        (attribute lookups, stat increments, dispatch plumbing) is hoisted
        out of the loop and amortised across the batch.  The routing
        dispatch below mirrors :meth:`probe` exactly; destination
        behaviours stay in the shared ``_probe_*`` helpers so the two
        paths cannot drift apart behaviourally.
        """
        world = self.world
        seed = world.seed
        loss = world.packet_loss
        epoch = self.epoch
        routers = world.routers
        origin_of = world.bgp.origin_of
        paths_get = world.paths.get
        resolve = world.resolution.longest_match
        upstream = routers[world.vantage.upstream_router_id]  # type: ignore[union-attr]
        upstream_source = self._router_error_source(upstream)
        subnet_kind = EntryKind.SUBNET
        alias_kind = EntryKind.ALIAS
        infra_kind = EntryKind.INFRA

        # Inlined loss draw: same digest stream as
        # stable_bool(seed, b"loss", loss, target, probe_id, epoch), with
        # the keyed hasher primed once and copied per probe.  Targets over
        # 62 bits (every real IPv6 address) contribute a second packed
        # word, exactly as stable_unit packs them.  Odd-shaped probe_ids
        # or epochs (>62 bits) fall back to the generic draw.
        loss_base = base_hasher(seed, _PURPOSE_LOSS)
        draw_loss = loss > 0.0
        pack3 = _PACK_LOSS_3.pack
        pack4 = _PACK_LOSS_4.pack
        epoch_word = epoch & _MASK63
        simple_epoch = 0 <= epoch and epoch.bit_length() <= 62

        results: list[ProbeResult] = []
        append = results.append
        probes = lost = 0
        for index, target in enumerate(targets):
            time = times[index]
            probe_id = probe_ids[index] if probe_ids is not None else 0
            probes += 1
            if draw_loss:
                if (
                    simple_epoch
                    and target >= 0
                    and 0 <= probe_id
                    and probe_id.bit_length() <= 62
                ):
                    hasher = loss_base.copy()
                    if target.bit_length() > 62:
                        hasher.update(
                            pack4(
                                target & _MASK63,
                                (target >> 62) & _MASK63,
                                probe_id,
                                epoch_word,
                            )
                        )
                    else:
                        hasher.update(pack3(target, probe_id, epoch_word))
                    lost_draw = (
                        int.from_bytes(hasher.digest(), "big") / _UNIT_SCALE
                        < loss
                    )
                else:
                    lost_draw = stable_bool(
                        seed, _PURPOSE_LOSS, loss, target, probe_id, epoch
                    )
                if lost_draw:
                    lost += 1
                    append(ProbeResult(target, time, epoch, lost=True))
                    continue

            origin = origin_of(target)
            if origin is None:
                reply = self._emit_error(
                    upstream,
                    upstream_source,
                    ICMPv6Type.DESTINATION_UNREACHABLE,
                    UnreachableCode.NO_ROUTE,
                    time,
                )
                append(
                    ProbeResult(
                        target, time, epoch, replies=_as_tuple(reply)
                    )
                )
                continue

            hops = paths_get(origin, ())
            transit = len(hops)
            if hop_limit <= transit:
                if hop_limit < 1:
                    append(ProbeResult(target, time, epoch))
                    continue
                hop = hops[hop_limit - 1]
                reply = self._emit_error(
                    routers[hop.router_id],
                    hop.interface,
                    ICMPv6Type.TIME_EXCEEDED,
                    TimeExceededCode.HOP_LIMIT_EXCEEDED,
                    time,
                )
                append(
                    ProbeResult(
                        target,
                        time,
                        epoch,
                        replies=_as_tuple(reply),
                        transit_hops=transit,
                    )
                )
                continue

            match = resolve(target)
            if match is None:
                append(self._unassigned_space(target, time, origin, transit))
                continue
            entry = match[1]
            kind = entry.kind
            if kind is subnet_kind:
                append(self._probe_subnet(target, time, entry.payload, transit))
            elif kind is alias_kind:
                append(self._probe_alias(target, time, entry.payload, transit))
            elif kind is infra_kind:
                append(self._probe_infra(target, time, entry.payload, transit))
            else:
                append(
                    self._probe_loop(
                        target, time, entry.payload, hop_limit - transit, transit
                    )
                )
        self.stats.probes += probes
        self.stats.lost += lost
        return results

    # ------------------------------------------------------------------ #
    # destination behaviours
    # ------------------------------------------------------------------ #

    def _probe_subnet(
        self, target: int, time: float, subnet: Subnet, transit: int
    ) -> ProbeResult:
        world = self.world
        if not self._subnet_alive(subnet):
            # Dead (or flaky-off) subnet: the interface is down but the
            # route usually lingers in the IGP, so the *last-hop* router
            # answers Address Unreachable from the subnet-facing interface
            # — a distinct source per dead subnet.  This is what makes the
            # error-IP population of the hitlist scan so large (Fig. 4).
            router = world.routers[subnet.router_id]
            reply = self._emit_error(
                router,
                subnet.router_interface,
                ICMPv6Type.DESTINATION_UNREACHABLE,
                UnreachableCode.ADDRESS_UNREACHABLE,
                time,
            )
            return ProbeResult(
                target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit
            )
        if subnet.aliased:
            # Aliased networks answer on *every* address — including the SRA
            # address itself, which is the alias filter's tell-tale.
            reply = Reply(target, ICMPv6Type.ECHO_REPLY, 0)
            self.stats.echo_replies += 1
            return ProbeResult(target, time, self.epoch, replies=(reply,), transit_hops=transit)

        router = world.routers[subnet.router_id]
        if target == subnet.sra_address:
            return self._probe_sra(target, time, subnet, router, transit)
        if target == subnet.router_interface:
            reply = self._direct_ping(router, subnet.router_interface)
            return ProbeResult(target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit)
        if target in subnet.hosts:
            if stable_bool(
                world.seed, _PURPOSE_HOST, 0.85, target, self.epoch
            ):
                self.stats.echo_replies += 1
                reply = Reply(target, ICMPv6Type.ECHO_REPLY, 0)
                return ProbeResult(target, time, self.epoch, replies=(reply,), transit_hops=transit)
            return ProbeResult(target, time, self.epoch, transit_hops=transit)
        # Unassigned address inside an active subnet.
        reply = self._emit_error(
            router,
            self._router_error_source(router, subnet.router_interface),
            ICMPv6Type.DESTINATION_UNREACHABLE,
            UnreachableCode.ADDRESS_UNREACHABLE,
            time,
        )
        return ProbeResult(target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit)

    def _probe_sra(
        self, target: int, time: float, subnet: Subnet, router: Router, transit: int
    ) -> ProbeResult:
        behavior = router.vendor.sra_behavior
        if behavior is SRABehavior.DROP:
            return ProbeResult(target, time, self.epoch, transit_hops=transit)
        if behavior is SRABehavior.ERROR:
            reply = self._emit_error(
                router,
                self._router_error_source(router, subnet.router_interface),
                ICMPv6Type.DESTINATION_UNREACHABLE,
                UnreachableCode.ADDRESS_UNREACHABLE,
                time,
            )
            return ProbeResult(
                target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit
            )
        source = self._sra_reply_source(router, subnet)
        self.stats.echo_replies += 1
        reply = Reply(source, ICMPv6Type.ECHO_REPLY, 0, router_id=router.router_id)
        return ProbeResult(target, time, self.epoch, replies=(reply,), transit_hops=transit)

    def _sra_reply_source(self, router: Router, subnet: Subnet) -> int:
        """The RFC says "its own full source address" — which interface that
        is differs between implementations (and is what makes AS attribution
        of SRA replies error-prone when peering-LAN addresses leak)."""
        if router.replies_from_peering and router.peering_lan_address is not None:
            return router.peering_lan_address
        if router.sra_from_primary:
            return router.loopback
        if router.unstable_reply_source and stable_bool(
            self.world.seed, _PURPOSE_FLIP, 0.5, router.router_id, self.epoch
        ):
            return router.loopback
        return subnet.router_interface

    def _probe_alias(
        self, target: int, time: float, region: AliasRegion, transit: int
    ) -> ProbeResult:
        self.stats.echo_replies += 1
        reply = Reply(target, ICMPv6Type.ECHO_REPLY, 0)
        return ProbeResult(target, time, self.epoch, replies=(reply,), transit_hops=transit)

    def _probe_infra(
        self, target: int, time: float, infra: InfraSubnet, transit: int
    ) -> ProbeResult:
        router_id = infra.interfaces.get(target)
        if router_id is not None:
            router = self.world.routers[router_id]
            reply = self._direct_ping(router, target)
            return ProbeResult(
                target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit
            )
        border = self._border_router(infra.asn)
        if border is None:
            return ProbeResult(target, time, self.epoch, transit_hops=transit)
        reply = self._emit_error(
            border,
            self._router_error_source(border),
            ICMPv6Type.DESTINATION_UNREACHABLE,
            UnreachableCode.ADDRESS_UNREACHABLE,
            time,
        )
        return ProbeResult(target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit)

    def _probe_loop(
        self,
        target: int,
        time: float,
        region: LoopRegion,
        remaining: int,
        transit: int,
    ) -> ProbeResult:
        """Customer<->provider ping-pong until the hop limit expires."""
        world = self.world
        self.stats.loops_hit += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_loop(region.customer_router_id, time)
        customer = world.routers[region.customer_router_id]
        if remaining < 1:
            return ProbeResult(target, time, self.epoch, looped=True, transit_hops=transit)
        # The packet ping-pongs customer<->provider; the Time Exceeded is
        # generated (and, with buggy firmware, massively replicated) at the
        # misconfigured customer edge router — the paper observes floods
        # "from the same router".
        victim = customer
        source = self._router_error_source(victim)
        amplification = self._loop_amplification(customer, remaining)
        if amplification > 1:
            # The firmware bug replicates packets in the fast path; the
            # resulting Time Exceeded flood bypasses the control-plane
            # rate limiter (this is what makes it dangerous).
            count = min(amplification, AMPLIFICATION_CAP)
            self.stats.error_replies += count
            self.stats.amplified_replies += count - 1
            reply = Reply(
                source,
                ICMPv6Type.TIME_EXCEEDED,
                TimeExceededCode.HOP_LIMIT_EXCEEDED,
                count=count,
                router_id=victim.router_id,
            )
            return ProbeResult(
                target,
                time,
                self.epoch,
                replies=(reply,),
                looped=True,
                amplification=count,
                transit_hops=transit,
            )
        reply = self._emit_error(
            victim,
            source,
            ICMPv6Type.TIME_EXCEEDED,
            TimeExceededCode.HOP_LIMIT_EXCEEDED,
            time,
        )
        return ProbeResult(
            target,
            time,
            self.epoch,
            replies=_as_tuple(reply),
            looped=True,
            amplification=1 if reply else 0,
            transit_hops=transit,
        )

    def _loop_amplification(self, customer: Router, remaining: int) -> int:
        factor = customer.replication_factor
        if factor <= 1.0:
            return 1
        cycles = remaining / 2.0
        try:
            amplification = factor**cycles
        except OverflowError:
            return AMPLIFICATION_CAP
        if amplification >= AMPLIFICATION_CAP:
            return AMPLIFICATION_CAP
        return max(1, round(amplification))

    def _unassigned_space(
        self, target: int, time: float, asn: int, transit: int
    ) -> ProbeResult:
        """Announced but unassigned space.

        The error originates at whatever *internal* router holds the
        closest covering route for the destination's /48 — deterministic
        per /48 (ISP internals aggregate hierarchically), so unassigned
        space spreads error sources across many router IPs, as observed.
        """
        info = self.world.ases.get(asn)
        if info is not None and info.filters_unroutable:
            return ProbeResult(target, time, self.epoch, transit_hops=transit)
        responsible = self._responsible_router(asn, target)
        if responsible is None:
            return ProbeResult(target, time, self.epoch, transit_hops=transit)
        if responsible.errors_from_primary and responsible.loopback:
            source = responsible.loopback
        else:
            # Customer-facing sub-interface of the aggregation router: a
            # distinct address per /56 region (point-to-point/VLAN links
            # carry addresses from the delegated space).  This is why
            # error sources in the /48 and /64 partition scans are so
            # numerous — and why most of them never answer a direct probe.
            source = ((target >> 72) << 72) | 0xFFFE
        reply = self._emit_error(
            responsible,
            source,
            ICMPv6Type.DESTINATION_UNREACHABLE,
            UnreachableCode.NO_ROUTE,
            time,
        )
        return ProbeResult(target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit)

    def _responsible_router(self, asn: int, target: int) -> Router | None:
        """The internal router whose aggregate covers the target's /56.

        ISP internals aggregate below the /48 level (per-PoP, per-BNG),
        so errors for the /64s of one /48 spread over several routers —
        which is why the paper's /64 partition scan discovers the most
        router IPs of all BGP-derived inputs (45 M, Table 2).
        """
        info = self.world.ases.get(asn)
        if info is None:
            return None
        if not info.router_ids:
            return self._border_router(asn)
        slash56 = target >> 72
        index = int(
            stable_unit(self.world.seed, b"aggroute", asn, slash56)
            * len(info.router_ids)
        )
        return self.world.routers[info.router_ids[index]]

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #

    def _border_router(self, asn: int) -> Router | None:
        info = self.world.ases.get(asn)
        if info is None or info.border_router_id is None:
            return None
        return self.world.routers[info.border_router_id]

    def _router_error_source(self, router: Router, hint: int | None = None) -> int:
        """Where a router sources its ICMP errors: the subnet-facing
        interface (``hint``) or, for primary-source policies, its loopback."""
        if router.errors_from_primary and router.loopback:
            return router.loopback
        if hint is not None:
            return hint
        if router.interface_addresses:
            return router.interface_addresses[0]
        return router.loopback

    def _direct_ping(self, router: Router, interface: int) -> Reply | None:
        """Behaviour for an Echo Request aimed at a router's own address."""
        if not router.answers_direct_ping:
            return None
        if not stable_bool(
            self.world.seed, _PURPOSE_DIRECT, 0.96, router.router_id, self.epoch
        ):
            return None
        self.stats.echo_replies += 1
        return Reply(
            interface, ICMPv6Type.ECHO_REPLY, 0, router_id=router.router_id
        )

    def _subnet_alive(self, subnet: Subnet) -> bool:
        if subnet.death_epoch is not None and self.epoch >= subnet.death_epoch:
            return False
        if subnet.flaky:
            return stable_bool(
                self.world.seed,
                _PURPOSE_FLAKY,
                0.55,
                subnet.prefix.network,
                self.epoch,
            )
        return True

    def _emit_error(
        self,
        router: Router,
        source: int,
        icmp_type: ICMPv6Type,
        code: int,
        time: float,
    ) -> Reply | None:
        """Originate an ICMPv6 error, subject to RFC 4443 rate limiting,
        the background-load on-off gate, and the router's unreachable-
        filtering policy ("no ip unreachables")."""
        if (
            icmp_type is ICMPv6Type.DESTINATION_UNREACHABLE
            and not router.emits_unreachables
        ):
            return None
        if not self._error_allowed(router, time):
            self.stats.suppressed_errors += 1
            return None
        self.stats.error_replies += 1
        return Reply(source, icmp_type, int(code), router_id=router.router_id)

    def error_allowed(self, router_id: int, time: float) -> bool:
        """Evaluate one rate-limit check by router id — the replay hook used
        when merging deferred-mode shards.  Calls for one router must arrive
        with non-decreasing timestamps, as during a live scan."""
        return self._error_allowed(self.world.routers[router_id], time)

    def _error_allowed(self, router: Router, time: float) -> bool:
        if self.defer_rate_limit:
            self.pending_checks.append((time, router.router_id))
            return True
        load = self._bg_load.get(router.router_id)
        if load is None:
            jitter = 0.5 + stable_unit(
                self.world.seed, _PURPOSE_BG_JITTER, router.router_id, self.epoch
            )
            load = min(0.95, router.background_error_load * jitter)
            self._bg_load[router.router_id] = load
        if load > 0.0:
            window = int(time / self.background_window)
            if stable_bool(
                self.world.seed,
                _PURPOSE_BG_WINDOW,
                load,
                router.router_id,
                self.epoch,
                window,
            ):
                telemetry = self.telemetry
                if telemetry is not None:
                    telemetry.on_suppressed(router.router_id, time)
                return False
        bucket = self._buckets.get(router.router_id)
        if bucket is None:
            vendor = router.vendor
            initial = vendor.error_burst * (
                1.0
                - stable_unit(
                    self.world.seed,
                    _PURPOSE_BG_JITTER,
                    router.router_id,
                    self.epoch,
                    1,
                )
                * load
            )
            bucket = TokenBucket(
                vendor.error_rate * (1.0 - load),
                vendor.error_burst,
                initial=initial,
            )
            self._buckets[router.router_id] = bucket
        allowed = bucket.allow(time)
        if not allowed:
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.on_suppressed(router.router_id, time)
        return allowed


def _as_tuple(reply: Reply | None) -> tuple[Reply, ...]:
    return () if reply is None else (reply,)
