"""Packet-level behaviour of the simulated Internet.

:class:`SimulationEngine` answers one question: *given a probe sent from
the vantage point to destination D at virtual time t in scan epoch e, which
ICMPv6 packets come back?*  It walks the probe hop by hop:

1. BGP longest-prefix match.  Unrouted destinations draw a (rate-limited)
   "no route" error from the vantage's upstream router.
2. Transit traversal.  Each AS on the vantage→origin path costs one hop;
   a hop limit that expires in transit yields a Time Exceeded from that
   transit router — this is also how the traceroute datasets are built.
3. Destination resolution via the world's longest-prefix index:
   an active subnet (SRA semantics, hosts, router interfaces, unassigned
   addresses), an aliased region, an infrastructure subnet, a routing-loop
   region (with the amplification firmware bug), or — default — unassigned
   announced space answered by the origin's border router.

ICMPv6 *error* messages pass through the emitting router's RFC 4443 token
bucket plus an "on-off" background-load gate (Ravaioli et al. observed
routers alternating between answering and silence under cross traffic);
Echo replies are never rate limited, which is exactly the asymmetry SRA
probing exploits.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass, field
from typing import Sequence

from ..addr.ipv6 import split_into
from ..packet.icmpv6 import ICMPv6Type, TimeExceededCode, UnreachableCode
from ..topology.entities import (
    AliasRegion,
    EntryKind,
    InfraSubnet,
    LoopRegion,
    Router,
    Subnet,
    World,
)
from ..topology.profiles import SRABehavior
from .ratelimit import TokenBucket
from .stochastic import base_hasher, stable_bool, stable_unit

# Cap on materialised reply counts for amplified loops; counts above this
# are reported truthfully in `Reply.count` but the engine never enumerates.
AMPLIFICATION_CAP = 1 << 22  # ~4.2M replies per probe

_PURPOSE_LOSS = b"loss"
# Packed-word layouts for the inlined draws (see probe_columns): the loss
# keys are (target, probe_id, epoch) and the behaviour draws are keyed
# (key, epoch); a key over 62 bits contributes two words, exactly as
# stable_unit would pack it.
_PACK_2 = struct.Struct(">2q")
_PACK_LOSS_3 = struct.Struct(">3q")
_PACK_LOSS_4 = struct.Struct(">4q")
_MASK63 = 0x7FFFFFFFFFFFFFFF
_MASK64 = (1 << 64) - 1
_UNIT_SCALE = float(1 << 64)
_PURPOSE_FLAKY = b"flaky"
_PURPOSE_HOST = b"host"
_PURPOSE_DIRECT = b"direct"
_PURPOSE_FLIP = b"flip"
_PURPOSE_BG_WINDOW = b"bgwin"
_PURPOSE_BG_JITTER = b"bgjit"


@dataclass(slots=True)
class Reply:
    """One (possibly replicated) ICMPv6 reply arriving at the vantage.

    Treated as immutable by convention; not ``frozen=True`` because the
    frozen ``__init__`` funnels every field through ``object.__setattr__``,
    which costs ~3x on this allocation-heavy hot path.
    """

    source: int
    icmp_type: ICMPv6Type
    code: int
    count: int = 1
    router_id: int | None = None

    @property
    def is_echo(self) -> bool:
        return self.icmp_type is ICMPv6Type.ECHO_REPLY

    @property
    def is_error(self) -> bool:
        return self.icmp_type.is_error


@dataclass(slots=True)
class ProbeResult:
    """Everything a probe produced.

    Immutable by convention (see :class:`Reply` for why not ``frozen``).
    """

    target: int
    time: float
    epoch: int
    replies: tuple[Reply, ...] = ()
    lost: bool = False
    looped: bool = False
    amplification: int = 0
    transit_hops: int = 0

    @property
    def replied(self) -> bool:
        return bool(self.replies)


@dataclass(slots=True)
class EngineStats:
    """Aggregate counters over an engine's lifetime (scan epoch)."""

    probes: int = 0
    lost: int = 0
    echo_replies: int = 0
    error_replies: int = 0
    suppressed_errors: int = 0
    loops_hit: int = 0
    amplified_replies: int = 0


# ProbeColumns.flags bits.  Exactly one of LOST / (LOOPED|REPLY in any
# combination) describes a row; a zero byte means "probed, no reply".
FLAG_LOST = 1
FLAG_LOOPED = 2
FLAG_REPLY = 4

# Column prefill patterns (see ProbeColumns.reserve): the kernel only
# writes the minority values — count on amplified loops, icmp_type/code
# on error replies whose code is non-zero.
_ECHO_BYTE = bytes([int(ICMPv6Type.ECHO_REPLY)])
_ONE_Q = array("Q", [1]).tobytes()


class ProbeColumns:
    """One probe batch as packed parallel columns (structure-of-arrays).

    The columnar kernel (:meth:`SimulationEngine.probe_columns`) fills one
    of these per batch instead of allocating a ``ProbeResult``/``Reply``
    pair per probe.  Input columns (``targets``, ``times``) are borrowed
    references to the caller's sequences; result columns are compact
    ``array`` buffers reused across batches via ``out=``.

    Column validity contract, per row ``i``:

    * ``flags[i]`` is always valid (``FLAG_LOST`` / ``FLAG_LOOPED`` /
      ``FLAG_REPLY`` bits).
    * ``transit[i]`` is valid whenever ``FLAG_LOST`` is clear.
    * ``source_hi/source_lo`` (the reply source as 64-bit halves),
      ``icmp_type``, ``code``, ``count`` and ``router_id`` (``-1`` encodes
      "unknown router") are valid only when ``FLAG_REPLY`` is set.

    Reused buffers never leak stale rows because every kernel path writes
    the flags byte for every probe of the batch.
    """

    __slots__ = (
        "n",
        "targets",
        "times",
        "flags",
        "source_hi",
        "source_lo",
        "icmp_type",
        "code",
        "count",
        "router_id",
        "transit",
        "_zero_fill",
        "_echo_fill",
        "_ones_fill",
    )

    def __init__(self) -> None:
        self.n = 0
        self.targets: Sequence[int] = ()
        self.times: Sequence[float] = ()
        self.flags = array("B")
        self.source_hi = array("Q")
        self.source_lo = array("Q")
        self.icmp_type = array("B")
        self.code = array("B")
        self.count = array("Q")
        self.router_id = array("q")
        self.transit = array("H")
        self._zero_fill = b""
        self._echo_fill = b""
        self._ones_fill = b""

    def reserve(self, n: int) -> None:
        """Size the result columns for ``n`` rows and prefill the
        constant-majority values: ``count=1``, ``code=0``,
        ``icmp_type=ECHO_REPLY``.  The kernel then writes only the
        minority values (amplified counts, error types/codes), which is
        most of what makes an echo row four column writes instead of
        seven.  Other columns are left undefined until written."""
        self.n = n
        have = len(self.flags)
        if have < n:
            grow = n - have
            self.flags.frombytes(bytes(grow))
            self.icmp_type.frombytes(bytes(grow))
            self.code.frombytes(bytes(grow))
            self.source_hi.frombytes(bytes(8 * grow))
            self.source_lo.frombytes(bytes(8 * grow))
            self.count.frombytes(bytes(8 * grow))
            self.router_id.frombytes(bytes(8 * grow))
            self.transit.frombytes(bytes(2 * grow))
            cap = len(self.flags)
            self._zero_fill = bytes(cap)
            self._echo_fill = _ECHO_BYTE * cap
            self._ones_fill = _ONE_Q * cap
        memoryview(self.icmp_type)[:n] = self._echo_fill[:n]
        memoryview(self.code)[:n] = self._zero_fill[:n]
        memoryview(self.count).cast("B")[: 8 * n] = self._ones_fill[: 8 * n]

    def source(self, i: int) -> int:
        """The reply source address of row ``i`` as a 128-bit int."""
        return (self.source_hi[i] << 64) | self.source_lo[i]

    def target_pairs(self) -> tuple[array, array]:
        """The batch targets as hi/lo ``array('Q')`` int-pair columns —
        the packing the shared-memory shard transport ships."""
        hi = array("Q", bytes(8 * self.n))
        lo = array("Q", bytes(8 * self.n))
        split_into(self.targets, range(self.n), hi, lo)
        return hi, lo


class SimulationEngine:
    """Stateful per-epoch simulation: owns rate-limiter buckets.

    Create one engine per scan (or call :meth:`new_epoch` between scans);
    token-bucket state deliberately persists *within* an epoch so that
    scan pacing interacts with rate limiting the way it does on real
    routers.
    """

    def __init__(
        self,
        world: World,
        *,
        epoch: int = 0,
        background_window: float = 1.0,
        defer_rate_limit: bool = False,
    ) -> None:
        if world.vantage is None:
            raise ValueError("world has no vantage point")
        self.world = world
        self.epoch = epoch
        self.background_window = background_window
        self.stats = EngineStats()
        # Deferred mode: `_error_allowed` records (time, router_id) and lets
        # every error through.  A sharded scan runs each shard deferred, then
        # replays the recorded checks in global time order on a fresh engine —
        # the rate limiter is the engine's only cross-probe mutable state, so
        # the replay reproduces the serial outcome exactly (scanner/sharded).
        self.defer_rate_limit = defer_rate_limit
        self.pending_checks: list[tuple[float, int]] = []
        self._buckets: dict[int, TokenBucket] = {}
        self._bg_load: dict[int, float] = {}
        # Memoised background-window draws, keyed (router_id, window).
        # The draw is a pure keyed hash of exactly that pair (plus the
        # epoch, which scopes the cache via new_epoch), so caching it
        # changes nothing observable — it only spares one blake2 digest
        # per error attempt within a window.
        self._bg_window: dict[tuple[int, int], bool] = {}
        # Optional hot-path observability hook (duck-typed: anything with
        # on_loop(router_id, time) / on_suppressed(router_id, time), e.g.
        # repro.telemetry.HotPathCollector).  Scanners attach one for the
        # duration of an instrumented scan.  Both call sites sit on rare
        # branches (loop entry, error suppression), so a disabled engine
        # pays a single `is not None` check there and nothing on the
        # per-probe fast path.
        self.telemetry = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def new_epoch(self, epoch: int) -> None:
        """Start a new scan epoch: reset buckets, caches, and counters."""
        self.epoch = epoch
        self.stats = EngineStats()
        self.pending_checks.clear()
        self._buckets.clear()
        self._bg_load.clear()
        self._bg_window.clear()

    def as_backend(self):
        """This engine behind the scanner's probe-backend seam.

        Returns a :class:`~repro.scanner.backends.sim.SimBackend`
        wrapping ``self`` (imported locally: the engine must stay
        importable without the scanner package).
        """
        from ..scanner.backends.sim import SimBackend

        return SimBackend(self)

    # ------------------------------------------------------------------ #
    # the probe path
    # ------------------------------------------------------------------ #

    def probe(
        self,
        target: int,
        time: float,
        *,
        hop_limit: int = 64,
        probe_id: int = 0,
    ) -> ProbeResult:
        """Send one ICMPv6 Echo Request from the vantage to ``target``."""
        world = self.world
        self.stats.probes += 1
        if stable_bool(
            world.seed, _PURPOSE_LOSS, world.packet_loss, target, probe_id, self.epoch
        ):
            self.stats.lost += 1
            return ProbeResult(target, time, self.epoch, lost=True)

        origin = world.bgp.origin_of(target)
        if origin is None:
            upstream = world.routers[world.vantage.upstream_router_id]
            reply = self._emit_error(
                upstream,
                self._router_error_source(upstream),
                ICMPv6Type.DESTINATION_UNREACHABLE,
                UnreachableCode.NO_ROUTE,
                time,
            )
            return ProbeResult(target, time, self.epoch, replies=_as_tuple(reply))

        hops = world.paths.get(origin, ())
        transit = len(hops)
        if hop_limit <= transit:
            if hop_limit < 1:
                return ProbeResult(target, time, self.epoch)
            hop = hops[hop_limit - 1]
            router = world.routers[hop.router_id]
            reply = self._emit_error(
                router,
                hop.interface,
                ICMPv6Type.TIME_EXCEEDED,
                TimeExceededCode.HOP_LIMIT_EXCEEDED,
                time,
            )
            return ProbeResult(
                target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit
            )

        remaining = hop_limit - transit
        match = world.resolution.longest_match(target)
        if match is None:
            return self._unassigned_space(target, time, origin, transit)

        entry = match[1]
        if entry.kind is EntryKind.SUBNET:
            return self._probe_subnet(target, time, entry.payload, transit)
        if entry.kind is EntryKind.ALIAS:
            return self._probe_alias(target, time, entry.payload, transit)
        if entry.kind is EntryKind.INFRA:
            return self._probe_infra(target, time, entry.payload, transit)
        return self._probe_loop(target, time, entry.payload, remaining, transit)

    def probe_columns(
        self,
        targets: Sequence[int],
        times: Sequence[float],
        *,
        hop_limit: int = 64,
        probe_ids: Sequence[int] | None = None,
        out: ProbeColumns | None = None,
    ) -> ProbeColumns:
        """Send one Echo Request per target, filling packed result columns.

        This is the scanner's hot path — the single batched kernel behind
        :meth:`probe_batch`.  Instead of one ``ProbeResult``/``Reply``
        allocation per probe it writes parallel ``array`` columns, in
        three phases that together stay bit-identical to calling
        :meth:`probe` once per ``(target, time, probe_id)`` in order:

        A. *Loss draws*, in probe order — pure keyed-hash draws with the
           hasher primed once per batch and copied per probe.
        B. *Routing lookups*, in block-sorted order — live rows are
           sorted by target and run through the vectorised LPMs
           (``longest_match_batch``), so one BGP walk and one resolution
           walk serve an entire run of same-block targets.  Lookups are
           pure, so reordering cannot change results.
        C. *Effects dispatch*, back in probe order — everything stateful
           (token buckets, the background-load gate, stats, telemetry)
           runs here, in exactly the order the serial path would, because
           probe times are non-decreasing in probe order.
        """
        world = self.world
        seed = world.seed
        loss = world.packet_loss
        epoch = self.epoch
        n = len(targets)
        cols = out if out is not None else ProbeColumns()
        cols.reserve(n)
        cols.targets = targets
        cols.times = times
        flags = cols.flags

        # -------- phase A: loss draws, probe order -------------------- #
        # Same digest stream as stable_bool(seed, b"loss", loss, target,
        # probe_id, epoch); targets over 62 bits (every real IPv6
        # address) contribute a second packed word, exactly as
        # stable_unit packs them.  Odd-shaped probe_ids or epochs fall
        # back to the generic draw.
        pack2 = _PACK_2.pack
        pack3 = _PACK_LOSS_3.pack
        pack4 = _PACK_LOSS_4.pack
        epoch_word = epoch & _MASK63
        simple_epoch = 0 <= epoch and epoch.bit_length() <= 62
        lost_count = 0
        if loss > 0.0:
            loss_base = base_hasher(seed, _PURPOSE_LOSS)
            for i in range(n):
                target = targets[i]
                probe_id = probe_ids[i] if probe_ids is not None else 0
                if (
                    simple_epoch
                    and target >= 0
                    and 0 <= probe_id
                    and probe_id.bit_length() <= 62
                ):
                    hasher = loss_base.copy()
                    if target.bit_length() > 62:
                        hasher.update(
                            pack4(
                                target & _MASK63,
                                (target >> 62) & _MASK63,
                                probe_id,
                                epoch_word,
                            )
                        )
                    else:
                        hasher.update(pack3(target, probe_id, epoch_word))
                    lost_draw = (
                        int.from_bytes(hasher.digest(), "big") / _UNIT_SCALE
                        < loss
                    )
                else:
                    lost_draw = stable_bool(
                        seed, _PURPOSE_LOSS, loss, target, probe_id, epoch
                    )
                if lost_draw:
                    flags[i] = FLAG_LOST
                    lost_count += 1
                else:
                    flags[i] = 0
        else:
            memoryview(flags)[:n] = cols._zero_fill[:n]
        self.stats.probes += n
        self.stats.lost += lost_count

        # -------- phase B: vectorised lookups, block-sorted ----------- #
        if lost_count:
            live = [i for i in range(n) if not flags[i]]
        else:
            live = list(range(n))
        live.sort(key=targets.__getitem__)
        paths_get = world.paths.get
        transit_col = cols.transit
        matches: list = [None] * n
        world.bgp.lpm.longest_match_batch(targets, live, matches)
        resolve_rows: list[int] = []
        if hop_limit >= 1:
            rappend = resolve_rows.append
            for i in live:
                match = matches[i]
                if match is not None:
                    transit = len(paths_get(match[1], ()))
                    transit_col[i] = transit
                    if hop_limit > transit:
                        rappend(i)
        else:
            # probe() reports transit_hops=0 when the hop limit is spent
            # before the first hop; unrouted rows are overwritten in C.
            for i in live:
                transit_col[i] = 0
        entries: list = [None] * n
        world.resolution.longest_match_batch(targets, resolve_rows, entries)

        # -------- phase C: effects dispatch, probe order -------------- #
        routers = world.routers
        ases_get = world.ases.get
        upstream = routers[world.vantage.upstream_router_id]  # type: ignore[union-attr]
        upstream_source = self._router_error_source(upstream)
        upstream_hi = upstream_source >> 64
        upstream_lo = upstream_source & _MASK64
        upstream_id = upstream.router_id
        subnet_kind = EntryKind.SUBNET
        alias_kind = EntryKind.ALIAS
        infra_kind = EntryKind.INFRA
        sra_drop = SRABehavior.DROP
        sra_error = SRABehavior.ERROR
        stats = self.stats
        telemetry = self.telemetry
        error_allowed = self._error_reply_allowed
        source_hi = cols.source_hi
        source_lo = cols.source_lo
        icmp_col = cols.icmp_type
        code_col = cols.code
        count_col = cols.count
        rid_col = cols.router_id
        # NO_ROUTE and HOP_LIMIT_EXCEEDED are both 0, ECHO_REPLY is the
        # prefill — only ADDRESS_UNREACHABLE rows write a code value.
        icmp_unreach = int(ICMPv6Type.DESTINATION_UNREACHABLE)
        icmp_exceeded = int(ICMPv6Type.TIME_EXCEEDED)
        code_addr_unreach = int(UnreachableCode.ADDRESS_UNREACHABLE)
        unit_scale = _UNIT_SCALE
        mask63 = _MASK63

        if simple_epoch:
            host_base = base_hasher(seed, _PURPOSE_HOST)
            flaky_base = base_hasher(seed, _PURPOSE_FLAKY)
            direct_base = base_hasher(seed, _PURPOSE_DIRECT)
            flip_base = base_hasher(seed, _PURPOSE_FLIP)

            def draw(base, purpose, probability, key):
                # Inlined stable_bool(seed, purpose, probability, key,
                # epoch): identical digest stream, minus the generic
                # packing loop.  Negative keys take the generic path.
                if key >= 0:
                    hasher = base.copy()
                    if key.bit_length() > 62:
                        hasher.update(
                            pack3(key & mask63, (key >> 62) & mask63, epoch_word)
                        )
                    else:
                        hasher.update(pack2(key, epoch_word))
                    return (
                        int.from_bytes(hasher.digest(), "big") / unit_scale
                        < probability
                    )
                return stable_bool(seed, purpose, probability, key, epoch)

        else:
            host_base = flaky_base = direct_base = flip_base = None

            def draw(base, purpose, probability, key):
                return stable_bool(seed, purpose, probability, key, epoch)

        # Per-batch subnet plans: everything about a subnet's behaviour
        # that is constant within an epoch — liveness (death epoch +
        # flaky draw), the SRA behaviour and its reply source (including
        # the unstable-source flip), the direct-ping draw, and the error
        # source — computed once per subnet per batch.  All of it is pure
        # (keyed-hash draws carry no state), so hoisting changes nothing
        # observable; the cache lives only for this call, so topology
        # mutations between batches are always picked up.
        #   dead plan:  (False, router, src_hi, src_lo, rid)
        #   alive plan: (True, router, aliased, action, ans_hi, ans_lo,
        #                direct_ok, err_hi, err_lo, rid)
        #   action: 0 = DROP, 1 = ERROR, 2 = ANSWER
        subnet_plans: dict[int, tuple] = {}
        plans_get = subnet_plans.get

        echo_replies = 0
        for i in range(n):
            if flags[i]:  # only FLAG_LOST is set at this point
                continue
            target = targets[i]
            match = matches[i]
            if match is None:
                transit_col[i] = 0
                if error_allowed(upstream, times[i], True):
                    flags[i] = FLAG_REPLY
                    source_hi[i] = upstream_hi
                    source_lo[i] = upstream_lo
                    icmp_col[i] = icmp_unreach
                    # code stays 0 (NO_ROUTE), count stays 1 (prefilled)
                    rid_col[i] = upstream_id
                continue

            transit = transit_col[i]
            if hop_limit <= transit:
                if hop_limit < 1:
                    continue
                hop = paths_get(match[1], ())[hop_limit - 1]
                router = routers[hop.router_id]
                if error_allowed(router, times[i], False):
                    flags[i] = FLAG_REPLY
                    source = hop.interface
                    source_hi[i] = source >> 64
                    source_lo[i] = source & _MASK64
                    icmp_col[i] = icmp_exceeded
                    # code stays 0 (HOP_LIMIT_EXCEEDED), count stays 1
                    rid_col[i] = router.router_id
                continue

            entry_match = entries[i]
            if entry_match is None:
                # Announced but unassigned space (see _unassigned_space).
                asn = match[1]
                info = ases_get(asn)
                if info is not None and info.filters_unroutable:
                    continue
                responsible = self._responsible_router(asn, target)
                if responsible is None:
                    continue
                if responsible.errors_from_primary and responsible.loopback:
                    source = responsible.loopback
                else:
                    source = ((target >> 72) << 72) | 0xFFFE
                if error_allowed(responsible, times[i], True):
                    flags[i] = FLAG_REPLY
                    source_hi[i] = source >> 64
                    source_lo[i] = source & _MASK64
                    icmp_col[i] = icmp_unreach
                    # code stays 0 (NO_ROUTE), count stays 1 (prefilled)
                    rid_col[i] = responsible.router_id
                continue

            entry = entry_match[1]
            kind = entry.kind
            if kind is subnet_kind:
                subnet = entry.payload
                plan = plans_get(id(subnet))
                if plan is None:
                    death = subnet.death_epoch
                    router = routers[subnet.router_id]
                    if (death is not None and epoch >= death) or (
                        subnet.flaky
                        and not draw(
                            flaky_base,
                            _PURPOSE_FLAKY,
                            0.55,
                            subnet.prefix.network,
                        )
                    ):
                        # Dead (or flaky-off): the last-hop router answers
                        # Address Unreachable from the subnet-facing
                        # interface.
                        iface = subnet.router_interface
                        plan = (
                            False,
                            router,
                            iface >> 64,
                            iface & _MASK64,
                            router.router_id,
                        )
                    else:
                        behavior = router.vendor.sra_behavior
                        ans_hi = ans_lo = 0
                        if behavior is sra_drop:
                            action = 0
                        elif behavior is sra_error:
                            action = 1
                        else:
                            action = 2
                            # Source selection per _sra_reply_source.
                            if (
                                router.replies_from_peering
                                and router.peering_lan_address is not None
                            ):
                                source = router.peering_lan_address
                            elif router.sra_from_primary:
                                source = router.loopback
                            elif router.unstable_reply_source and draw(
                                flip_base, _PURPOSE_FLIP, 0.5, router.router_id
                            ):
                                source = router.loopback
                            else:
                                source = subnet.router_interface
                            ans_hi = source >> 64
                            ans_lo = source & _MASK64
                        err = self._router_error_source(
                            router, subnet.router_interface
                        )
                        plan = (
                            True,
                            router,
                            subnet.aliased,
                            action,
                            ans_hi,
                            ans_lo,
                            router.answers_direct_ping
                            and draw(
                                direct_base,
                                _PURPOSE_DIRECT,
                                0.96,
                                router.router_id,
                            ),
                            err >> 64,
                            err & _MASK64,
                            router.router_id,
                        )
                    subnet_plans[id(subnet)] = plan
                if not plan[0]:
                    if error_allowed(plan[1], times[i], True):
                        flags[i] = FLAG_REPLY
                        source_hi[i] = plan[2]
                        source_lo[i] = plan[3]
                        icmp_col[i] = icmp_unreach
                        code_col[i] = code_addr_unreach
                        rid_col[i] = plan[4]
                    continue
                if plan[2]:  # aliased: every address echoes back
                    echo_replies += 1
                    flags[i] = FLAG_REPLY
                    source_hi[i] = target >> 64
                    source_lo[i] = target & _MASK64
                    rid_col[i] = -1
                    continue
                if target == subnet.sra_address:
                    action = plan[3]
                    if action == 2:  # ANSWER
                        echo_replies += 1
                        flags[i] = FLAG_REPLY
                        source_hi[i] = plan[4]
                        source_lo[i] = plan[5]
                        rid_col[i] = plan[9]
                    elif action == 1:  # ERROR
                        if error_allowed(plan[1], times[i], True):
                            flags[i] = FLAG_REPLY
                            source_hi[i] = plan[7]
                            source_lo[i] = plan[8]
                            icmp_col[i] = icmp_unreach
                            code_col[i] = code_addr_unreach
                            rid_col[i] = plan[9]
                    continue
                if target == subnet.router_interface:
                    if plan[6]:
                        echo_replies += 1
                        flags[i] = FLAG_REPLY
                        source_hi[i] = target >> 64
                        source_lo[i] = target & _MASK64
                        rid_col[i] = plan[9]
                    continue
                if target in subnet.hosts:
                    if draw(host_base, _PURPOSE_HOST, 0.85, target):
                        echo_replies += 1
                        flags[i] = FLAG_REPLY
                        source_hi[i] = target >> 64
                        source_lo[i] = target & _MASK64
                        rid_col[i] = -1
                    continue
                # Unassigned address inside an active subnet.
                if error_allowed(plan[1], times[i], True):
                    flags[i] = FLAG_REPLY
                    source_hi[i] = plan[7]
                    source_lo[i] = plan[8]
                    icmp_col[i] = icmp_unreach
                    code_col[i] = code_addr_unreach
                    rid_col[i] = plan[9]
                continue
            if kind is alias_kind:
                echo_replies += 1
                flags[i] = FLAG_REPLY
                source_hi[i] = target >> 64
                source_lo[i] = target & _MASK64
                rid_col[i] = -1
                continue
            if kind is infra_kind:
                infra = entry.payload
                router_id = infra.interfaces.get(target)
                if router_id is not None:
                    router = routers[router_id]
                    if router.answers_direct_ping and draw(
                        direct_base, _PURPOSE_DIRECT, 0.96, router.router_id
                    ):
                        echo_replies += 1
                        flags[i] = FLAG_REPLY
                        source_hi[i] = target >> 64
                        source_lo[i] = target & _MASK64
                        rid_col[i] = router.router_id
                    continue
                border = self._border_router(infra.asn)
                if border is None:
                    continue
                if error_allowed(border, times[i], True):
                    flags[i] = FLAG_REPLY
                    source = self._router_error_source(border)
                    source_hi[i] = source >> 64
                    source_lo[i] = source & _MASK64
                    icmp_col[i] = icmp_unreach
                    code_col[i] = code_addr_unreach
                    rid_col[i] = border.router_id
                continue
            # Routing-loop region (see _probe_loop).
            region = entry.payload
            stats.loops_hit += 1
            time = times[i]
            if telemetry is not None:
                telemetry.on_loop(region.customer_router_id, time)
            customer = routers[region.customer_router_id]
            remaining = hop_limit - transit
            if remaining < 1:
                flags[i] = FLAG_LOOPED
                continue
            source = self._router_error_source(customer)
            amplification = self._loop_amplification(customer, remaining)
            if amplification > 1:
                count = min(amplification, AMPLIFICATION_CAP)
                stats.error_replies += count
                stats.amplified_replies += count - 1
                flags[i] = FLAG_LOOPED | FLAG_REPLY
                source_hi[i] = source >> 64
                source_lo[i] = source & _MASK64
                icmp_col[i] = icmp_exceeded
                # code stays 0 (HOP_LIMIT_EXCEEDED)
                count_col[i] = count
                rid_col[i] = customer.router_id
            elif error_allowed(customer, time, False):
                flags[i] = FLAG_LOOPED | FLAG_REPLY
                source_hi[i] = source >> 64
                source_lo[i] = source & _MASK64
                icmp_col[i] = icmp_exceeded
                # code stays 0 (HOP_LIMIT_EXCEEDED), count stays 1
                rid_col[i] = customer.router_id
            else:
                flags[i] = FLAG_LOOPED

        stats.echo_replies += echo_replies
        return cols

    def probe_batch(
        self,
        targets: list[int],
        times: list[float],
        *,
        hop_limit: int = 64,
        probe_ids: list[int] | None = None,
    ) -> list[ProbeResult]:
        """Send one Echo Request per target; bit-identical to calling
        :meth:`probe` once per ``(target, time, probe_id)`` in order.

        Compatibility adapter over :meth:`probe_columns` — the columnar
        kernel is the single batched implementation; this reconstructs the
        per-probe dataclasses from its packed result columns.
        """
        cols = self.probe_columns(
            targets, times, hop_limit=hop_limit, probe_ids=probe_ids
        )
        epoch = self.epoch
        flags = cols.flags
        source_hi = cols.source_hi
        source_lo = cols.source_lo
        icmp_col = cols.icmp_type
        code_col = cols.code
        count_col = cols.count
        rid_col = cols.router_id
        transit_col = cols.transit
        results: list[ProbeResult] = []
        append = results.append
        for i in range(len(targets)):
            f = flags[i]
            if f & FLAG_LOST:
                append(ProbeResult(targets[i], times[i], epoch, lost=True))
                continue
            looped = bool(f & FLAG_LOOPED)
            if f & FLAG_REPLY:
                rid = rid_col[i]
                count = count_col[i]
                reply = Reply(
                    (source_hi[i] << 64) | source_lo[i],
                    ICMPv6Type(icmp_col[i]),
                    code_col[i],
                    count=count,
                    router_id=None if rid < 0 else rid,
                )
                append(
                    ProbeResult(
                        targets[i],
                        times[i],
                        epoch,
                        replies=(reply,),
                        looped=looped,
                        amplification=count if looped else 0,
                        transit_hops=transit_col[i],
                    )
                )
            else:
                append(
                    ProbeResult(
                        targets[i],
                        times[i],
                        epoch,
                        looped=looped,
                        transit_hops=transit_col[i],
                    )
                )
        return results

    # ------------------------------------------------------------------ #
    # destination behaviours
    # ------------------------------------------------------------------ #

    def _probe_subnet(
        self, target: int, time: float, subnet: Subnet, transit: int
    ) -> ProbeResult:
        world = self.world
        if not self._subnet_alive(subnet):
            # Dead (or flaky-off) subnet: the interface is down but the
            # route usually lingers in the IGP, so the *last-hop* router
            # answers Address Unreachable from the subnet-facing interface
            # — a distinct source per dead subnet.  This is what makes the
            # error-IP population of the hitlist scan so large (Fig. 4).
            router = world.routers[subnet.router_id]
            reply = self._emit_error(
                router,
                subnet.router_interface,
                ICMPv6Type.DESTINATION_UNREACHABLE,
                UnreachableCode.ADDRESS_UNREACHABLE,
                time,
            )
            return ProbeResult(
                target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit
            )
        if subnet.aliased:
            # Aliased networks answer on *every* address — including the SRA
            # address itself, which is the alias filter's tell-tale.
            reply = Reply(target, ICMPv6Type.ECHO_REPLY, 0)
            self.stats.echo_replies += 1
            return ProbeResult(target, time, self.epoch, replies=(reply,), transit_hops=transit)

        router = world.routers[subnet.router_id]
        if target == subnet.sra_address:
            return self._probe_sra(target, time, subnet, router, transit)
        if target == subnet.router_interface:
            reply = self._direct_ping(router, subnet.router_interface)
            return ProbeResult(target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit)
        if target in subnet.hosts:
            if stable_bool(
                world.seed, _PURPOSE_HOST, 0.85, target, self.epoch
            ):
                self.stats.echo_replies += 1
                reply = Reply(target, ICMPv6Type.ECHO_REPLY, 0)
                return ProbeResult(target, time, self.epoch, replies=(reply,), transit_hops=transit)
            return ProbeResult(target, time, self.epoch, transit_hops=transit)
        # Unassigned address inside an active subnet.
        reply = self._emit_error(
            router,
            self._router_error_source(router, subnet.router_interface),
            ICMPv6Type.DESTINATION_UNREACHABLE,
            UnreachableCode.ADDRESS_UNREACHABLE,
            time,
        )
        return ProbeResult(target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit)

    def _probe_sra(
        self, target: int, time: float, subnet: Subnet, router: Router, transit: int
    ) -> ProbeResult:
        behavior = router.vendor.sra_behavior
        if behavior is SRABehavior.DROP:
            return ProbeResult(target, time, self.epoch, transit_hops=transit)
        if behavior is SRABehavior.ERROR:
            reply = self._emit_error(
                router,
                self._router_error_source(router, subnet.router_interface),
                ICMPv6Type.DESTINATION_UNREACHABLE,
                UnreachableCode.ADDRESS_UNREACHABLE,
                time,
            )
            return ProbeResult(
                target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit
            )
        source = self._sra_reply_source(router, subnet)
        self.stats.echo_replies += 1
        reply = Reply(source, ICMPv6Type.ECHO_REPLY, 0, router_id=router.router_id)
        return ProbeResult(target, time, self.epoch, replies=(reply,), transit_hops=transit)

    def _sra_reply_source(self, router: Router, subnet: Subnet) -> int:
        """The RFC says "its own full source address" — which interface that
        is differs between implementations (and is what makes AS attribution
        of SRA replies error-prone when peering-LAN addresses leak)."""
        if router.replies_from_peering and router.peering_lan_address is not None:
            return router.peering_lan_address
        if router.sra_from_primary:
            return router.loopback
        if router.unstable_reply_source and stable_bool(
            self.world.seed, _PURPOSE_FLIP, 0.5, router.router_id, self.epoch
        ):
            return router.loopback
        return subnet.router_interface

    def _probe_alias(
        self, target: int, time: float, region: AliasRegion, transit: int
    ) -> ProbeResult:
        self.stats.echo_replies += 1
        reply = Reply(target, ICMPv6Type.ECHO_REPLY, 0)
        return ProbeResult(target, time, self.epoch, replies=(reply,), transit_hops=transit)

    def _probe_infra(
        self, target: int, time: float, infra: InfraSubnet, transit: int
    ) -> ProbeResult:
        router_id = infra.interfaces.get(target)
        if router_id is not None:
            router = self.world.routers[router_id]
            reply = self._direct_ping(router, target)
            return ProbeResult(
                target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit
            )
        border = self._border_router(infra.asn)
        if border is None:
            return ProbeResult(target, time, self.epoch, transit_hops=transit)
        reply = self._emit_error(
            border,
            self._router_error_source(border),
            ICMPv6Type.DESTINATION_UNREACHABLE,
            UnreachableCode.ADDRESS_UNREACHABLE,
            time,
        )
        return ProbeResult(target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit)

    def _probe_loop(
        self,
        target: int,
        time: float,
        region: LoopRegion,
        remaining: int,
        transit: int,
    ) -> ProbeResult:
        """Customer<->provider ping-pong until the hop limit expires."""
        world = self.world
        self.stats.loops_hit += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_loop(region.customer_router_id, time)
        customer = world.routers[region.customer_router_id]
        if remaining < 1:
            return ProbeResult(target, time, self.epoch, looped=True, transit_hops=transit)
        # The packet ping-pongs customer<->provider; the Time Exceeded is
        # generated (and, with buggy firmware, massively replicated) at the
        # misconfigured customer edge router — the paper observes floods
        # "from the same router".
        victim = customer
        source = self._router_error_source(victim)
        amplification = self._loop_amplification(customer, remaining)
        if amplification > 1:
            # The firmware bug replicates packets in the fast path; the
            # resulting Time Exceeded flood bypasses the control-plane
            # rate limiter (this is what makes it dangerous).
            count = min(amplification, AMPLIFICATION_CAP)
            self.stats.error_replies += count
            self.stats.amplified_replies += count - 1
            reply = Reply(
                source,
                ICMPv6Type.TIME_EXCEEDED,
                TimeExceededCode.HOP_LIMIT_EXCEEDED,
                count=count,
                router_id=victim.router_id,
            )
            return ProbeResult(
                target,
                time,
                self.epoch,
                replies=(reply,),
                looped=True,
                amplification=count,
                transit_hops=transit,
            )
        reply = self._emit_error(
            victim,
            source,
            ICMPv6Type.TIME_EXCEEDED,
            TimeExceededCode.HOP_LIMIT_EXCEEDED,
            time,
        )
        return ProbeResult(
            target,
            time,
            self.epoch,
            replies=_as_tuple(reply),
            looped=True,
            amplification=1 if reply else 0,
            transit_hops=transit,
        )

    def _loop_amplification(self, customer: Router, remaining: int) -> int:
        factor = customer.replication_factor
        if factor <= 1.0:
            return 1
        cycles = remaining / 2.0
        try:
            amplification = factor**cycles
        except OverflowError:
            return AMPLIFICATION_CAP
        if amplification >= AMPLIFICATION_CAP:
            return AMPLIFICATION_CAP
        return max(1, round(amplification))

    def _unassigned_space(
        self, target: int, time: float, asn: int, transit: int
    ) -> ProbeResult:
        """Announced but unassigned space.

        The error originates at whatever *internal* router holds the
        closest covering route for the destination's /48 — deterministic
        per /48 (ISP internals aggregate hierarchically), so unassigned
        space spreads error sources across many router IPs, as observed.
        """
        info = self.world.ases.get(asn)
        if info is not None and info.filters_unroutable:
            return ProbeResult(target, time, self.epoch, transit_hops=transit)
        responsible = self._responsible_router(asn, target)
        if responsible is None:
            return ProbeResult(target, time, self.epoch, transit_hops=transit)
        if responsible.errors_from_primary and responsible.loopback:
            source = responsible.loopback
        else:
            # Customer-facing sub-interface of the aggregation router: a
            # distinct address per /56 region (point-to-point/VLAN links
            # carry addresses from the delegated space).  This is why
            # error sources in the /48 and /64 partition scans are so
            # numerous — and why most of them never answer a direct probe.
            source = ((target >> 72) << 72) | 0xFFFE
        reply = self._emit_error(
            responsible,
            source,
            ICMPv6Type.DESTINATION_UNREACHABLE,
            UnreachableCode.NO_ROUTE,
            time,
        )
        return ProbeResult(target, time, self.epoch, replies=_as_tuple(reply), transit_hops=transit)

    def _responsible_router(self, asn: int, target: int) -> Router | None:
        """The internal router whose aggregate covers the target's /56.

        ISP internals aggregate below the /48 level (per-PoP, per-BNG),
        so errors for the /64s of one /48 spread over several routers —
        which is why the paper's /64 partition scan discovers the most
        router IPs of all BGP-derived inputs (45 M, Table 2).
        """
        info = self.world.ases.get(asn)
        if info is None:
            return None
        if not info.router_ids:
            return self._border_router(asn)
        slash56 = target >> 72
        index = int(
            stable_unit(self.world.seed, b"aggroute", asn, slash56)
            * len(info.router_ids)
        )
        return self.world.routers[info.router_ids[index]]

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #

    def _border_router(self, asn: int) -> Router | None:
        info = self.world.ases.get(asn)
        if info is None or info.border_router_id is None:
            return None
        return self.world.routers[info.border_router_id]

    def _router_error_source(self, router: Router, hint: int | None = None) -> int:
        """Where a router sources its ICMP errors: the subnet-facing
        interface (``hint``) or, for primary-source policies, its loopback."""
        if router.errors_from_primary and router.loopback:
            return router.loopback
        if hint is not None:
            return hint
        if router.interface_addresses:
            return router.interface_addresses[0]
        return router.loopback

    def _direct_ping(self, router: Router, interface: int) -> Reply | None:
        """Behaviour for an Echo Request aimed at a router's own address."""
        if not router.answers_direct_ping:
            return None
        if not stable_bool(
            self.world.seed, _PURPOSE_DIRECT, 0.96, router.router_id, self.epoch
        ):
            return None
        self.stats.echo_replies += 1
        return Reply(
            interface, ICMPv6Type.ECHO_REPLY, 0, router_id=router.router_id
        )

    def _subnet_alive(self, subnet: Subnet) -> bool:
        if subnet.death_epoch is not None and self.epoch >= subnet.death_epoch:
            return False
        if subnet.flaky:
            return stable_bool(
                self.world.seed,
                _PURPOSE_FLAKY,
                0.55,
                subnet.prefix.network,
                self.epoch,
            )
        return True

    def _emit_error(
        self,
        router: Router,
        source: int,
        icmp_type: ICMPv6Type,
        code: int,
        time: float,
    ) -> Reply | None:
        """Originate an ICMPv6 error, subject to RFC 4443 rate limiting,
        the background-load on-off gate, and the router's unreachable-
        filtering policy ("no ip unreachables")."""
        if not self._error_reply_allowed(
            router, time, icmp_type is ICMPv6Type.DESTINATION_UNREACHABLE
        ):
            return None
        return Reply(source, icmp_type, int(code), router_id=router.router_id)

    def _error_reply_allowed(
        self, router: Router, time: float, unreachable: bool
    ) -> bool:
        """The shared error-emission gate behind both probe paths: the
        unreachable-filtering policy, the rate-limit/background gate, and
        the stats accounting.  True means the error goes out — the caller
        then builds the :class:`Reply` or writes the result columns."""
        if unreachable and not router.emits_unreachables:
            return False
        if not self._error_allowed(router, time):
            self.stats.suppressed_errors += 1
            return False
        self.stats.error_replies += 1
        return True

    def error_allowed(self, router_id: int, time: float) -> bool:
        """Evaluate one rate-limit check by router id — the replay hook used
        when merging deferred-mode shards.  Calls for one router must arrive
        with non-decreasing timestamps, as during a live scan."""
        return self._error_allowed(self.world.routers[router_id], time)

    def _error_allowed(self, router: Router, time: float) -> bool:
        if self.defer_rate_limit:
            self.pending_checks.append((time, router.router_id))
            return True
        load = self._bg_load.get(router.router_id)
        if load is None:
            jitter = 0.5 + stable_unit(
                self.world.seed, _PURPOSE_BG_JITTER, router.router_id, self.epoch
            )
            load = min(0.95, router.background_error_load * jitter)
            self._bg_load[router.router_id] = load
        if load > 0.0:
            window = int(time / self.background_window)
            window_key = (router.router_id, window)
            suppressed = self._bg_window.get(window_key)
            if suppressed is None:
                suppressed = stable_bool(
                    self.world.seed,
                    _PURPOSE_BG_WINDOW,
                    load,
                    router.router_id,
                    self.epoch,
                    window,
                )
                self._bg_window[window_key] = suppressed
            if suppressed:
                telemetry = self.telemetry
                if telemetry is not None:
                    telemetry.on_suppressed(router.router_id, time)
                return False
        bucket = self._buckets.get(router.router_id)
        if bucket is None:
            vendor = router.vendor
            initial = vendor.error_burst * (
                1.0
                - stable_unit(
                    self.world.seed,
                    _PURPOSE_BG_JITTER,
                    router.router_id,
                    self.epoch,
                    1,
                )
                * load
            )
            bucket = TokenBucket(
                vendor.error_rate * (1.0 - load),
                vendor.error_burst,
                initial=initial,
            )
            self._buckets[router.router_id] = bucket
        allowed = bucket.allow(time)
        if not allowed:
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.on_suppressed(router.router_id, time)
        return allowed


def _as_tuple(reply: Reply | None) -> tuple[Reply, ...]:
    return () if reply is None else (reply,)
