"""RFC 4443 §2.4(f) ICMPv6 error rate limiting: a token bucket.

The bucket runs on the simulation's *virtual clock*: callers pass the send
time of the packet that may trigger an error.  Tokens refill continuously
at ``rate`` per second up to ``burst``.  Calls must be made with
non-decreasing timestamps (the scanner's pacing guarantees this); a small
tolerance allows replies that logically occur "at the same instant".
"""

from __future__ import annotations


class TokenBucket:
    """A continuous-refill token bucket over virtual time."""

    __slots__ = ("rate", "burst", "denials", "_tokens", "_last_time")

    def __init__(self, rate: float, burst: int, *, initial: float | None = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = rate
        self.burst = float(burst)
        # Lifetime denial count (survives reset()): the per-router
        # observability counter behind the paper's rate-limit asymmetry
        # claims.  Only the deny branch pays for it.
        self.denials = 0
        self._tokens = self.burst if initial is None else min(float(initial), self.burst)
        self._last_time = 0.0

    @property
    def tokens(self) -> float:
        return self._tokens

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens at virtual time ``now`` if available."""
        if now < self._last_time:
            # Tolerate tiny reordering; clamp instead of crediting time back.
            now = self._last_time
        elapsed = now - self._last_time
        self._last_time = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        self.denials += 1
        return False

    def reset(self, *, initial: float | None = None) -> None:
        """Refill (or set) the bucket and rewind the clock."""
        self._tokens = self.burst if initial is None else min(float(initial), self.burst)
        self._last_time = 0.0
