"""Stable, keyed pseudo-randomness for the simulation.

Behaviour that must be *reproducible across processes* (flaky-subnet
availability, background ICMP load windows, packet loss, reply-source
flips) cannot use Python's salted ``hash()`` or shared ``random.Random``
state — re-running a scan would see a different world.  Instead every
stochastic decision is a pure function of ``(world seed, purpose label,
entity keys...)`` via a keyed BLAKE2 digest.

Hot-path note: constructing a *keyed* BLAKE2b runs the key schedule (a
full compression of the padded key block) on every call, which dominated
the probe hot path — the engine draws one to three of these per probe.
The schedule depends only on ``(seed, purpose)``, of which the simulator
uses a handful, so we build each base hasher once, memoise it, and
``.copy()`` it per draw; the copy is a plain state memcpy.  Key material
is likewise packed with a single ``struct.pack`` call instead of one per
key.  Digests are bit-identical to the naive implementation — pinned by
``tests/test_stochastic_golden.py``.
"""

from __future__ import annotations

import hashlib
import struct

_SCALE = float(1 << 64)

# (seed & 2**64-1, purpose) -> primed keyed hasher, copied per draw.  The
# simulator uses ~10 purpose labels and one seed per world, so this stays
# tiny; the bound guards pathological many-seed callers (each entry is a
# few hundred bytes of BLAKE2 state).
_BASE_HASHERS: dict[tuple[int, bytes], "hashlib._Hash"] = {}
_BASE_HASHERS_MAX = 1024

# struct.Struct instances for the common key counts avoid re-parsing the
# format string; draws with more packed words fall back to struct.pack.
_PACKERS = tuple(struct.Struct(f">{n}q") for n in range(9))

_MASK63 = 0x7FFFFFFFFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def base_hasher(seed: int, purpose: bytes) -> "hashlib._Hash":
    """The primed keyed hasher for ``(seed, purpose)``.

    Callers on proven hot paths may ``.copy()`` this, feed the same packed
    key words ``stable_unit`` would, and compare the digest themselves —
    the engine's batch loop does exactly that for its per-probe loss draw.
    Treat the returned object as read-only; ``update`` only copies.
    """
    return _base_hasher(seed, purpose)


def _base_hasher(seed: int, purpose: bytes) -> "hashlib._Hash":
    cache_key = (seed & _MASK64, purpose)
    hasher = _BASE_HASHERS.get(cache_key)
    if hasher is None:
        if len(_BASE_HASHERS) >= _BASE_HASHERS_MAX:
            _BASE_HASHERS.clear()
        hasher = hashlib.blake2b(
            purpose, digest_size=8, key=cache_key[0].to_bytes(8, "big")
        )
        _BASE_HASHERS[cache_key] = hasher
    return hasher


def stable_unit(seed: int, purpose: bytes, *keys: int) -> float:
    """A deterministic uniform float in [0, 1) keyed by seed+purpose+keys."""
    hasher = _base_hasher(seed, purpose).copy()
    if keys:
        words = []
        for key in keys:
            words.append(key & _MASK63)
            if key.bit_length() > 62:
                # IPv6 addresses exceed 64 bits; mix in the high half too.
                words.append((key >> 62) & _MASK63)
        count = len(words)
        if count < len(_PACKERS):
            hasher.update(_PACKERS[count].pack(*words))
        else:
            hasher.update(struct.pack(f">{count}q", *words))
    return int.from_bytes(hasher.digest(), "big") / _SCALE


def stable_bool(seed: int, purpose: bytes, probability: float, *keys: int) -> bool:
    """A deterministic Bernoulli draw with the given probability."""
    if probability <= 0:
        return False
    if probability >= 1:
        return True
    return stable_unit(seed, purpose, *keys) < probability
