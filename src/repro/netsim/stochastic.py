"""Stable, keyed pseudo-randomness for the simulation.

Behaviour that must be *reproducible across processes* (flaky-subnet
availability, background ICMP load windows, packet loss, reply-source
flips) cannot use Python's salted ``hash()`` or shared ``random.Random``
state — re-running a scan would see a different world.  Instead every
stochastic decision is a pure function of ``(world seed, purpose label,
entity keys...)`` via a keyed BLAKE2 digest.
"""

from __future__ import annotations

import hashlib
import struct

_SCALE = float(1 << 64)


def stable_unit(seed: int, purpose: bytes, *keys: int) -> float:
    """A deterministic uniform float in [0, 1) keyed by seed+purpose+keys."""
    hasher = hashlib.blake2b(
        purpose,
        digest_size=8,
        key=(seed & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big"),
    )
    for key in keys:
        hasher.update(struct.pack(">q", key & 0x7FFFFFFFFFFFFFFF))
        if key.bit_length() > 62:
            # IPv6 addresses exceed 64 bits; mix in the high half too.
            hasher.update(struct.pack(">q", (key >> 62) & 0x7FFFFFFFFFFFFFFF))
    return int.from_bytes(hasher.digest(), "big") / _SCALE


def stable_bool(seed: int, purpose: bytes, probability: float, *keys: int) -> bool:
    """A deterministic Bernoulli draw with the given probability."""
    if probability <= 0:
        return False
    if probability >= 1:
        return True
    return stable_unit(seed, purpose, *keys) < probability
