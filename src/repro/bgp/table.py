"""The global BGP view: announcements mapping prefixes to origin ASNs.

This models what a route collector (RouteViews / RIS) exports: the set of
globally visible IPv6 prefixes with their origin AS.  The SRA survey's
stage-1/2/3 target construction consumes :meth:`BGPTable.prefixes`; the
metadata layer uses :meth:`BGPTable.origin_of` for address→ASN mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..addr.ipv6 import IPv6Prefix
from .lpm import LengthIndexedLPM


@dataclass(frozen=True, slots=True)
class Announcement:
    """One visible BGP route: a prefix and the AS originating it."""

    prefix: IPv6Prefix
    origin_asn: int

    def __str__(self) -> str:
        return f"{self.prefix} AS{self.origin_asn}"


class BGPTable:
    """A set of BGP announcements with prefix-tree queries."""

    def __init__(self, announcements: Iterable[Announcement] = ()) -> None:
        self._trie: LengthIndexedLPM[int] = LengthIndexedLPM()
        self._announcements: dict[IPv6Prefix, Announcement] = {}
        for announcement in announcements:
            self.add(announcement)

    def add(self, announcement: Announcement) -> None:
        """Add (or replace) the route for the announcement's prefix."""
        self._announcements[announcement.prefix] = announcement
        self._trie.insert(announcement.prefix, announcement.origin_asn)

    def withdraw(self, prefix: IPv6Prefix) -> bool:
        """Remove the route for ``prefix``; True if it existed."""
        if prefix not in self._announcements:
            return False
        del self._announcements[prefix]
        self._trie.remove(prefix)
        return True

    def __len__(self) -> int:
        return len(self._announcements)

    def __contains__(self, prefix: IPv6Prefix) -> bool:
        return prefix in self._announcements

    def __iter__(self) -> Iterator[Announcement]:
        return iter(self._announcements.values())

    def prefixes(self) -> list[IPv6Prefix]:
        """All announced prefixes, sorted (covering before more-specific)."""
        return sorted(self._announcements)

    def prefixes_of_length(self, length: int) -> list[IPv6Prefix]:
        """Announced prefixes of exactly the given length, sorted."""
        return sorted(p for p in self._announcements if p.length == length)

    @property
    def lpm(self) -> LengthIndexedLPM[int]:
        """The underlying LPM index (prefix, origin ASN).

        Exposed for run-batched lookups: the probe hot path calls
        ``table.lpm.longest_match_batch`` on a block-sorted batch instead
        of one :meth:`origin_of` per target.  Treat as read-only; mutate
        through :meth:`add`/:meth:`withdraw` so the announcement map and
        the index stay in lockstep.
        """
        return self._trie

    def origin_of(self, address: int) -> int | None:
        """Origin ASN by longest-prefix match, None if unrouted."""
        match = self._trie.longest_match(address)
        return None if match is None else match[1]

    def matching_prefix(self, address: int) -> IPv6Prefix | None:
        """The most specific announced prefix containing ``address``."""
        match = self._trie.longest_match(address)
        return None if match is None else match[0]

    def is_routed(self, address: int) -> bool:
        return self._trie.longest_match(address) is not None

    def has_cover(self, prefix: IPv6Prefix, *, strict: bool = False) -> bool:
        """True if an announcement covers ``prefix`` (shorter only if strict)."""
        return self._trie.has_cover(prefix, strict=strict)

    def freeze_lookups(self) -> None:
        """Swap the LPM index for a frozen array-backed snapshot.

        Lookups (``origin_of``, ``lpm.longest_match_batch``, …) stay
        bit-identical; :meth:`add`/:meth:`withdraw` raise afterwards.
        Artifact-loaded worlds call this — their tables are static and the
        frozen columns are cheaper to keep per worker than dicts.
        """
        self._trie = self._trie.frozen()  # type: ignore[assignment]

    def more_specifics(self, prefix: IPv6Prefix) -> list[Announcement]:
        """Announcements strictly more specific than ``prefix``."""
        return sorted(
            (
                announcement
                for p, announcement in self._announcements.items()
                if p.length > prefix.length and prefix.covers(p)
            ),
            key=lambda announcement: announcement.prefix,
        )
