"""BGP substrate: radix trie, announcement table, and dump I/O."""

from .lpm import LengthIndexedLPM
from .dump import DumpFormatError, iter_dump, parse_dump_line, read_dump, write_dump
from .table import Announcement, BGPTable
from .trie import PrefixTrie

__all__ = [
    "Announcement",
    "BGPTable",
    "DumpFormatError",
    "LengthIndexedLPM",
    "PrefixTrie",
    "iter_dump",
    "parse_dump_line",
    "read_dump",
    "write_dump",
]
