"""Binary radix (Patricia-style) trie over IPv6 prefixes.

This is the lookup structure behind both the BGP RIB and every simulated
router's FIB.  It supports exact insert/remove, longest-prefix match, and
covering/covered queries — the operations BGP processing and packet
forwarding need.

The trie is a plain binary trie keyed on address bits; at IPv6 scale in the
simulator (tens of thousands of prefixes, lengths mostly 32–64) the depth is
bounded and lookups are a few dozen integer operations.

``longest_match`` — the alias filter's per-record containment probe — gets
a bounded LRU result cache keyed by the address's covering block at the
longest stored prefix length (never finer than /48): two addresses sharing
those top bits walk identical trie paths, so one cached result answers for
the whole block.  Every mutation invalidates the cache, so cached and
uncached lookups are indistinguishable.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, Sequence, TypeVar

from ..addr.ipv6 import ADDRESS_BITS, IPv6Prefix

V = TypeVar("V")

_MISSING = object()

_MIN_CACHE_BITS = 48
DEFAULT_CACHE_SIZE = 8192


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list["_Node[V] | None"] = [None, None]
        self.value: V | None = None
        self.has_value = False


def _bit(address: int, depth: int) -> int:
    """The bit of ``address`` at ``depth`` (0 = most significant)."""
    return (address >> (ADDRESS_BITS - 1 - depth)) & 1


class PrefixTrie(Generic[V]):
    """A map from :class:`IPv6Prefix` to values with LPM queries."""

    def __init__(self, *, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0
        # Stored-prefix length census; the max drives the cache key width.
        self._length_counts: dict[int, int] = {}
        self._cache_size = cache_size
        self._cache: dict[int, tuple[IPv6Prefix, V] | None] = {}
        self._cache_shift = ADDRESS_BITS - _MIN_CACHE_BITS

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: IPv6Prefix) -> bool:
        return self.get(prefix, _MISSING) is not _MISSING

    def _invalidate(self) -> None:
        longest = max(self._length_counts, default=0)
        self._cache_shift = ADDRESS_BITS - max(_MIN_CACHE_BITS, longest)
        self._cache.clear()

    def insert(self, prefix: IPv6Prefix, value: V) -> None:
        """Insert or replace the value at ``prefix``."""
        node = self._root
        for depth in range(prefix.length):
            bit = _bit(prefix.network, depth)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
            self._length_counts[prefix.length] = (
                self._length_counts.get(prefix.length, 0) + 1
            )
        node.has_value = True
        node.value = value
        self._invalidate()

    def get(self, prefix: IPv6Prefix, default: object = None) -> object:
        """Exact-match lookup."""
        node = self._node_at(prefix)
        if node is None or not node.has_value:
            return default
        return node.value

    def _node_at(self, prefix: IPv6Prefix) -> _Node[V] | None:
        node = self._root
        for depth in range(prefix.length):
            child = node.children[_bit(prefix.network, depth)]
            if child is None:
                return None
            node = child
        return node

    def remove(self, prefix: IPv6Prefix) -> bool:
        """Remove an exact prefix; True if it was present.

        Empty branches are pruned so long-lived tries do not leak nodes.
        """
        path: list[tuple[_Node[V], int]] = []
        node = self._root
        for depth in range(prefix.length):
            bit = _bit(prefix.network, depth)
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        count = self._length_counts.get(prefix.length, 0) - 1
        if count > 0:
            self._length_counts[prefix.length] = count
        else:
            self._length_counts.pop(prefix.length, None)
        self._invalidate()
        for parent, bit in reversed(path):
            child = parent.children[bit]
            assert child is not None
            if child.has_value or child.children[0] or child.children[1]:
                break
            parent.children[bit] = None
        return True

    def longest_match(self, address: int) -> tuple[IPv6Prefix, V] | None:
        """The most specific stored prefix containing ``address``."""
        cache = self._cache
        cache_key = address >> self._cache_shift
        found = cache.pop(cache_key, _MISSING)
        if found is not _MISSING:
            cache[cache_key] = found  # LRU touch: re-insert as most recent
            return found  # type: ignore[return-value]
        node = self._root
        best: tuple[int, V] | None = None
        depth = 0
        shift = ADDRESS_BITS - 1
        while True:
            if node.has_value:
                best = (depth, node.value)  # type: ignore[arg-type]
            if depth == ADDRESS_BITS:
                break
            child = node.children[(address >> shift) & 1]
            if child is None:
                break
            node = child
            depth += 1
            shift -= 1
        if best is None:
            result = None
        else:
            length, value = best
            result = (IPv6Prefix.of(address, length), value)
        if len(cache) >= self._cache_size:
            try:
                del cache[next(iter(cache))]
            except (StopIteration, KeyError, RuntimeError):
                # Concurrent readers may race an eviction; the cache is
                # advisory, so losing one eviction is harmless.
                pass
        cache[cache_key] = result
        return result

    @property
    def block_shift(self) -> int:
        """Right-shift mapping an address to its covering cache block.

        Equal ``address >> block_shift`` implies an identical trie walk
        (same invariant as the LRU cache key).  Re-read per batch — the
        value tracks the longest stored length and changes on mutation.
        """
        return self._cache_shift

    def longest_match_batch(
        self,
        addresses: Sequence[int],
        indices: Iterable[int],
        out: list,
    ) -> None:
        """Vectorised LPM: ``out[i] = longest_match(addresses[i])`` for
        every ``i`` in ``indices``.

        Sort ``indices`` by ``addresses[i]`` so equal covering blocks
        are contiguous; one trie walk then serves each run.  Results are
        bit-identical to per-address :meth:`longest_match` calls.
        """
        shift = self._cache_shift
        cache = self._cache
        missing = _MISSING
        last_key = -1
        last: tuple[IPv6Prefix, V] | None = None
        for i in indices:
            address = addresses[i]
            key = address >> shift
            if key != last_key:
                # Cache hit without the LRU touch (advisory only); misses
                # take the full walk via longest_match, which also fills
                # the cache for the rest of this block's run.
                found = cache.get(key, missing)
                if found is not missing:
                    last = found  # type: ignore[assignment]
                else:
                    last = self.longest_match(address)
                last_key = key
            out[i] = last

    def all_matches(self, address: int) -> Iterator[tuple[IPv6Prefix, V]]:
        """All stored prefixes containing ``address``, shortest first."""
        node = self._root
        depth = 0
        while True:
            if node.has_value:
                yield IPv6Prefix.of(address, depth), node.value  # type: ignore[misc]
            if depth == ADDRESS_BITS:
                return
            child = node.children[_bit(address, depth)]
            if child is None:
                return
            node = child
            depth += 1

    def covered_by(self, prefix: IPv6Prefix) -> Iterator[tuple[IPv6Prefix, V]]:
        """All stored prefixes equal to or more specific than ``prefix``."""
        start = self._node_at(prefix)
        if start is None:
            return
        stack: list[tuple[_Node[V], int, int]] = [
            (start, prefix.network, prefix.length)
        ]
        while stack:
            node, network, length = stack.pop()
            if node.has_value:
                yield IPv6Prefix(network, length), node.value  # type: ignore[misc]
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    child_network = network | (
                        bit << (ADDRESS_BITS - 1 - length)
                    )
                    stack.append((child, child_network, length + 1))

    def has_cover(self, prefix: IPv6Prefix, *, strict: bool = False) -> bool:
        """True if a stored prefix covers ``prefix``.

        With ``strict`` the cover must be shorter (a proper supernet).
        """
        node = self._root
        for depth in range(prefix.length):
            if node.has_value:
                return True
            child = node.children[_bit(prefix.network, depth)]
            if child is None:
                return False
            node = child
        return node.has_value and not strict

    def items(self) -> Iterator[tuple[IPv6Prefix, V]]:
        """All (prefix, value) pairs in depth-first (address) order."""
        yield from self.covered_by(IPv6Prefix(0, 0))

    def frozen(self, *, cache_size: int | None = None):
        """A read-only :class:`~repro.bgp.frozenfib.FrozenLPM` snapshot:
        the trie's contents as sorted array columns, with ``longest_match``
        / ``longest_match_batch`` pinned bit-identical."""
        from .frozenfib import FrozenLPM

        if cache_size is None:
            cache_size = self._cache_size
        return FrozenLPM.freeze(self, cache_size=cache_size)
