"""Frozen, array-backed longest-prefix match.

:class:`~repro.bgp.lpm.LengthIndexedLPM` and
:class:`~repro.bgp.trie.PrefixTrie` are built around Python dicts and
nodes: perfect while a table is being assembled, but expensive to ship —
pickling a world's resolution index into every shard worker rivals the
scan itself, and a million /64 entries cost hundreds of megabytes of
dict overhead.

:class:`FrozenLPM` is the read-only counterpart: the contents of either
mutable structure flattened into per-length *sorted key columns* — two
``array('Q')``-compatible sequences holding the high and low 64-bit words
of each network, plus a parallel value sequence.  Lookups probe lengths
longest-first (the DIR scheme, same as the mutable map) and find the key
by binary search instead of a dict probe.  The columns are plain machine
words, so they can live in an mmap'd world artifact and be shared
zero-copy by every shard worker — see :mod:`repro.topology.artifact`.

Bit-identity contract: ``longest_match`` / ``longest_match_batch`` /
``items`` / ``has_cover`` / ``all_matches`` return exactly what the
mutable map they were frozen from would return, including ``None``
values matching and the bounded LRU block cache keyed by the covering
``/max(48, longest)`` block (pinned by tests/test_frozenfib.py).
Mutation (``insert`` / ``remove``) raises :class:`TypeError` — freezing
is one-way; build with the mutable structures, freeze, then share.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Generic, Iterable, Iterator, Sequence, TypeVar

from ..addr.ipv6 import ADDRESS_BITS, IPv6Prefix, prefix_mask

V = TypeVar("V")

__all__ = ["FrozenLPM", "FrozenRow"]

_MISS = object()
_LO_MASK = (1 << 64) - 1

# Mirrors repro.bgp.lpm: cache granularity never finer than /48, bounded
# LRU of DEFAULT_CACHE_SIZE covering blocks.
_MIN_CACHE_BITS = 48
DEFAULT_CACHE_SIZE = 8192


class FrozenRow:
    """One prefix length's sorted key columns.

    ``keys_hi`` / ``keys_lo`` are parallel sequences of unsigned 64-bit
    words sorted by ``(hi, lo)`` — any object speaking the sequence
    protocol works (``array('Q')``, a ``memoryview(...).cast('Q')`` over
    an mmap).  ``values`` is a parallel sequence; a lazy implementation
    may materialise entries on first access, but must return the *same*
    object for the same index every time (callers key caches by payload
    identity).
    """

    __slots__ = ("length", "mask", "keys_hi", "keys_lo", "values")

    def __init__(
        self,
        length: int,
        keys_hi: Sequence[int],
        keys_lo: Sequence[int],
        values: Sequence,
    ) -> None:
        if len(keys_hi) != len(keys_lo) or len(keys_hi) != len(values):
            raise ValueError("key/value columns must have equal length")
        self.length = length
        self.mask = prefix_mask(length)
        self.keys_hi = keys_hi
        self.keys_lo = keys_lo
        self.values = values

    def __len__(self) -> int:
        return len(self.keys_hi)

    def find(self, network: int) -> int:
        """Index of ``network`` in the columns, or -1."""
        hi = network >> 64
        lo = network & _LO_MASK
        keys_hi = self.keys_hi
        i = bisect_left(keys_hi, hi)
        n = len(keys_hi)
        if i >= n or keys_hi[i] != hi:
            return -1
        keys_lo = self.keys_lo
        if keys_lo[i] == lo:  # prefixes <= /64 always land here (lo == 0)
            return i
        j = bisect_right(keys_hi, hi, i)
        k = bisect_left(keys_lo, lo, i, j)
        if k < j and keys_lo[k] == lo:
            return k
        return -1


class FrozenLPM(Generic[V]):
    """Read-only longest-prefix-match map over sorted array columns.

    Drop-in for the lookup side of :class:`~repro.bgp.lpm.LengthIndexedLPM`
    (``longest_match``, ``longest_match_batch``, ``block_shift``, ``get``,
    ``has_cover``, ``all_matches``, ``items``, ``len``); the mutation side
    raises.
    """

    __slots__ = ("_rows_desc", "_size", "_cache", "_cache_size", "_cache_shift")

    def __init__(
        self,
        rows: Iterable[FrozenRow],
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self._rows_desc = sorted(
            (row for row in rows if len(row)),
            key=lambda row: row.length,
            reverse=True,
        )
        lengths = [row.length for row in self._rows_desc]
        if len(set(lengths)) != len(lengths):
            raise ValueError("duplicate per-length rows")
        self._size = sum(len(row) for row in self._rows_desc)
        self._cache_size = cache_size
        self._cache: dict[int, tuple[IPv6Prefix, V] | None] = {}
        longest = lengths[0] if lengths else 0
        self._cache_shift = ADDRESS_BITS - max(_MIN_CACHE_BITS, longest)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_items(
        cls,
        items: Iterable[tuple[IPv6Prefix, V]],
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "FrozenLPM[V]":
        """Freeze an item stream; later duplicates overwrite earlier ones
        (dict-insert semantics, matching the mutable maps)."""
        by_length: dict[int, dict[int, V]] = {}
        for prefix, value in items:
            by_length.setdefault(prefix.length, {})[prefix.network] = value
        rows = []
        for length, table in by_length.items():
            keys_hi = array("Q")
            keys_lo = array("Q")
            values: list[V] = []
            for network in sorted(table):
                keys_hi.append(network >> 64)
                keys_lo.append(network & _LO_MASK)
                values.append(table[network])
            rows.append(FrozenRow(length, keys_hi, keys_lo, values))
        return cls(rows, cache_size=cache_size)

    @classmethod
    def freeze(cls, lpm, *, cache_size: int = DEFAULT_CACHE_SIZE) -> "FrozenLPM[V]":
        """Freeze any map with ``items()`` yielding ``(IPv6Prefix, value)``
        — both :class:`LengthIndexedLPM` and :class:`PrefixTrie` qualify."""
        return cls.from_items(lpm.items(), cache_size=cache_size)

    # ------------------------------------------------------------------ #
    # lookups (pinned bit-identical to LengthIndexedLPM)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def _probe(self, address: int) -> tuple[IPv6Prefix, V] | None:
        """Uncached longest-first walk (the dict-probe loop, with bisect)."""
        for row in self._rows_desc:
            network = address & row.mask
            i = row.find(network)
            if i >= 0:
                return (IPv6Prefix(network, row.length), row.values[i])
        return None

    def longest_match(self, address: int) -> tuple[IPv6Prefix, V] | None:
        cache = self._cache
        cache_key = address >> self._cache_shift
        found = cache.pop(cache_key, _MISS)
        if found is not _MISS:
            cache[cache_key] = found  # LRU touch: re-insert as most recent
            return found  # type: ignore[return-value]
        result = self._probe(address)
        if len(cache) >= self._cache_size:
            try:
                del cache[next(iter(cache))]
            except (StopIteration, KeyError, RuntimeError):
                # Threaded shards share this map; losing one eviction race
                # is harmless (the cache is advisory, results are exact).
                pass
        cache[cache_key] = result
        return result

    @property
    def block_shift(self) -> int:
        """Right-shift mapping an address to its covering cache block (two
        addresses with equal ``address >> block_shift`` match identically
        at every stored length).  Constant here — frozen maps never change
        their longest length."""
        return self._cache_shift

    def longest_match_batch(
        self,
        addresses: Sequence[int],
        indices: Iterable[int],
        out: list,
    ) -> None:
        """Vectorised LPM: ``out[i] = longest_match(addresses[i])`` for
        every ``i`` in ``indices``; sort indices by address so same-block
        runs share one walk (identical contract to the mutable maps)."""
        shift = self._cache_shift
        cache = self._cache
        cache_size = self._cache_size
        miss = _MISS
        probe = self._probe
        last_key = -1
        last: tuple[IPv6Prefix, V] | None = None
        for i in indices:
            address = addresses[i]
            key = address >> shift
            if key != last_key:
                found = cache.get(key, miss)
                if found is not miss:
                    last = found  # type: ignore[assignment]
                else:
                    last = probe(address)
                    if len(cache) >= cache_size:
                        try:
                            del cache[next(iter(cache))]
                        except (StopIteration, KeyError, RuntimeError):
                            pass
                    cache[key] = last
                last_key = key
            out[i] = last

    def get(self, prefix: IPv6Prefix, default: V | None = None) -> V | None:
        for row in self._rows_desc:
            if row.length == prefix.length:
                i = row.find(prefix.network)
                return row.values[i] if i >= 0 else default
        return default

    def has_cover(self, prefix: IPv6Prefix, *, strict: bool = False) -> bool:
        """True if a stored prefix covers ``prefix`` (``strict``: a proper
        supernet only)."""
        for row in self._rows_desc:
            if row.length > prefix.length or (
                strict and row.length == prefix.length
            ):
                continue
            if row.find(prefix.network & row.mask) >= 0:
                return True
        return False

    def all_matches(self, address: int) -> Iterator[tuple[IPv6Prefix, V]]:
        """All stored prefixes containing ``address``, longest first."""
        for row in self._rows_desc:
            network = address & row.mask
            i = row.find(network)
            if i >= 0:
                yield IPv6Prefix(network, row.length), row.values[i]

    def items(self) -> Iterator[tuple[IPv6Prefix, V]]:
        for row in reversed(self._rows_desc):  # ascending length
            keys_hi = row.keys_hi
            keys_lo = row.keys_lo
            values = row.values
            for i in range(len(keys_hi)):
                network = (keys_hi[i] << 64) | keys_lo[i]
                yield IPv6Prefix(network, row.length), values[i]

    # ------------------------------------------------------------------ #
    # mutation: refused
    # ------------------------------------------------------------------ #

    def insert(self, prefix: IPv6Prefix, value: V) -> None:
        raise TypeError(
            "FrozenLPM is immutable: build a LengthIndexedLPM/PrefixTrie "
            "and re-freeze instead"
        )

    def remove(self, prefix: IPv6Prefix) -> bool:
        raise TypeError(
            "FrozenLPM is immutable: build a LengthIndexedLPM/PrefixTrie "
            "and re-freeze instead"
        )
