"""Reading and writing BGP table dumps in a simple text format.

Real pipelines parse MRT; our dumps use the one-route-per-line text form
RouteViews' ``show ip bgp``-style exports reduce to::

    # comment
    2001:db8::/32 64500

Lines are ``<prefix> <origin-asn>``; blank lines and ``#`` comments are
ignored.  This keeps fixtures human-editable while exercising a real
parse/serialise round trip.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, TextIO

from ..addr.ipv6 import AddressError, IPv6Prefix
from .table import Announcement, BGPTable


class DumpFormatError(ValueError):
    """Raised when a dump line cannot be parsed."""


def parse_dump_line(line: str) -> Announcement | None:
    """Parse one dump line; None for blanks/comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) != 2:
        raise DumpFormatError(f"expected '<prefix> <asn>', got {line!r}")
    try:
        prefix = IPv6Prefix.parse(parts[0])
    except AddressError as exc:
        raise DumpFormatError(f"bad prefix in {line!r}: {exc}") from exc
    try:
        asn = int(parts[1])
    except ValueError as exc:
        raise DumpFormatError(f"bad ASN in {line!r}") from exc
    if asn < 0 or asn > 0xFFFFFFFF:
        raise DumpFormatError(f"ASN out of range in {line!r}")
    return Announcement(prefix=prefix, origin_asn=asn)


def read_dump(source: TextIO | str | Path) -> BGPTable:
    """Read a dump from a path or open text stream into a BGPTable."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_dump(handle)
    table = BGPTable()
    for line in source:
        announcement = parse_dump_line(line)
        if announcement is not None:
            table.add(announcement)
    return table


def iter_dump(source: TextIO) -> Iterator[Announcement]:
    """Stream announcements from an open dump without building a table."""
    for line in source:
        announcement = parse_dump_line(line)
        if announcement is not None:
            yield announcement


def write_dump(
    announcements: Iterable[Announcement],
    destination: TextIO | str | Path,
    *,
    header: str | None = None,
) -> None:
    """Write announcements one per line, sorted by prefix."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            write_dump(announcements, handle, header=header)
        return
    if header:
        for line in header.splitlines():
            destination.write(f"# {line}\n")
    for announcement in sorted(announcements, key=lambda a: a.prefix):
        destination.write(f"{announcement.prefix} {announcement.origin_asn}\n")
