"""Length-indexed longest-prefix match.

The world's resolution index holds tens of thousands of /64 subnets plus a
handful of other prefix lengths.  A per-bit trie would allocate millions of
nodes; instead we keep one hash table per distinct prefix length and probe
them longest-first — the classic "DIR" LPM scheme.  Lookups cost one dict
probe per distinct length present (≈8 in practice).
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from ..addr.ipv6 import ADDRESS_BITS, IPv6Prefix, MAX_ADDRESS

V = TypeVar("V")


class LengthIndexedLPM(Generic[V]):
    """Longest-prefix-match map optimised for few distinct lengths."""

    def __init__(self) -> None:
        self._by_length: dict[int, dict[int, V]] = {}
        self._lengths_desc: list[int] = []
        self._masks: list[int] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: IPv6Prefix, value: V) -> None:
        table = self._by_length.get(prefix.length)
        if table is None:
            table = {}
            self._by_length[prefix.length] = table
            self._rebuild_lengths()
        if prefix.network not in table:
            self._size += 1
        table[prefix.network] = value

    def remove(self, prefix: IPv6Prefix) -> bool:
        table = self._by_length.get(prefix.length)
        if table is None or prefix.network not in table:
            return False
        del table[prefix.network]
        self._size -= 1
        if not table:
            del self._by_length[prefix.length]
            self._rebuild_lengths()
        return True

    def _rebuild_lengths(self) -> None:
        self._lengths_desc = sorted(self._by_length, reverse=True)
        self._masks = [
            (MAX_ADDRESS ^ ((1 << (ADDRESS_BITS - length)) - 1))
            if length
            else 0
            for length in self._lengths_desc
        ]

    def get(self, prefix: IPv6Prefix, default: V | None = None) -> V | None:
        table = self._by_length.get(prefix.length)
        if table is None:
            return default
        return table.get(prefix.network, default)

    def longest_match(self, address: int) -> tuple[IPv6Prefix, V] | None:
        for length, mask in zip(self._lengths_desc, self._masks):
            network = address & mask
            table = self._by_length[length]
            value = table.get(network)
            if value is not None:
                return IPv6Prefix(network, length), value
        return None

    def has_cover(self, prefix: IPv6Prefix, *, strict: bool = False) -> bool:
        """True if a stored prefix covers ``prefix``.

        With ``strict`` the cover must be a proper supernet (shorter).
        """
        for length, mask in zip(self._lengths_desc, self._masks):
            if length > prefix.length or (strict and length == prefix.length):
                continue
            if (prefix.network & mask) in self._by_length[length]:
                return True
        return False

    def all_matches(self, address: int) -> Iterator[tuple[IPv6Prefix, V]]:
        """All stored prefixes containing ``address``, longest first."""
        for length, mask in zip(self._lengths_desc, self._masks):
            network = address & mask
            table = self._by_length[length]
            if network in table:
                yield IPv6Prefix(network, length), table[network]

    def items(self) -> Iterator[tuple[IPv6Prefix, V]]:
        for length in sorted(self._by_length):
            for network in sorted(self._by_length[length]):
                yield IPv6Prefix(network, length), self._by_length[length][network]
