"""Length-indexed longest-prefix match.

The world's resolution index holds tens of thousands of /64 subnets plus a
handful of other prefix lengths.  A per-bit trie would allocate millions of
nodes; instead we keep one hash table per distinct prefix length and probe
them longest-first — the classic "DIR" LPM scheme.  Lookups cost one dict
probe per distinct length present (≈8 in practice).

Hot-path structure: the probe loop walks ``_tables_desc``, a flat list of
``(length, mask, table)`` rows sorted longest-first that contains only
non-empty tables (``remove`` prunes; nothing ever iterates an empty
per-length dict).  On top sits a bounded LRU result cache keyed by the
covering ``/k`` of the address, where ``k`` is the longest stored prefix
length (≥ 48 — the paper's scans are /48- and /64-grained): two addresses
sharing their top ``k`` bits match identically at every stored length, so
one cached result answers for the whole covering block.  Any mutation
invalidates the cache, keeping lookups bit-identical to the uncached path.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, Sequence, TypeVar

from ..addr.ipv6 import ADDRESS_BITS, IPv6Prefix, prefix_mask

V = TypeVar("V")

_MISS = object()

# Cache granularity never finer than /48: the survey's target generators
# emit many /64s per covering /48, which is exactly the reuse we want.
_MIN_CACHE_BITS = 48
DEFAULT_CACHE_SIZE = 8192


class LengthIndexedLPM(Generic[V]):
    """Longest-prefix-match map optimised for few distinct lengths."""

    def __init__(self, *, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self._by_length: dict[int, dict[int, V]] = {}
        # (length, mask, table) longest-first; non-empty tables only.
        self._tables_desc: list[tuple[int, int, dict[int, V]]] = []
        self._size = 0
        self._cache_size = cache_size
        self._cache: dict[int, tuple[IPv6Prefix, V] | None] = {}
        self._cache_shift = ADDRESS_BITS - _MIN_CACHE_BITS

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: IPv6Prefix, value: V) -> None:
        table = self._by_length.get(prefix.length)
        new_length = table is None
        if new_length:
            table = {}
            self._by_length[prefix.length] = table
        if prefix.network not in table:
            self._size += 1
        table[prefix.network] = value
        if new_length:
            # Lookup rows reference the table dict, so only a new length
            # needs a rebuild (after populating — empty tables are pruned).
            self._rebuild_tables()
        self._cache.clear()

    def remove(self, prefix: IPv6Prefix) -> bool:
        table = self._by_length.get(prefix.length)
        if table is None or prefix.network not in table:
            return False
        del table[prefix.network]
        self._size -= 1
        if not table:
            del self._by_length[prefix.length]
            self._rebuild_tables()
        self._cache.clear()
        return True

    def _rebuild_tables(self) -> None:
        """Recompute the lookup rows and drop every cached result.

        Called on any mutation — correctness of the LRU cache depends on
        it.  Empty per-length tables are pruned here, so ``longest_match``
        never probes a dict that cannot match.
        """
        self._tables_desc = [
            (length, prefix_mask(length), self._by_length[length])
            for length in sorted(self._by_length, reverse=True)
            if self._by_length[length]
        ]
        longest = self._tables_desc[0][0] if self._tables_desc else 0
        self._cache_shift = ADDRESS_BITS - max(_MIN_CACHE_BITS, longest)

    def get(self, prefix: IPv6Prefix, default: V | None = None) -> V | None:
        table = self._by_length.get(prefix.length)
        if table is None:
            return default
        return table.get(prefix.network, default)

    def longest_match(self, address: int) -> tuple[IPv6Prefix, V] | None:
        cache = self._cache
        cache_key = address >> self._cache_shift
        found = cache.pop(cache_key, _MISS)
        if found is not _MISS:
            cache[cache_key] = found  # LRU touch: re-insert as most recent
            return found  # type: ignore[return-value]
        result: tuple[IPv6Prefix, V] | None = None
        for length, mask, table in self._tables_desc:
            network = address & mask
            # Sentinel default: a stored value of None still matches,
            # mirroring PrefixTrie semantics.
            value = table.get(network, _MISS)
            if value is not _MISS:
                result = (IPv6Prefix(network, length), value)
                break
        if len(cache) >= self._cache_size:
            try:
                del cache[next(iter(cache))]
            except (StopIteration, KeyError, RuntimeError):
                # Threaded shards share this map; losing one eviction race
                # is harmless (the cache is advisory, results are exact).
                pass
        cache[cache_key] = result
        return result

    @property
    def block_shift(self) -> int:
        """Right-shift that maps an address to its covering cache block.

        Two addresses with equal ``address >> block_shift`` match
        identically at every stored length — the invariant behind both
        the LRU result cache and :meth:`longest_match_batch` runs.  The
        value changes on mutation (it tracks the longest stored length),
        so callers must re-read it per batch, never cache it across
        inserts/removes.
        """
        return self._cache_shift

    def longest_match_batch(
        self,
        addresses: Sequence[int],
        indices: Iterable[int],
        out: list,
    ) -> None:
        """Vectorised LPM: fill ``out[i] = longest_match(addresses[i])``
        for every ``i`` in ``indices``.

        ``indices`` should visit equal covering blocks contiguously —
        sort them by ``addresses[i]`` — so that one table walk serves an
        entire run of same-block addresses (zmap-style batch-sorted
        lookup).  Results are bit-identical to per-address
        :meth:`longest_match` calls in any order; only the walk count
        changes.  Unsorted indices stay correct but degrade to one walk
        per index.
        """
        shift = self._cache_shift
        cache = self._cache
        cache_size = self._cache_size
        tables_desc = self._tables_desc
        miss = _MISS
        last_key = -1
        last: tuple[IPv6Prefix, V] | None = None
        for i in indices:
            address = addresses[i]
            key = address >> shift
            if key != last_key:
                # Inlined longest_match, minus the LRU touch on hits: the
                # touch only reorders advisory eviction, never a result.
                found = cache.get(key, miss)
                if found is not miss:
                    last = found  # type: ignore[assignment]
                else:
                    last = None
                    for length, mask, table in tables_desc:
                        network = address & mask
                        value = table.get(network, miss)
                        if value is not miss:
                            last = (IPv6Prefix(network, length), value)
                            break
                    if len(cache) >= cache_size:
                        try:
                            del cache[next(iter(cache))]
                        except (StopIteration, KeyError, RuntimeError):
                            pass
                    cache[key] = last
                last_key = key
            out[i] = last

    def has_cover(self, prefix: IPv6Prefix, *, strict: bool = False) -> bool:
        """True if a stored prefix covers ``prefix``.

        With ``strict`` the cover must be a proper supernet (shorter).
        """
        for length, mask, table in self._tables_desc:
            if length > prefix.length or (strict and length == prefix.length):
                continue
            if (prefix.network & mask) in table:
                return True
        return False

    def all_matches(self, address: int) -> Iterator[tuple[IPv6Prefix, V]]:
        """All stored prefixes containing ``address``, longest first."""
        for length, mask, table in self._tables_desc:
            network = address & mask
            if network in table:
                yield IPv6Prefix(network, length), table[network]

    def items(self) -> Iterator[tuple[IPv6Prefix, V]]:
        for length in sorted(self._by_length):
            for network in sorted(self._by_length[length]):
                yield IPv6Prefix(network, length), self._by_length[length][network]

    def frozen(self, *, cache_size: int | None = None):
        """A read-only :class:`~repro.bgp.frozenfib.FrozenLPM` snapshot of
        the current contents: sorted array columns instead of dicts,
        shareable across shard workers, lookups pinned bit-identical."""
        from .frozenfib import FrozenLPM

        if cache_size is None:
            cache_size = self._cache_size
        return FrozenLPM.freeze(self, cache_size=cache_size)
