"""Probing-method comparisons: SRA vs random vs direct (Figs. 5 and 6).

Three campaigns over the same subnet population:

* :func:`run_sra_vs_random` — six paired scans of the hitlist /64s; SRA
  probes the subnet's ``::`` address, random probing draws one random
  in-subnet address per subnet (Fig. 5).
* :func:`run_visibility` — probe every discovered router IP directly once
  a "day" for a week; partition into always / sometimes / never responsive
  (Fig. 6a).
* :func:`run_stability` — re-probe the same SRA addresses across epochs
  and check whether the *same* router IP answers (Fig. 6b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..addr.randomgen import random_targets_for_sras
from ..netsim.engine import SimulationEngine
from ..scanner.pacing import paced_pps
from ..scanner.records import ScanResult
from ..scanner.sharded import ShardedScanRunner
from ..scanner.stream import LazyStream, TargetStream
from ..scanner.zmapv6 import ScanConfig, ZMapV6Scanner
from ..telemetry.scan import ScanTelemetry
from ..topology.entities import World


@dataclass(slots=True)
class MethodScan:
    """One scan epoch of one probing method."""

    epoch: int
    result: ScanResult

    @property
    def router_ips(self) -> set[int]:
        return self.result.sources()

    @property
    def echo_router_ips(self) -> set[int]:
        return self.result.echo_sources()


@dataclass(slots=True)
class ComparisonSeries:
    """Per-epoch results of SRA and random probing on the same subnets."""

    sra: list[MethodScan] = field(default_factory=list)
    random: list[MethodScan] = field(default_factory=list)

    def advantage_per_epoch(self) -> list[float]:
        """(SRA - random) / random router-IP discovery, per epoch."""
        advantages = []
        for sra_scan, random_scan in zip(self.sra, self.random):
            found_random = len(random_scan.router_ips)
            found_sra = len(sra_scan.router_ips)
            if found_random:
                advantages.append((found_sra - found_random) / found_random)
        return advantages

    def sra_exclusive(self) -> set[int]:
        """Router IPs only SRA probing ever saw."""
        sra_all: set[int] = set()
        random_all: set[int] = set()
        for scan in self.sra:
            sra_all |= scan.router_ips
        for scan in self.random:
            random_all |= scan.router_ips
        return sra_all - random_all

    def consecutive_overlap(self, method: str = "sra") -> list[float]:
        """Jaccard-style overlap of consecutive scans (paper: <70 %)."""
        scans = self.sra if method == "sra" else self.random
        overlaps = []
        for previous, current in zip(scans, scans[1:]):
            union = previous.router_ips | current.router_ips
            if union:
                overlaps.append(
                    len(previous.router_ips & current.router_ips) / len(union)
                )
        return overlaps


def _scan(
    world: World,
    config: ScanConfig,
    targets: "Sequence[int] | TargetStream",
    *,
    name: str,
    epoch: int,
    runner: ShardedScanRunner | None = None,
    telemetry: ScanTelemetry | None = None,
    max_shard_retries: int = 0,
    checkpoint_dir: str | None = None,
) -> ScanResult:
    """Run one campaign scan, serially or through a sharded runner.

    Sharded execution is merge-deterministic, so passing a runner changes
    wall-clock time only, never the results; ``telemetry`` observes the
    scan either way.  ``max_shard_retries``/``checkpoint_dir`` make the
    campaign crash-tolerant when no runner was supplied (a supplied
    runner carries its own recovery configuration); each scan of the
    campaign then journals per (name, epoch) and auto-resumes.
    """
    if runner is None and (max_shard_retries > 0 or checkpoint_dir is not None):
        runner = ShardedScanRunner(
            world,
            shards=1,
            max_shard_retries=max_shard_retries,
            checkpoint_dir=checkpoint_dir,
        )
    if runner is None:
        engine = SimulationEngine(world, epoch=epoch)
        scanner = ZMapV6Scanner(engine, config, telemetry=telemetry)
        return scanner.scan(targets, name=name, epoch=epoch)
    return runner.scan(targets, config, name=name, epoch=epoch, telemetry=telemetry)


def run_sra_vs_random(
    world: World,
    sra_targets: list[int],
    *,
    epochs: int = 6,
    subnet_length: int = 64,
    pps: float = 50_000.0,
    scan_duration: float = 6.0,
    seed: int = 23,
    batch_size: int = 1024,
    runner: ShardedScanRunner | None = None,
    telemetry: ScanTelemetry | None = None,
    max_shard_retries: int = 0,
    checkpoint_dir: str | None = None,
) -> ComparisonSeries:
    """Fig. 5: paired SRA and random scans of the same /64 subnets."""
    series = ComparisonSeries()
    paced = paced_pps(len(sra_targets), scan_duration, pps)
    for epoch in range(epochs):
        rng = random.Random((seed << 8) | epoch)
        # Lazy and released per epoch: only one epoch's random draw is
        # ever resident next to the shared SRA list.
        random_targets = LazyStream(
            lambda rng=rng: random_targets_for_sras(
                sra_targets, subnet_length, rng
            ),
            name=f"random-epoch{epoch}",
            subnet_length=subnet_length,
        )
        for method, targets, bucket in (
            ("sra", sra_targets, series.sra),
            ("random", random_targets, series.random),
        ):
            result = _scan(
                world,
                ScanConfig(pps=paced, seed=seed + epoch, batch_size=batch_size),
                targets,
                name=f"{method}-epoch{epoch}",
                epoch=epoch,
                runner=runner,
                telemetry=telemetry,
                max_shard_retries=max_shard_retries,
                checkpoint_dir=checkpoint_dir,
            )
            bucket.append(MethodScan(epoch=epoch, result=result))
        random_targets.release()
    return series


@dataclass(slots=True)
class VisibilityReport:
    """Fig. 6a: daily direct-probe responsiveness of discovered routers."""

    daily_responsive: list[set[int]] = field(default_factory=list)
    probed: set[int] = field(default_factory=set)

    @property
    def always(self) -> set[int]:
        if not self.daily_responsive:
            return set()
        result = set(self.daily_responsive[0])
        for day in self.daily_responsive[1:]:
            result &= day
        return result

    @property
    def never(self) -> set[int]:
        seen: set[int] = set()
        for day in self.daily_responsive:
            seen |= day
        return self.probed - seen

    @property
    def sometimes(self) -> set[int]:
        return self.probed - self.always - self.never

    def shares(self) -> dict[str, float]:
        total = len(self.probed)
        if total == 0:
            return {"always": 0.0, "sometimes": 0.0, "never": 0.0}
        return {
            "always": len(self.always) / total,
            "sometimes": len(self.sometimes) / total,
            "never": len(self.never) / total,
        }


def run_visibility(
    world: World,
    router_ips: set[int],
    *,
    days: int = 7,
    pps: float = 50_000.0,
    scan_duration: float = 6.0,
    seed: int = 31,
    epoch_base: int = 1000,
    batch_size: int = 1024,
    runner: ShardedScanRunner | None = None,
    telemetry: ScanTelemetry | None = None,
    max_shard_retries: int = 0,
    checkpoint_dir: str | None = None,
) -> VisibilityReport:
    """Probe each discovered router IP directly, once per day (Fig. 6a)."""
    report = VisibilityReport(probed=set(router_ips))
    ordered = sorted(router_ips)
    paced = paced_pps(len(ordered), scan_duration, pps)
    for day in range(days):
        epoch = epoch_base + day
        result = _scan(
            world,
            ScanConfig(pps=paced, seed=seed + day, batch_size=batch_size),
            ordered,
            name=f"direct-day{day}",
            epoch=epoch,
            runner=runner,
            telemetry=telemetry,
            max_shard_retries=max_shard_retries,
            checkpoint_dir=checkpoint_dir,
        )
        # Count a router visible only if it answered from the probed address.
        responsive = {
            record.source
            for record in result.records
            if record.is_echo and record.source == record.target
        }
        report.daily_responsive.append(responsive)
    return report


@dataclass(slots=True)
class StabilityReport:
    """Fig. 6b: per-epoch fate of each SRA address vs the first scan."""

    baseline: dict[int, int] = field(default_factory=dict)  # sra -> router IP
    epochs: list[dict[str, float]] = field(default_factory=list)

    def add_epoch(self, mapping: dict[int, int]) -> None:
        total = len(self.baseline)
        if total == 0:
            self.epochs.append({"same": 0.0, "changed": 0.0, "no_response": 0.0})
            return
        same = changed = missing = 0
        for sra, router_ip in self.baseline.items():
            now = mapping.get(sra)
            if now is None:
                missing += 1
            elif now == router_ip:
                same += 1
            else:
                changed += 1
        self.epochs.append(
            {
                "same": same / total,
                "changed": changed / total,
                "no_response": missing / total,
            }
        )


def run_stability(
    world: World,
    sra_targets: list[int],
    *,
    epochs: int = 6,
    pps: float = 50_000.0,
    scan_duration: float = 6.0,
    seed: int = 41,
    batch_size: int = 1024,
    runner: ShardedScanRunner | None = None,
    telemetry: ScanTelemetry | None = None,
    max_shard_retries: int = 0,
    checkpoint_dir: str | None = None,
) -> StabilityReport:
    """Fig. 6b: does re-probing an SRA reveal the same router IP?"""
    report = StabilityReport()
    paced = paced_pps(len(sra_targets), scan_duration, pps)
    for epoch in range(epochs):
        result = _scan(
            world,
            ScanConfig(pps=paced, seed=seed + epoch, batch_size=batch_size),
            sra_targets,
            name=f"stability-{epoch}",
            epoch=epoch,
            runner=runner,
            telemetry=telemetry,
            max_shard_retries=max_shard_retries,
            checkpoint_dir=checkpoint_dir,
        )
        mapping = result.target_to_source()
        if epoch == 0:
            report.baseline = mapping
        report.add_epoch(mapping)
    return report


def run_direct_discovery(
    world: World,
    router_ips: set[int],
    *,
    pps: float = 50_000.0,
    scan_duration: float = 6.0,
    seed: int = 53,
    epoch: int = 500,
    batch_size: int = 1024,
    runner: ShardedScanRunner | None = None,
    telemetry: ScanTelemetry | None = None,
    max_shard_retries: int = 0,
    checkpoint_dir: str | None = None,
) -> set[int]:
    """One direct scan of known router addresses — the baseline for the
    "SRA discovers 80 % more than direct targeting" comparison."""
    paced = paced_pps(len(router_ips), scan_duration, pps)
    result = _scan(
        world,
        ScanConfig(pps=paced, seed=seed, batch_size=batch_size),
        sorted(router_ips),
        name="direct",
        epoch=epoch,
        runner=runner,
        telemetry=telemetry,
        max_shard_retries=max_shard_retries,
        checkpoint_dir=checkpoint_dir,
    )
    return {
        record.source
        for record in result.records
        if record.is_echo and record.source == record.target
    }
