"""The paper's contribution: SRA survey orchestration and method comparisons."""

from .aliasfilter import AliasFilterStats, filter_aliased, is_self_reply
from .campaign import CampaignReport, MeasurementPlan, run_measurement_plan
from .probing import (
    ComparisonSeries,
    MethodScan,
    StabilityReport,
    VisibilityReport,
    run_direct_discovery,
    run_sra_vs_random,
    run_stability,
    run_visibility,
)
from .survey import (
    INPUT_SET_NAMES,
    InputSetResult,
    SRASurvey,
    SurveyConfig,
    SurveyResult,
    survey_repetition_overlap,
)

__all__ = [
    "AliasFilterStats",
    "CampaignReport",
    "MeasurementPlan",
    "ComparisonSeries",
    "INPUT_SET_NAMES",
    "InputSetResult",
    "MethodScan",
    "SRASurvey",
    "StabilityReport",
    "SurveyConfig",
    "SurveyResult",
    "VisibilityReport",
    "filter_aliased",
    "is_self_reply",
    "run_direct_discovery",
    "run_measurement_plan",
    "run_sra_vs_random",
    "run_stability",
    "run_visibility",
    "survey_repetition_overlap",
]
