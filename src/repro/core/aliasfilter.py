"""The survey's alias filter (§3.1 "IPv6 Alias Resolution").

Aliased networks answer Echo on *every* address, so their replies would
masquerade as router discoveries.  The paper filters in two steps:

1. drop replies whose source equals the probed SRA address — SRA addresses
   are typically not assigned to hosts, so a reply *from* the ``::0``
   address marks the subnet as aliased,
2. drop replies whose source falls inside the community aliased-prefix
   list (the TUM hitlist service's list).

This is deliberately a cheap approximation (the paper accepts a small
misclassification rate to keep scan performance); the trade-off is
quantified by the alias ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hitlist.aliases import AliasedPrefixList
from ..scanner.records import ScanRecord, ScanResult


@dataclass(frozen=True, slots=True)
class AliasFilterStats:
    """How many records each filter rule dropped."""

    kept: int
    dropped_self_reply: int
    dropped_alias_list: int

    @property
    def dropped(self) -> int:
        return self.dropped_self_reply + self.dropped_alias_list


def is_self_reply(record: ScanRecord) -> bool:
    """Reply sourced from the probed SRA address itself."""
    return record.is_echo and record.source == record.target


def filter_aliased(
    result: ScanResult,
    alias_list: AliasedPrefixList | None = None,
) -> tuple[ScanResult, AliasFilterStats]:
    """Return a copy of ``result`` with alias artefacts removed.

    Also drops *all* records of any target identified as aliased by rule 1
    — once the subnet is known to answer on everything, none of its replies
    are evidence of a router.
    """
    aliased_targets = {
        record.target for record in result.records if is_self_reply(record)
    }
    kept: list[ScanRecord] = []
    dropped_self = 0
    dropped_list = 0
    for record in result.records:
        if record.target in aliased_targets:
            dropped_self += 1
            continue
        if alias_list is not None and alias_list.contains_address(record.source):
            dropped_list += 1
            continue
        kept.append(record)
    filtered = ScanResult(
        name=result.name,
        epoch=result.epoch,
        sent=result.sent,
        lost=result.lost,
        records=kept,
        loops_observed=result.loops_observed,
        duration=result.duration,
        engine_stats=result.engine_stats,
    )
    stats = AliasFilterStats(
        kept=len(kept),
        dropped_self_reply=dropped_self,
        dropped_alias_list=dropped_list,
    )
    return filtered, stats
