"""One-call orchestration of the paper's whole measurement campaign.

§3 of the paper describes a multi-part plan: scan every input set (at
least twice), re-probe every discovered router address daily for a week,
re-scan the hitlist /64 SRAs six times within two days, and compare
against random probing.  :func:`run_measurement_plan` executes that plan
over a world and returns every intermediate product plus the headline
numbers (§4) in one report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hitlist.aliases import AliasedPrefixList
from ..hitlist.hitlist import Hitlist
from ..topology.entities import World
from .probing import (
    ComparisonSeries,
    StabilityReport,
    VisibilityReport,
    run_direct_discovery,
    run_sra_vs_random,
    run_stability,
    run_visibility,
)
from .survey import SRASurvey, SurveyConfig, SurveyResult


@dataclass(slots=True)
class MeasurementPlan:
    """The campaign's knobs (§3.2 scaled down)."""

    survey_config: SurveyConfig = field(default_factory=SurveyConfig)
    visibility_days: int = 7
    stability_scans: int = 6
    comparison_scans: int = 6
    max_stability_targets: int = 20_000
    max_visibility_routers: int = 20_000
    run_comparison: bool = True


@dataclass(slots=True)
class CampaignReport:
    """Everything the campaign produced."""

    survey: SurveyResult
    visibility: VisibilityReport
    stability: StabilityReport
    comparison: ComparisonSeries | None
    direct_discovered: set[int]

    @property
    def router_ips(self) -> set[int]:
        return self.survey.all_router_ips()

    def headline(self) -> dict[str, float]:
        """The paper's §4 headline metrics."""
        metrics: dict[str, float] = {
            "router_ips": float(len(self.router_ips)),
            "never_answer_directly": self.visibility.shares()["never"],
            "stable_same_router_last_scan": (
                self.stability.epochs[-1]["same"] if self.stability.epochs else 0.0
            ),
        }
        if self.comparison is not None:
            advantages = self.comparison.advantage_per_epoch()
            if advantages:
                metrics["sra_advantage_over_random"] = sum(advantages) / len(
                    advantages
                )
            metrics["sra_exclusive_routers"] = float(
                len(self.comparison.sra_exclusive())
            )
        if self.direct_discovered:
            # "SRA discovers 80 % more than targeting routers directly."
            metrics["sra_gain_over_direct"] = (
                len(self.router_ips) / len(self.direct_discovered) - 1.0
            )
        return metrics


def run_measurement_plan(
    world: World,
    hitlist: Hitlist,
    *,
    alias_list: AliasedPrefixList | None = None,
    plan: MeasurementPlan | None = None,
) -> CampaignReport:
    """Execute the full measurement plan over ``world``."""
    import random

    plan = plan or MeasurementPlan()
    survey = SRASurvey(
        world, hitlist, alias_list=alias_list, config=plan.survey_config
    ).run()

    router_ips = survey.all_router_ips()
    visibility_targets = router_ips
    if len(visibility_targets) > plan.max_visibility_routers:
        visibility_targets = set(
            random.Random(1).sample(
                sorted(visibility_targets), plan.max_visibility_routers
            )
        )
    visibility = run_visibility(
        world, visibility_targets, days=plan.visibility_days
    )

    sra_targets = hitlist.unique_slash64s()
    if len(sra_targets) > plan.max_stability_targets:
        sra_targets = random.Random(2).sample(
            sra_targets, plan.max_stability_targets
        )
    stability = run_stability(world, sra_targets, epochs=plan.stability_scans)

    comparison = None
    if plan.run_comparison:
        comparison = run_sra_vs_random(
            world, sra_targets, epochs=plan.comparison_scans
        )

    direct = run_direct_discovery(world, visibility_targets)
    return CampaignReport(
        survey=survey,
        visibility=visibility,
        stability=stability,
        comparison=comparison,
        direct_discovered=direct,
    )
