"""The SRA survey: the paper's measurement campaign, end to end.

``SRASurvey`` reproduces §3/§4: build the five input sets (BGP plain,
BGP /48, BGP /64, Route(6) /64, Hitlist /64), scan each through the
ZMapv6-style scanner, apply the alias filter, and aggregate per-input-set
effectiveness (Table 2) plus the Fig. 4 echo/error/both classification.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hitlist.aliases import AliasedPrefixList
from ..hitlist.hitlist import Hitlist
from ..scanner.backends import RetryPolicy
from ..scanner.pacing import paced_pps
from ..scanner.records import ScanResult
from ..scanner.sharded import ShardedScanRunner
from ..scanner.stream import (
    LazyStream,
    TargetStream,
    as_stream,
    make_spec,
    register_stream_builder,
)
from ..scanner.targets import (
    TargetList,
    bgp_plain_targets,
    bgp_slash48_targets,
    bgp_slash64_targets,
    hitlist_slash64_targets,
    route6_slash64_targets,
)
from ..scanner.zmapv6 import ScanConfig
from ..telemetry.scan import ScanTelemetry
from ..topology.entities import World
from .aliasfilter import AliasFilterStats, filter_aliased

INPUT_SET_NAMES = ("bgp-plain", "bgp-48", "bgp-64", "route6-64", "hitlist-64")

# Input sets whose construction draws from the survey's shared RNG, in the
# order the eager build consumed it.  The stream chain must realise them in
# exactly this order for the sampled targets to match the eager build.
_RNG_SET_ORDER = ("bgp-48", "bgp-64", "route6-64")

_SUBNET_LENGTHS = {
    "bgp-plain": None,
    "bgp-48": 48,
    "bgp-64": 64,
    "route6-64": 64,
    "hitlist-64": 64,
}


@dataclass(slots=True)
class SurveyConfig:
    """Budgets and scanner parameters for a full survey run.

    The paper probes 28.2 B addresses; the budgets scale each input set to
    simulator size while keeping their *relative* magnitudes (hitlist ≪
    artificial partitions).
    """

    seed: int = 11
    pps: float = 50_000.0
    # Virtual scan duration per input set.  Real scans sweep their target
    # space slowly (the paper: 28.2 B targets in ~1.5 days); pacing each
    # scan over a fixed virtual duration keeps the per-router probe rate
    # — and therefore RFC 4443 bucket pressure — at realistic levels
    # regardless of the scaled-down target count.
    scan_duration: float = 6.0
    hop_limit: int = 64
    max_bgp_plain: int | None = None
    slash48_per_prefix: int = 192
    max_bgp_48: int | None = 250_000
    slash64_per_prefix: int = 512
    max_bgp_64: int | None = 150_000
    route6_per_prefix: int = 96
    max_route6: int | None = 200_000
    max_hitlist: int | None = None
    apply_alias_filter: bool = True
    # Parallel scan execution: number of zmap-style shards each input-set
    # scan is split into, and the executor kind ("auto", "process",
    # "thread", "serial").  Sharded merges are deterministic, so these
    # knobs change wall-clock time only, never results.
    shards: int = 1
    parallel: str = "auto"
    # Probes per SimulationEngine.probe_batch() call (1 = legacy per-probe
    # path).  Like the sharding knobs this is a pure throughput dial:
    # results are bit-identical for any value.
    batch_size: int = 1024
    # Probe backend for every survey scan ("sim" or "wire-sim"; the
    # sharded runner refuses non-deterministic backends).  Another pure
    # execution dial: wire-sim output is byte-identical to sim's.
    backend: str = "sim"
    # Observability: when True the survey creates (or reuses, if one is
    # passed to SRASurvey) a ScanTelemetry facade shared across all five
    # input-set scans; progress_every is the per-scan probe cadence of
    # `progress` events (0 = none).
    telemetry: bool = False
    progress_every: int = 0
    # Crash tolerance: retry budget per failed shard, and a directory for
    # per-(scan, epoch) checkpoint journals.  Either switches the runner
    # into recovery mode (journal after every shard, retry with backoff,
    # salvage on SIGINT/SIGTERM); a journal left in checkpoint_dir from
    # an interrupted run auto-resumes and finishes byte-identically.
    max_shard_retries: int = 0
    checkpoint_dir: str | None = None
    # Backend resilience: per-batch retry budget, per-batch watchdog
    # deadline, and circuit-breaker open threshold.  All unset (the
    # defaults) means no ResilientBackend wrapper at all — the scans run
    # exactly as before this layer existed.
    backend_retries: int = 0
    backend_timeout: float | None = None
    breaker_threshold: float | None = None

    def resilience_policy(self) -> RetryPolicy | None:
        """The survey-wide :class:`RetryPolicy`, or None when unconfigured.

        Jitter is seeded from the survey seed so backoff delays are part
        of the same reproducible universe as everything else.
        """
        if (
            self.backend_retries == 0
            and self.backend_timeout is None
            and self.breaker_threshold is None
        ):
            return None
        return RetryPolicy(
            max_retries=self.backend_retries,
            timeout=self.backend_timeout,
            breaker_threshold=self.breaker_threshold,
            seed=self.seed,
        )


# Config fields a worker needs to rebuild an input set from a spec.
_BUDGET_FIELDS = (
    "seed",
    "max_bgp_plain",
    "slash48_per_prefix",
    "max_bgp_48",
    "slash64_per_prefix",
    "max_bgp_64",
    "route6_per_prefix",
    "max_route6",
)


def _input_set_factories(
    world: World, config: SurveyConfig, rng: random.Random
) -> dict[str, object]:
    """Zero-arg builders for the world-derived input sets.

    The single source of truth for *how* each set is built, shared by the
    survey's lazy stream chain and the spec builder that pool workers use
    to rebuild a set.  The RNG-consuming factories must run in
    :data:`_RNG_SET_ORDER` to reproduce the eager build's draws.
    """
    return {
        "bgp-plain": lambda: bgp_plain_targets(
            world.bgp, max_targets=config.max_bgp_plain
        ),
        "bgp-48": lambda: bgp_slash48_targets(
            world.bgp,
            max_per_prefix=config.slash48_per_prefix,
            max_targets=config.max_bgp_48,
            rng=rng,
        ),
        "bgp-64": lambda: bgp_slash64_targets(
            world.bgp,
            max_per_prefix=config.slash64_per_prefix,
            max_targets=config.max_bgp_64,
            rng=rng,
        ),
        "route6-64": lambda: route6_slash64_targets(
            world.irr,
            per_prefix=config.route6_per_prefix,
            max_targets=config.max_route6,
            rng=rng,
        ),
    }


def _build_survey_input_set(world: World, *, set_name: str, **budgets) -> TargetStream:
    """Spec builder: rebuild one world-derived input set in a pool worker.

    RNG-consuming sets share one seeded ``random.Random``; to reproduce
    the parent's draws the builder realises every RNG predecessor (and
    discards it) before building the requested set.  The hitlist set is
    not rebuildable from a world, so it never gets a spec.
    """
    config = SurveyConfig(**budgets)
    rng = random.Random(config.seed)
    factories = _input_set_factories(world, config, rng)
    if set_name not in factories:
        raise ValueError(f"unknown survey input set {set_name!r}")
    if set_name in _RNG_SET_ORDER:
        for name in _RNG_SET_ORDER:
            built = factories[name]()
            if name == set_name:
                return as_stream(built)
    return as_stream(factories[set_name]())


register_stream_builder("survey-input-set", _build_survey_input_set)


@dataclass(slots=True)
class InputSetResult:
    """Outcome of scanning one input set (one row of Table 2)."""

    name: str
    targets: int
    result: ScanResult
    alias_stats: AliasFilterStats | None = None

    @property
    def replies(self) -> int:
        return self.result.received

    @property
    def responsive_targets(self) -> int:
        return self.result.responsive_targets

    @property
    def router_ips(self) -> set[int]:
        return self.result.sources()

    @property
    def reply_rate(self) -> float:
        return self.responsive_targets / self.targets if self.targets else 0.0

    @property
    def discovery_rate(self) -> float:
        """Distinct router IPs per probed address."""
        return len(self.router_ips) / self.targets if self.targets else 0.0

    def response_type_shares(self) -> dict[str, float]:
        """Echo/error/both shares of replying router IPs (Fig. 4)."""
        classes = self.result.classify_sources()
        total = sum(len(v) for v in classes.values())
        if total == 0:
            return {"echo": 0.0, "error": 0.0, "both": 0.0}
        return {name: len(v) / total for name, v in classes.items()}


@dataclass(slots=True)
class SurveyResult:
    """All input-set results plus survey-wide aggregates."""

    input_sets: dict[str, InputSetResult] = field(default_factory=dict)

    @property
    def total_targets(self) -> int:
        return sum(r.targets for r in self.input_sets.values())

    @property
    def total_replies(self) -> int:
        return sum(r.replies for r in self.input_sets.values())

    def all_router_ips(self) -> set[int]:
        distinct: set[int] = set()
        for result in self.input_sets.values():
            distinct |= result.router_ips
        return distinct

    def table2_rows(self) -> list[dict[str, object]]:
        """The Table 2 rows: source, targets, replies, router IPs, rates."""
        rows = []
        for name in INPUT_SET_NAMES:
            result = self.input_sets.get(name)
            if result is None:
                continue
            rows.append(
                {
                    "source": name,
                    "addresses": result.targets,
                    "responsive": result.responsive_targets,
                    "replies": result.replies,
                    "reply_rate": result.reply_rate,
                    "router_ips": len(result.router_ips),
                    "discovery_rate": result.discovery_rate,
                }
            )
        rows.append(
            {
                "source": "total",
                "addresses": self.total_targets,
                "responsive": sum(
                    r.responsive_targets for r in self.input_sets.values()
                ),
                "replies": self.total_replies,
                "reply_rate": 0.0,
                "router_ips": len(self.all_router_ips()),
                "discovery_rate": 0.0,
            }
        )
        return rows


class SRASurvey:
    """Build input sets from a world and run the full campaign."""

    def __init__(
        self,
        world: World,
        hitlist: Hitlist,
        *,
        alias_list: AliasedPrefixList | None = None,
        config: SurveyConfig | None = None,
        runner: ShardedScanRunner | None = None,
        telemetry: ScanTelemetry | None = None,
    ) -> None:
        self.world = world
        self.hitlist = hitlist
        self.alias_list = alias_list
        self.config = config or SurveyConfig()
        if telemetry is None and self.config.telemetry:
            telemetry = ScanTelemetry()
        self.telemetry = telemetry
        self.runner = runner or ShardedScanRunner(
            world,
            shards=self.config.shards,
            executor=self.config.parallel,
            max_shard_retries=self.config.max_shard_retries,
            checkpoint_dir=self.config.checkpoint_dir,
        )

    # ---------------- input sets ---------------- #

    def build_input_sets(self) -> dict[str, LazyStream]:
        """The five Table 2 input sets as lazy streams under the budgets.

        Nothing is generated until a set is first touched, and
        :meth:`run` releases each stream's buffer after scanning it, so
        the five sets never co-reside in memory.  The RNG-consuming sets
        are ``after``-chained in build order: whichever is touched first,
        its predecessors realise (and consume their shared-RNG draws)
        first, so every sampled target matches the old eager build.
        """
        config = self.config
        rng = random.Random(config.seed)
        factories = _input_set_factories(self.world, config, rng)
        budgets = {name: getattr(config, name) for name in _BUDGET_FIELDS}
        streams: dict[str, LazyStream] = {}
        previous: LazyStream | None = None
        for name, factory in factories.items():
            stream = LazyStream(
                factory,
                name=name,
                subnet_length=_SUBNET_LENGTHS[name],
                after=previous if name in _RNG_SET_ORDER else None,
                spec=make_spec(
                    "survey-input-set", __name__, set_name=name, **budgets
                ),
            )
            if name in _RNG_SET_ORDER:
                previous = stream
            streams[name] = stream
        # The hitlist is not part of the world, so this set has no
        # worker-rebuildable spec; sharded process pools ship its data.
        streams["hitlist-64"] = LazyStream(
            lambda: hitlist_slash64_targets(
                self.hitlist, max_targets=self.config.max_hitlist
            ),
            name="hitlist-64",
            subnet_length=_SUBNET_LENGTHS["hitlist-64"],
        )
        return streams

    # ---------------- running ---------------- #

    def run_input_set(
        self, name: str, targets: TargetList | TargetStream, *, epoch: int = 0
    ) -> InputSetResult:
        pps = paced_pps(len(targets), self.config.scan_duration, self.config.pps)
        scan_config = ScanConfig(
            pps=pps,
            hop_limit=self.config.hop_limit,
            seed=self.config.seed,
            batch_size=self.config.batch_size,
            progress_every=self.config.progress_every,
            backend=self.config.backend,
            retry_policy=self.config.resilience_policy(),
        )
        raw = self.runner.scan(
            targets, scan_config, name=name, epoch=epoch, telemetry=self.telemetry
        )
        alias_stats: AliasFilterStats | None = None
        if self.config.apply_alias_filter:
            raw, alias_stats = filter_aliased(raw, self.alias_list)
        return InputSetResult(
            name=name,
            targets=len(targets),
            result=raw,
            alias_stats=alias_stats,
        )

    def run(self, *, epoch: int = 0) -> SurveyResult:
        """Scan all five input sets and aggregate.

        Each input-set stream is released right after its scan, so peak
        target memory is the largest single set, not the sum of five.
        """
        survey = SurveyResult()
        for name, targets in self.build_input_sets().items():
            survey.input_sets[name] = self.run_input_set(
                name, targets, epoch=epoch
            )
            if isinstance(targets, LazyStream):
                targets.release()
        return survey

    def run_repeated(self, times: int = 2, *, epoch_base: int = 0) -> list[SurveyResult]:
        """Run the whole survey ``times`` times in consecutive epochs.

        The paper performs each scan at least twice (§3.2); the *final*
        router-IP list is compiled from the initial scan of each input
        source, with the repetitions quantifying run-to-run variation —
        see :func:`survey_repetition_overlap`.
        """
        if times < 1:
            raise ValueError("times must be >= 1")
        input_sets = self.build_input_sets()
        results = []
        for repetition in range(times):
            survey = SurveyResult()
            for name, targets in input_sets.items():
                survey.input_sets[name] = self.run_input_set(
                    name, targets, epoch=epoch_base + repetition
                )
            results.append(survey)
        return results


def survey_repetition_overlap(results: list[SurveyResult]) -> dict[str, float]:
    """Per input set, the overlap of router IPs between the first and the
    subsequent survey repetitions (|intersection| / |first|)."""
    if not results:
        return {}
    first = results[0]
    overlaps: dict[str, float] = {}
    for name, result in first.input_sets.items():
        base = result.router_ips
        if not base:
            overlaps[name] = 0.0
            continue
        shared = set(base)
        for repetition in results[1:]:
            other = repetition.input_sets.get(name)
            if other is not None:
                shared &= other.router_ips
        overlaps[name] = len(shared) / len(base)
    return overlaps
