"""IPv6 fixed header encoding and decoding (RFC 8200).

The simulator moves real bytes so that the reply-matching machinery (which
recovers the probed SRA target from ICMPv6 payloads and from quoted packets
inside error messages) is exercised exactly as on the wire.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

IPV6_VERSION = 6
HEADER_LENGTH = 40
NEXT_HEADER_ICMPV6 = 58
DEFAULT_HOP_LIMIT = 64

_HEADER = struct.Struct("!IHBB16s16s")


class PacketError(ValueError):
    """Raised for malformed packet bytes."""


@dataclass(frozen=True, slots=True)
class IPv6Header:
    """The 40-byte IPv6 fixed header.

    ``src`` and ``dst`` are integer addresses; traffic class and flow label
    are carried but unused by the simulator.
    """

    src: int
    dst: int
    payload_length: int
    next_header: int = NEXT_HEADER_ICMPV6
    hop_limit: int = DEFAULT_HOP_LIMIT
    traffic_class: int = 0
    flow_label: int = 0

    def encode(self) -> bytes:
        if not 0 <= self.hop_limit <= 255:
            raise PacketError(f"hop limit out of range: {self.hop_limit}")
        if not 0 <= self.payload_length <= 0xFFFF:
            raise PacketError(f"payload length out of range: {self.payload_length}")
        word0 = (
            (IPV6_VERSION << 28)
            | ((self.traffic_class & 0xFF) << 20)
            | (self.flow_label & 0xFFFFF)
        )
        return _HEADER.pack(
            word0,
            self.payload_length,
            self.next_header,
            self.hop_limit,
            self.src.to_bytes(16, "big"),
            self.dst.to_bytes(16, "big"),
        )

    @classmethod
    def decode(cls, data: bytes) -> "IPv6Header":
        if len(data) < HEADER_LENGTH:
            raise PacketError(f"truncated IPv6 header: {len(data)} bytes")
        word0, payload_length, next_header, hop_limit, src, dst = _HEADER.unpack(
            data[:HEADER_LENGTH]
        )
        version = word0 >> 28
        if version != IPV6_VERSION:
            raise PacketError(f"not an IPv6 packet (version {version})")
        return cls(
            src=int.from_bytes(src, "big"),
            dst=int.from_bytes(dst, "big"),
            payload_length=payload_length,
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(word0 >> 20) & 0xFF,
            flow_label=word0 & 0xFFFFF,
        )

    def decremented(self) -> "IPv6Header":
        """A copy with the hop limit decremented by one (forwarding step)."""
        if self.hop_limit == 0:
            raise PacketError("cannot decrement hop limit below zero")
        return replace(self, hop_limit=self.hop_limit - 1)


def pseudo_header(src: int, dst: int, length: int, next_header: int) -> bytes:
    """The IPv6 pseudo-header used for upper-layer checksums (RFC 8200 §8.1)."""
    return (
        src.to_bytes(16, "big")
        + dst.to_bytes(16, "big")
        + struct.pack("!IxxxB", length, next_header)
    )


def internet_checksum(data: bytes) -> int:
    """The 16-bit one's-complement Internet checksum (RFC 1071)."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF
