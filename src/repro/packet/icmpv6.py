"""ICMPv6 message encoding and decoding (RFC 4443).

Implements the message types the measurement uses:

* Echo Request / Echo Reply (types 128/129) for probing,
* Destination Unreachable (type 1) with the codes routers emit for missing
  routes and unassigned addresses,
* Time Exceeded (type 3) — what looping packets degenerate into,
* Packet Too Big (type 2) for completeness.

Error messages quote as much of the invoking packet as fits (RFC 4443 §2.4),
which is what lets the scanner recover the probed target from errors.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from .ipv6hdr import (
    NEXT_HEADER_ICMPV6,
    PacketError,
    internet_checksum,
    pseudo_header,
)

ICMPV6_HEADER_LENGTH = 8
# RFC 4443 §2.4(c): error messages must not exceed the IPv6 minimum MTU.
MAX_ERROR_QUOTE = 1280 - 40 - ICMPV6_HEADER_LENGTH


class ICMPv6Type(enum.IntEnum):
    DESTINATION_UNREACHABLE = 1
    PACKET_TOO_BIG = 2
    TIME_EXCEEDED = 3
    PARAMETER_PROBLEM = 4
    ECHO_REQUEST = 128
    ECHO_REPLY = 129

    @property
    def is_error(self) -> bool:
        """Per RFC 4443, types < 128 are error messages."""
        return self.value < 128


class UnreachableCode(enum.IntEnum):
    NO_ROUTE = 0
    ADMIN_PROHIBITED = 1
    BEYOND_SCOPE = 2
    ADDRESS_UNREACHABLE = 3
    PORT_UNREACHABLE = 4


class TimeExceededCode(enum.IntEnum):
    HOP_LIMIT_EXCEEDED = 0
    FRAGMENT_REASSEMBLY = 1


@dataclass(frozen=True, slots=True)
class ICMPv6Message:
    """A decoded ICMPv6 message.

    For echo messages ``identifier``/``sequence`` are meaningful and ``body``
    is the echo payload.  For error messages they are zero and ``body`` is
    the quoted invoking packet (starting at its IPv6 header).
    """

    type: ICMPv6Type
    code: int
    identifier: int = 0
    sequence: int = 0
    body: bytes = b""

    @property
    def is_error(self) -> bool:
        return self.type.is_error

    @property
    def is_echo_reply(self) -> bool:
        return self.type is ICMPv6Type.ECHO_REPLY

    def encode(self, src: int, dst: int) -> bytes:
        """Serialise with a valid checksum over the IPv6 pseudo-header."""
        if self.type in (ICMPv6Type.ECHO_REQUEST, ICMPv6Type.ECHO_REPLY):
            rest = struct.pack("!HH", self.identifier, self.sequence)
        else:
            rest = struct.pack("!I", 0)
        without_checksum = (
            struct.pack("!BBH", self.type, self.code, 0) + rest + self.body
        )
        checksum = internet_checksum(
            pseudo_header(src, dst, len(without_checksum), NEXT_HEADER_ICMPV6)
            + without_checksum
        )
        return (
            struct.pack("!BBH", self.type, self.code, checksum) + rest + self.body
        )

    @classmethod
    def decode(cls, data: bytes, *, src: int, dst: int, verify: bool = True) -> "ICMPv6Message":
        if len(data) < ICMPV6_HEADER_LENGTH:
            raise PacketError(f"truncated ICMPv6 message: {len(data)} bytes")
        type_value, code, checksum = struct.unpack("!BBH", data[:4])
        try:
            msg_type = ICMPv6Type(type_value)
        except ValueError as exc:
            raise PacketError(f"unknown ICMPv6 type {type_value}") from exc
        if verify:
            zeroed = data[:2] + b"\x00\x00" + data[4:]
            expected = internet_checksum(
                pseudo_header(src, dst, len(data), NEXT_HEADER_ICMPV6) + zeroed
            )
            if expected != checksum:
                raise PacketError(
                    f"bad ICMPv6 checksum: got {checksum:#06x}, want {expected:#06x}"
                )
        if msg_type in (ICMPv6Type.ECHO_REQUEST, ICMPv6Type.ECHO_REPLY):
            identifier, sequence = struct.unpack("!HH", data[4:8])
            return cls(msg_type, code, identifier, sequence, bytes(data[8:]))
        return cls(msg_type, code, body=bytes(data[8:]))


def echo_request(identifier: int, sequence: int, payload: bytes) -> ICMPv6Message:
    return ICMPv6Message(
        ICMPv6Type.ECHO_REQUEST, 0, identifier & 0xFFFF, sequence & 0xFFFF, payload
    )


def echo_reply_for(request: ICMPv6Message) -> ICMPv6Message:
    """The Echo Reply a conforming node sends: same id/seq/payload."""
    if request.type is not ICMPv6Type.ECHO_REQUEST:
        raise PacketError("echo_reply_for requires an Echo Request")
    return ICMPv6Message(
        ICMPv6Type.ECHO_REPLY,
        0,
        request.identifier,
        request.sequence,
        request.body,
    )


def error_message(
    msg_type: ICMPv6Type, code: int, invoking_packet: bytes
) -> ICMPv6Message:
    """An error message quoting the invoking packet, MTU-truncated."""
    if not msg_type.is_error:
        raise PacketError(f"{msg_type.name} is not an error type")
    return ICMPv6Message(msg_type, code, body=invoking_packet[:MAX_ERROR_QUOTE])
