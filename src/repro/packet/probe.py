"""Probe payload codec: recover the probed target from any reply.

A stateless scanner cannot keep a table of outstanding probes.  Following
the paper (§3.1 "Capturing replies") the probed SRA target is encoded in the
ICMPv6 Echo payload; replies carry it back in two ways:

* an **Echo Reply** echoes the payload verbatim,
* an **error message** quotes the invoking packet — IPv6 header included —
  so the original destination address (and our payload) can be extracted.

The payload is ``magic || target(16B) || probe_id(8B) || mac(4B)`` where the
MAC is a keyed hash binding the fields to this scan, rejecting unrelated or
forged traffic (the zmap "validation" trick).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .icmpv6 import ICMPv6Message, ICMPv6Type
from .ipv6hdr import HEADER_LENGTH, IPv6Header, PacketError

PAYLOAD_MAGIC = b"SRA6"
PAYLOAD_LENGTH = len(PAYLOAD_MAGIC) + 16 + 8 + 4


@dataclass(frozen=True, slots=True)
class ProbePayload:
    """The decoded content of a probe payload."""

    target: int
    probe_id: int


def _mac(key: bytes, target: int, probe_id: int) -> bytes:
    digest = hashlib.blake2s(
        target.to_bytes(16, "big") + probe_id.to_bytes(8, "big"),
        key=key[:32],
        digest_size=4,
    )
    return digest.digest()


def encode_payload(target: int, probe_id: int, key: bytes) -> bytes:
    """Build the probe payload for a target address."""
    return (
        PAYLOAD_MAGIC
        + target.to_bytes(16, "big")
        + (probe_id & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
        + _mac(key, target, probe_id)
    )


def decode_payload(payload: bytes, key: bytes) -> ProbePayload | None:
    """Parse and authenticate a probe payload; None if not ours."""
    if len(payload) < PAYLOAD_LENGTH or not payload.startswith(PAYLOAD_MAGIC):
        return None
    offset = len(PAYLOAD_MAGIC)
    target = int.from_bytes(payload[offset : offset + 16], "big")
    probe_id = int.from_bytes(payload[offset + 16 : offset + 24], "big")
    mac = payload[offset + 24 : offset + 28]
    if mac != _mac(key, target, probe_id):
        return None
    return ProbePayload(target=target, probe_id=probe_id)


def extract_probe(
    message: ICMPv6Message, key: bytes
) -> tuple[ProbePayload, int] | None:
    """Recover (payload, original destination) from any reply message.

    For Echo replies the original destination *is* the encoded target.  For
    error messages we decode the quoted invoking packet: its IPv6 header
    yields the original destination, and the quoted ICMPv6 echo carries our
    payload (if the quote was long enough to include it).
    """
    if message.type is ICMPv6Type.ECHO_REPLY:
        payload = decode_payload(message.body, key)
        if payload is None:
            return None
        return payload, payload.target
    if not message.is_error:
        return None
    quoted = message.body
    if len(quoted) < HEADER_LENGTH:
        return None
    try:
        inner_header = IPv6Header.decode(quoted)
    except PacketError:
        return None
    inner_icmp = quoted[HEADER_LENGTH:]
    # Quoted echo request: 8-byte ICMPv6 header then our payload.
    if len(inner_icmp) < 8:
        return None
    payload = decode_payload(inner_icmp[8:], key)
    if payload is None:
        return None
    if payload.target != inner_header.dst:
        # A forwarding middlebox rewrote the destination; distrust it.
        return None
    return payload, inner_header.dst


def build_probe_packet(
    src: int,
    target: int,
    probe_id: int,
    key: bytes,
    *,
    hop_limit: int,
    identifier: int,
    sequence: int,
) -> bytes:
    """Encode a complete on-the-wire Echo Request probe for ``target``."""
    from .icmpv6 import echo_request  # local import avoids cycle at module load

    message = echo_request(identifier, sequence, encode_payload(target, probe_id, key))
    icmp_bytes = message.encode(src, target)
    header = IPv6Header(
        src=src, dst=target, payload_length=len(icmp_bytes), hop_limit=hop_limit
    )
    return header.encode() + icmp_bytes
