"""Byte-accurate IPv6 + ICMPv6 packet formats and the probe payload codec."""

from .icmpv6 import (
    ICMPV6_HEADER_LENGTH,
    MAX_ERROR_QUOTE,
    ICMPv6Message,
    ICMPv6Type,
    TimeExceededCode,
    UnreachableCode,
    echo_reply_for,
    echo_request,
    error_message,
)
from .ipv6hdr import (
    DEFAULT_HOP_LIMIT,
    HEADER_LENGTH,
    NEXT_HEADER_ICMPV6,
    IPv6Header,
    PacketError,
    internet_checksum,
    pseudo_header,
)
from .probe import (
    PAYLOAD_LENGTH,
    PAYLOAD_MAGIC,
    ProbePayload,
    build_probe_packet,
    decode_payload,
    encode_payload,
    extract_probe,
)

__all__ = [
    "DEFAULT_HOP_LIMIT",
    "HEADER_LENGTH",
    "ICMPV6_HEADER_LENGTH",
    "ICMPv6Message",
    "ICMPv6Type",
    "IPv6Header",
    "MAX_ERROR_QUOTE",
    "NEXT_HEADER_ICMPV6",
    "PAYLOAD_LENGTH",
    "PAYLOAD_MAGIC",
    "PacketError",
    "ProbePayload",
    "TimeExceededCode",
    "UnreachableCode",
    "build_probe_packet",
    "decode_payload",
    "echo_reply_for",
    "echo_request",
    "encode_payload",
    "error_message",
    "extract_probe",
    "internet_checksum",
    "pseudo_header",
]
