"""The scan telemetry facade and its hot-path instrumentation pieces.

Three layers, from the packet engine up:

* :class:`HotPathCollector` — the only object the simulation engine ever
  sees.  It records *first occurrences* (first probe to hit each loop
  router, first error each router's RFC 4443 limiter suppressed) into
  plain dicts, so the engine's hot path pays one ``is not None`` check on
  rare branches and nothing anywhere else.
* :class:`ShardTelemetry` — the per-shard capture: progress events, the
  collector dicts, and a :class:`~repro.telemetry.metrics.MetricsRegistry`
  populated from the shard's scan result.  Plain data by construction so
  it rides home through the process pool, and merged deterministically by
  :func:`repro.scanner.sharded.merge_shard_outcomes` alongside
  ``EngineStats``.
* :class:`ScanTelemetry` — the user-facing facade: owns the global event
  stream (``seq`` assignment) and the merged registry, and writes the
  JSONL / Prometheus sinks.

Determinism contract: for a fixed configuration (seed, shard count,
progress cadence) two runs produce byte-identical JSONL and Prometheus
text.  The *registry* (and therefore the Prometheus export) is moreover
invariant to batch size and shard count — per-shard registries merge to
exactly the serial registry, the same guarantee ``EngineStats`` has.
``loop_detected`` and ``rate_limit_engaged`` events are shard-invariant
too (first occurrences in virtual time are global properties); only
``progress`` and ``shard_finished`` events are per-shard by nature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..atomicio import atomic_write_text
from .events import body_sort_key, events_to_jsonl, make_event, write_events
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # telemetry stays import-light; scans are duck-typed
    from ..netsim.engine import EngineStats
    from ..scanner.records import ScanResult

__all__ = [
    "AMPLIFICATION_EDGES",
    "BACKEND_RETRIES_TOTAL",
    "BACKEND_SCANS_TOTAL",
    "BACKEND_TIMEOUTS_TOTAL",
    "BACKEND_WARNINGS_TOTAL",
    "BREAKER_TRANSITIONS_TOTAL",
    "CHECKPOINTS_TOTAL",
    "FAULTED_PROBES_TOTAL",
    "QUARANTINED_BATCHES_TOTAL",
    "ENGINE_STAT_COUNTERS",
    "RECORDS_BUFFERED_GAUGE",
    "REPLY_VTIME_EDGES",
    "RESUMES_TOTAL",
    "SHARDS_SALVAGED_TOTAL",
    "SHARD_RETRIES_TOTAL",
    "TARGETS_BUFFERED_GAUGE",
    "UNMATCHED_REPLIES_TOTAL",
    "HotPathCollector",
    "ScanTelemetry",
    "ShardTelemetry",
    "apply_suppression_correction",
    "collector_events",
    "merge_first_times",
    "populate_registry",
    "record_metrics",
    "retract_record",
]

# Virtual seconds into the scan at which a reply arrived.  Fixed edges:
# campaign scans pace over single-digit virtual durations (SurveyConfig
# scan_duration defaults to 6s), benchmarks run longer.
REPLY_VTIME_EDGES = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

# Reply replication count per matched record; the top edge is the
# engine's amplification cap (~4.2M replies, see netsim.engine).
AMPLIFICATION_EDGES = (1.0, 2.0, 8.0, 64.0, 1024.0, 65536.0, float(1 << 22))

# EngineStats field -> (metric name, help).  Mirrored one-to-one so the
# sharded merge can apply the same suppressed-error correction to the
# registry that it applies to the merged EngineStats.
ENGINE_STAT_COUNTERS = {
    "probes": ("sra_scan_probes_total", "Echo Requests sent"),
    "lost": ("sra_scan_probes_lost_total", "probes lost in flight"),
    "echo_replies": ("sra_scan_echo_replies_total", "Echo Replies received"),
    "error_replies": (
        "sra_scan_error_replies_total",
        "ICMPv6 error messages received (incl. amplified duplicates)",
    ),
    "suppressed_errors": (
        "sra_scan_suppressed_errors_total",
        "errors suppressed by RFC 4443 rate limiting",
    ),
    "loops_hit": ("sra_scan_loops_hit_total", "probes that entered a routing loop"),
    "amplified_replies": (
        "sra_scan_amplified_replies_total",
        "duplicate replies fabricated by loop amplification",
    ),
}

RECORDS_TOTAL = "sra_scan_records_total"
FLOOD_PACKETS_TOTAL = "sra_scan_flood_packets_total"
REPLY_VTIME_HISTOGRAM = "sra_scan_reply_vtime_seconds"
AMPLIFICATION_HISTOGRAM = "sra_scan_reply_amplification"
SCANS_TOTAL = "sra_scans_total"
LAST_DURATION_GAUGE = "sra_scan_last_duration_seconds"
# Streaming-pipeline memory gauges: how many targets / records the last
# scan held in memory.  A constant-memory scan (computable TargetStream +
# streaming RecordSink) reports 0/0; the materialised path reports its
# full counts — the gauges are the observable difference between the two
# modes, everything else is byte-identical.
TARGETS_BUFFERED_GAUGE = "sra_scan_targets_buffered"
RECORDS_BUFFERED_GAUGE = "sra_scan_records_buffered"
# Per-strategy race counters: what each discovery strategy spent and
# found, keyed by strategy name in the metric name (the flat registry
# has no labels).  Deterministic facts of the race — main channel.
STRATEGY_COUNTER_SUFFIXES = {
    "windows_total": "strategy windows scanned",
    "probes_total": "probe targets the strategy spent",
    "discoveries_total": "router IPs first discovered by the strategy",
    "dark_probes_total": "probes that landed in unallocated space",
    "suppressed_errors_total": "errors rate limiting withheld from the strategy",
}


def strategy_metric_name(strategy: str, suffix: str) -> str:
    """``sra_strategy_<name>_<suffix>`` with Prometheus-safe characters."""
    return f"sra_strategy_{strategy.replace('-', '_')}_{suffix}"
# Operational (crash-recovery) counters.  These live on the facade's
# separate ops registry: checkpoints, retries, and resumes are properties
# of *this process's* execution, not of the scan's deterministic outcome,
# so keeping them out of the main registry is what lets a resumed run's
# Prometheus export stay byte-identical to an uninterrupted run's.
CHECKPOINTS_TOTAL = "sra_scan_checkpoints_total"
SHARD_RETRIES_TOTAL = "sra_scan_shard_retries_total"
RESUMES_TOTAL = "sra_scan_resumes_total"
SHARDS_SALVAGED_TOTAL = "sra_scan_shards_salvaged_total"
# Probe-backend accounting (ops-channel too: *which executor* probed and
# what inbound traffic failed to match are execution properties — the
# deterministic outcome of a sim/wire-sim scan is identical either way).
BACKEND_SCANS_TOTAL = "sra_scan_backend_scans_total"
UNMATCHED_REPLIES_TOTAL = "sra_scan_unmatched_replies_total"
# Backend-resilience counters (ops-channel: retries, watchdog timeouts,
# breaker trips, and quarantines describe how this process fought its
# transport, not what the scan found — a retried run's main channel is
# byte-identical to a fault-free one's).
BACKEND_RETRIES_TOTAL = "sra_scan_backend_retries_total"
BACKEND_TIMEOUTS_TOTAL = "sra_scan_backend_timeouts_total"
QUARANTINED_BATCHES_TOTAL = "sra_scan_quarantined_batches_total"
FAULTED_PROBES_TOTAL = "sra_scan_faulted_probes_total"
BREAKER_TRANSITIONS_TOTAL = "sra_scan_breaker_transitions_total"
BACKEND_WARNINGS_TOTAL = "sra_scan_backend_warnings_total"
# Shared-memory shard-transport counters (also ops-channel: they describe
# how this process moved bytes, not what the scan found).  Names mirror
# RingStats fields: sra_scan_ring_<field>_total.
RING_COUNTERS = {
    "segments": (
        "sra_scan_ring_segments_total",
        "shared-memory frames shipped by shard workers",
    ),
    "bytes": (
        "sra_scan_ring_bytes_total",
        "bytes moved through shared-memory frames",
    ),
    "records": (
        "sra_scan_ring_records_total",
        "scan records transported via shared memory",
    ),
    "checks": (
        "sra_scan_ring_checks_total",
        "rate-limit checks transported via shared memory",
    ),
    "fallbacks": (
        "sra_scan_ring_fallbacks_total",
        "shard outcomes that fell back to pickle transport",
    ),
}


class HotPathCollector:
    """First-occurrence recorder attached to a :class:`SimulationEngine`.

    The engine calls :meth:`on_loop` when a probe enters a loop region and
    :meth:`on_suppressed` when a router's rate limiter swallows an error.
    Both paths are rare by construction, and with telemetry disabled the
    engine's only cost is the ``telemetry is not None`` check guarding the
    call — the packet hot path itself is untouched.

    Scans probe in non-decreasing virtual time, so "first insert wins"
    records the *earliest* occurrence; sharded scans merge their
    shard-local dicts by minimum time, which reproduces the serial
    first occurrence exactly.
    """

    __slots__ = ("first_loop", "first_suppressed")

    def __init__(self) -> None:
        self.first_loop: dict[int, float] = {}
        self.first_suppressed: dict[int, float] = {}

    def on_loop(self, router_id: int, time: float) -> None:
        if router_id not in self.first_loop:
            self.first_loop[router_id] = time

    def on_suppressed(self, router_id: int, time: float) -> None:
        if router_id not in self.first_suppressed:
            self.first_suppressed[router_id] = time


def merge_first_times(dicts: Iterable[dict[int, float]]) -> dict[int, float]:
    """Merge per-shard first-occurrence dicts: earliest time wins."""
    merged: dict[int, float] = {}
    for current in dicts:
        for router_id, time in current.items():
            known = merged.get(router_id)
            if known is None or time < known:
                merged[router_id] = time
    return merged


def collector_events(
    *,
    scan: str,
    epoch: int,
    first_loop: dict[int, float],
    first_suppressed: dict[int, float],
) -> list[dict]:
    """``loop_detected`` / ``rate_limit_engaged`` events from collector
    dicts (unsorted; callers sort the whole body with
    :func:`~repro.telemetry.events.body_sort_key`)."""
    events = [
        make_event(
            "loop_detected", scan=scan, epoch=epoch, vtime=time, router=router
        )
        for router, time in first_loop.items()
    ]
    events.extend(
        make_event(
            "rate_limit_engaged",
            scan=scan,
            epoch=epoch,
            vtime=time,
            router=router,
        )
        for router, time in first_suppressed.items()
    )
    return events


@dataclass(slots=True)
class ShardTelemetry:
    """One shard's (or one serial scan's) captured telemetry.

    Plain data: lists, dicts, and a registry of plain metric objects —
    picklable, so process-pool shards ship it back with their outcome.
    """

    events: list[dict] = field(default_factory=list)  # progress snapshots
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    first_loop: dict[int, float] = field(default_factory=dict)
    first_suppressed: dict[int, float] = field(default_factory=dict)


def record_metrics(registry: MetricsRegistry):
    """Create-or-get the four record-derived metrics of a registry.

    Returns ``(records, flood, vtimes, amplification)``.  The streaming
    scan path observes these incrementally per emitted record; the
    buffered path folds them in at scan end via
    :func:`populate_registry`.  Counter sums and fixed-edge histograms
    are order-independent (histogram sums use exact Fractions), so both
    paths produce byte-identical exports.
    """
    records = registry.counter(RECORDS_TOTAL, "matched reply records")
    flood = registry.counter(
        FLOOD_PACKETS_TOTAL, "unsolicited duplicates from loop amplification"
    )
    vtimes = registry.histogram(
        REPLY_VTIME_HISTOGRAM,
        REPLY_VTIME_EDGES,
        "virtual seconds into the scan at which replies arrived",
    )
    amplification = registry.histogram(
        AMPLIFICATION_HISTOGRAM,
        AMPLIFICATION_EDGES,
        "reply replication count per matched record",
    )
    return records, flood, vtimes, amplification


def populate_registry(
    registry: MetricsRegistry,
    result: "ScanResult",
    stats: "EngineStats | None" = None,
    *,
    records: "Iterable | None" = None,
) -> MetricsRegistry:
    """Fold one scan's counters and record-derived metrics into a registry.

    ``stats`` defaults to ``result.engine_stats``.  Counters *add*, so one
    registry can accumulate a whole campaign; the same function populates
    per-shard registries (pre-merge) and serial-scan registries, which is
    what makes the sharded merge provably equivalent to the serial path.

    ``records`` overrides the record iterable (default
    ``result.records``); a scan that already observed its records
    incrementally through a streaming sink passes ``records=()`` so only
    the engine-stat counters are folded in here.
    """
    if stats is None:
        stats = result.engine_stats
    if stats is not None:
        for field_name, (metric_name, help_text) in ENGINE_STAT_COUNTERS.items():
            registry.counter(metric_name, help_text).inc(
                getattr(stats, field_name)
            )
    record_counter, flood, vtimes, amplification = record_metrics(registry)
    if records is None:
        records = result.records
    count = 0
    flood_total = 0
    for record in records:
        count += 1
        vtimes.observe(record.time)
        amplification.observe(record.count)
        flood_total += record.count - 1
    record_counter.inc(count)
    flood.inc(flood_total)
    return registry


def retract_record(registry: MetricsRegistry, record) -> None:
    """Undo one record's record-derived metrics (sharded merge: the rate-
    limit replay decided this provisional error was suppressed)."""
    counter = registry.get(RECORDS_TOTAL)
    if counter is not None:
        counter.value -= 1
    flood = registry.get(FLOOD_PACKETS_TOTAL)
    if flood is not None:
        flood.value -= record.count - 1
    vtimes = registry.get(REPLY_VTIME_HISTOGRAM)
    if vtimes is not None:
        vtimes.observe(record.time, count=-1)
    amplification = registry.get(AMPLIFICATION_HISTOGRAM)
    if amplification is not None:
        amplification.observe(record.count, count=-1)


def apply_suppression_correction(
    registry: MetricsRegistry, disallowed: int
) -> None:
    """Move replay-suppressed errors between the two error counters —
    the registry twin of the ``EngineStats`` correction in
    :func:`repro.scanner.sharded.merge_shard_outcomes`."""
    if not disallowed:
        return
    errors = registry.get(ENGINE_STAT_COUNTERS["error_replies"][0])
    if errors is not None:
        errors.value -= disallowed
    suppressed = registry.counter(
        *ENGINE_STAT_COUNTERS["suppressed_errors"]
    )
    suppressed.inc(disallowed)


class ScanTelemetry:
    """The observability facade: one event stream + one metrics registry.

    Share a single instance across every scan of a campaign (the survey's
    five input sets, a Fig. 5 epoch series, ...): events append in scan
    order with a global ``seq``, and the registry accumulates counters
    across scans.  ``sra-scan --telemetry-out/--metrics-out`` and
    ``sra-repro --telemetry-out`` are thin wrappers over the two sinks.

    Crash-recovery machinery reports on a *second* channel
    (``ops_events`` / ``ops_registry``): checkpoint, retry, and resume
    events describe how this particular process execution went, not what
    the scan deterministically produced, so they must never perturb the
    main stream — the byte-identity contract between resumed and
    uninterrupted runs depends on it.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.events: list[dict] = []
        self._seq = 0
        self.ops_registry = MetricsRegistry()
        self.ops_events: list[dict] = []
        self._ops_seq = 0

    # ------------------------------------------------------------------ #
    # event emission
    # ------------------------------------------------------------------ #

    def emit(self, event: dict) -> dict:
        """Append one event, stamping its stream sequence number."""
        event["seq"] = self._seq
        self._seq += 1
        self.events.append(event)
        return event

    def emit_sorted(self, body: list[dict]) -> None:
        """Emit a scan's body events in deterministic order."""
        for event in sorted(body, key=body_sort_key):
            self.emit(event)

    def scan_started(
        self,
        *,
        scan: str,
        epoch: int,
        targets: int,
        shards: int,
        pps: float,
    ) -> None:
        self.emit(
            make_event(
                "scan_started",
                scan=scan,
                epoch=epoch,
                vtime=0.0,
                targets=targets,
                shards=shards,
                pps=pps,
            )
        )

    def shard_finished(
        self,
        *,
        scan: str,
        epoch: int,
        shard: int,
        sent: int,
        records: int,
        lost: int,
        loops: int,
        duration: float,
    ) -> None:
        self.emit(
            make_event(
                "shard_finished",
                scan=scan,
                epoch=epoch,
                vtime=duration,
                shard=shard,
                sent=sent,
                records=records,
                lost=lost,
                loops=loops,
                duration=duration,
            )
        )

    def scan_finished(
        self,
        *,
        scan: str,
        epoch: int,
        result: "ScanResult",
        targets_buffered: int = 0,
    ) -> None:
        """Emit the closing event and roll the scan into the summary
        gauges/counters (``sra_scans_total``, last-duration gauge, and
        the streaming-pipeline memory gauges).

        ``targets_buffered`` is how many target values the scan's input
        stream held in memory (``TargetStream.buffered``; a plain list
        counts in full).  Records buffered is read off the result — a
        streaming-sink scan leaves ``result.records`` empty.
        """
        stats = result.engine_stats
        stats_fields = {}
        if stats is not None:
            stats_fields = {
                name: getattr(stats, name) for name in ENGINE_STAT_COUNTERS
            }
        self.emit(
            make_event(
                "scan_finished",
                scan=scan,
                epoch=epoch,
                vtime=result.duration,
                sent=result.sent,
                records=result.received,
                lost=result.lost,
                loops=result.loops_observed,
                duration=result.duration,
                stats=stats_fields,
            )
        )
        self.registry.counter(SCANS_TOTAL, "scans completed").inc()
        self.registry.gauge(
            LAST_DURATION_GAUGE, "virtual duration of the last scan"
        ).set(result.duration)
        self.registry.gauge(
            TARGETS_BUFFERED_GAUGE,
            "target values the last scan held in memory",
        ).set(targets_buffered)
        self.registry.gauge(
            RECORDS_BUFFERED_GAUGE,
            "reply records the last scan held in memory",
        ).set(len(result.records))

    def strategy_window_finished(
        self,
        *,
        strategy: str,
        epoch: int,
        targets: int,
        new_router_ips: int,
        cumulative_router_ips: int,
        dark_probes: int,
        suppressed_errors: int,
    ) -> None:
        """Record one epoch of a discovery-strategy race.

        Emits a main-channel ``strategy_window`` event and bumps the
        per-strategy counters.  Everything here is a deterministic fact
        of the race (yield, budget spend, telescope exposure), so the
        main channel's byte-identity contract across shard counts and
        resume paths extends to strategy telemetry unchanged.
        """
        self.emit(
            make_event(
                "strategy_window",
                scan=strategy,
                epoch=epoch,
                vtime=0.0,
                targets=targets,
                new_router_ips=new_router_ips,
                cumulative_router_ips=cumulative_router_ips,
                dark_probes=dark_probes,
                suppressed_errors=suppressed_errors,
            )
        )
        amounts = {
            "windows_total": 1,
            "probes_total": targets,
            "discoveries_total": new_router_ips,
            "dark_probes_total": dark_probes,
            "suppressed_errors_total": suppressed_errors,
        }
        for suffix, help_text in STRATEGY_COUNTER_SUFFIXES.items():
            self.registry.counter(
                strategy_metric_name(strategy, suffix), help_text
            ).inc(amounts[suffix])

    # ------------------------------------------------------------------ #
    # operational (crash-recovery) channel
    # ------------------------------------------------------------------ #

    def emit_ops(self, event: dict) -> dict:
        """Append one event to the ops stream (its own ``seq`` space)."""
        event["seq"] = self._ops_seq
        self._ops_seq += 1
        self.ops_events.append(event)
        return event

    def scan_checkpointed(
        self,
        *,
        scan: str,
        epoch: int,
        vtime: float,
        shard: int,
        completed: int,
        remaining: int,
    ) -> None:
        self.emit_ops(
            make_event(
                "scan_checkpointed",
                scan=scan,
                epoch=epoch,
                vtime=vtime,
                shard=shard,
                completed=completed,
                remaining=remaining,
            )
        )
        self.ops_registry.counter(
            CHECKPOINTS_TOTAL, "scan checkpoints written"
        ).inc()

    def shard_retried(
        self,
        *,
        scan: str,
        epoch: int,
        shard: int,
        attempt: int,
        error: str,
    ) -> None:
        self.emit_ops(
            make_event(
                "shard_retried",
                scan=scan,
                epoch=epoch,
                vtime=0.0,
                shard=shard,
                attempt=attempt,
                error=error,
            )
        )
        self.ops_registry.counter(
            SHARD_RETRIES_TOTAL, "shard attempts retried after failure"
        ).inc()

    def scan_resumed(
        self,
        *,
        scan: str,
        epoch: int,
        completed: int,
        remaining: int,
    ) -> None:
        self.emit_ops(
            make_event(
                "scan_resumed",
                scan=scan,
                epoch=epoch,
                vtime=0.0,
                completed=completed,
                remaining=remaining,
            )
        )
        self.ops_registry.counter(
            RESUMES_TOTAL, "scans resumed from a checkpoint"
        ).inc()
        self.ops_registry.counter(
            SHARDS_SALVAGED_TOTAL,
            "completed shards salvaged from checkpoints instead of re-run",
        ).inc(completed)

    def backend_selected(
        self, *, scan: str, epoch: int, backend: str
    ) -> None:
        """Record which probe backend executed a scan.

        Ops-channel, and skipped entirely for the default ``sim``
        backend: a simulated scan's ops export stays byte-identical to
        what it was before the backend seam existed, and — just as
        important — ``sim`` and ``wire-sim`` runs of the same scan keep
        byte-identical *main* channels (backend identity never leaks
        there).
        """
        if backend == "sim":
            return
        self.emit_ops(
            make_event(
                "backend_selected",
                scan=scan,
                epoch=epoch,
                vtime=0.0,
                backend=backend,
            )
        )
        self.ops_registry.counter(
            BACKEND_SCANS_TOTAL, "scans executed by a non-default backend"
        ).inc()

    def unmatched_replies_recorded(
        self, *, scan: str, epoch: int, backend: str, count: int
    ) -> None:
        """Count inbound replies the backend could not match to a probe.

        These were silently dropped before (an invisible loss mode); now
        every wire backend surfaces them.  Zero counts are skipped — the
        ``ring_stats_updated`` idiom — so scans with nothing unmatched
        (every ``sim`` scan, and every healthy ``wire-sim`` scan) leave
        the ops export untouched.
        """
        if count <= 0:
            return
        self.emit_ops(
            make_event(
                "unmatched_replies",
                scan=scan,
                epoch=epoch,
                vtime=0.0,
                backend=backend,
                count=count,
            )
        )
        self.ops_registry.counter(
            UNMATCHED_REPLIES_TOTAL,
            "inbound replies that failed probe matching (auth or id)",
        ).inc(count)

    def backend_resilience_recorded(
        self, *, scan: str, epoch: int, shard: int, stats
    ) -> None:
        """Fold one scan's resilience deltas into the ops channel.

        ``stats`` is a (duck-typed) :class:`~repro.scanner.backends.\
        resilient.ResilienceStats` delta: one ``backend_resilience``
        summary event plus one ``breaker_transition`` event per breaker
        state change and one ``batch_quarantined`` event per
        :class:`BackendFault`, with matching ``sra_scan_*`` counters.
        ``None``/empty deltas are skipped — the ``ring_stats_updated``
        idiom — so scans without a policy (and policy-wrapped scans that
        never saw a fault) leave the ops export byte-identical.
        """
        if stats is None or stats.empty():
            return
        self.emit_ops(
            make_event(
                "backend_resilience",
                scan=scan,
                epoch=epoch,
                vtime=0.0,
                shard=shard,
                retries=stats.retries,
                timeouts=stats.timeouts,
                quarantined_batches=stats.quarantined_batches,
                faulted_probes=stats.faulted_probes,
                breaker_fastfails=stats.breaker_fastfails,
            )
        )
        for from_state, to_state in stats.transitions:
            self.emit_ops(
                make_event(
                    "breaker_transition",
                    scan=scan,
                    epoch=epoch,
                    vtime=0.0,
                    shard=shard,
                    from_state=from_state,
                    to_state=to_state,
                )
            )
        for fault in stats.faults:
            self.emit_ops(
                make_event(
                    "batch_quarantined",
                    scan=scan,
                    epoch=epoch,
                    vtime=0.0,
                    shard=shard,
                    batch=fault.batch,
                    probes=fault.probes,
                    attempts=fault.attempts,
                    reason=fault.reason,
                    error=fault.error,
                )
            )
        ops = self.ops_registry
        if stats.retries:
            ops.counter(
                BACKEND_RETRIES_TOTAL, "probe batches retried by the backend"
            ).inc(stats.retries)
        if stats.timeouts:
            ops.counter(
                BACKEND_TIMEOUTS_TOTAL,
                "probe batches abandoned at the watchdog deadline",
            ).inc(stats.timeouts)
        if stats.quarantined_batches:
            ops.counter(
                QUARANTINED_BATCHES_TOTAL,
                "probe batches quarantined after exhausting retries",
            ).inc(stats.quarantined_batches)
        if stats.faulted_probes:
            ops.counter(
                FAULTED_PROBES_TOTAL,
                "probes quarantined as BackendFault outcomes",
            ).inc(stats.faulted_probes)
        if stats.transitions:
            ops.counter(
                BREAKER_TRANSITIONS_TOTAL,
                "circuit breaker state transitions",
            ).inc(len(stats.transitions))

    def backend_warning_recorded(
        self, *, scan: str, epoch: int, backend: str, message: str
    ) -> None:
        """Surface a backend's operational warning (e.g. a receiver
        thread that refused to join) on the ops channel instead of
        letting it vanish."""
        self.emit_ops(
            make_event(
                "backend_warning",
                scan=scan,
                epoch=epoch,
                vtime=0.0,
                backend=backend,
                message=message,
            )
        )
        self.ops_registry.counter(
            BACKEND_WARNINGS_TOTAL, "operational warnings raised by backends"
        ).inc()

    def ring_stats_updated(
        self, *, scan: str, epoch: int, stats: dict[str, int]
    ) -> None:
        """Fold one scan's shared-memory transport deltas into the ops
        channel (one ``ring_stats`` event plus ``sra_scan_ring_*``
        counters).  The sharded runner calls this with per-scan deltas of
        its cumulative :class:`~repro.scanner.shmring.RingStats`; all-zero
        deltas (thread/serial executors, pickle fallback) are skipped so
        ops exports stay unchanged for scans that never touched a ring.
        """
        if not any(stats.get(field, 0) for field in RING_COUNTERS):
            return
        self.emit_ops(
            make_event(
                "ring_stats",
                scan=scan,
                epoch=epoch,
                vtime=0.0,
                **{field: stats.get(field, 0) for field in RING_COUNTERS},
            )
        )
        for field, (name, help_text) in RING_COUNTERS.items():
            self.ops_registry.counter(name, help_text).inc(
                stats.get(field, 0)
            )

    # ------------------------------------------------------------------ #
    # registry plumbing
    # ------------------------------------------------------------------ #

    def merge_registry(self, registry: MetricsRegistry) -> None:
        self.registry.merge(registry)

    # ------------------------------------------------------------------ #
    # sinks
    # ------------------------------------------------------------------ #

    def to_jsonl(self) -> str:
        return events_to_jsonl(self.events)

    def write_jsonl(self, path: str | Path) -> None:
        write_events(self.events, path)

    def to_ops_jsonl(self) -> str:
        return events_to_jsonl(self.ops_events)

    def write_ops_jsonl(self, path: str | Path) -> None:
        write_events(self.ops_events, path)

    def to_prometheus(self) -> str:
        return self.registry.to_prometheus()

    def write_prometheus(self, path: str | Path) -> None:
        atomic_write_text(Path(path), self.to_prometheus())

    def to_ops_prometheus(self) -> str:
        return self.ops_registry.to_prometheus()
