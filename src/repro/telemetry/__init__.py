"""Scan observability: structured telemetry, JSONL events, metrics export.

The subsystem has three parts — see each module's docstring:

* :mod:`repro.telemetry.metrics` — deterministic counters, gauges, and
  fixed-edge histograms in a :class:`MetricsRegistry` with a Prometheus
  text exporter and a shard-merge rule,
* :mod:`repro.telemetry.events` — the schema-versioned JSONL event
  stream (``scan_started`` ... ``scan_finished``),
* :mod:`repro.telemetry.scan` — the :class:`ScanTelemetry` facade plus
  the hot-path capture pieces the scanner and engine use.

Typical use::

    from repro.telemetry import ScanTelemetry

    telemetry = ScanTelemetry()
    runner = ShardedScanRunner(world, shards=4, telemetry=telemetry)
    runner.scan(targets, ScanConfig(progress_every=10_000))
    telemetry.write_jsonl("scan.events.jsonl")
    telemetry.write_prometheus("scan.prom")
"""

from .events import EVENT_TYPES, SCHEMA_VERSION, events_to_jsonl, make_event
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .scan import HotPathCollector, ScanTelemetry, ShardTelemetry

__all__ = [
    "Counter",
    "EVENT_TYPES",
    "Gauge",
    "Histogram",
    "HotPathCollector",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "ScanTelemetry",
    "ShardTelemetry",
    "events_to_jsonl",
    "make_event",
]
