"""The scan event stream: schema-versioned dicts, serialised as JSONL.

Every event is a flat(ish) JSON object with a fixed field contract —
**schema version 1**:

========================  =====================================================
field                     meaning
========================  =====================================================
``schema``                event-schema version (this module: ``1``)
``seq``                   position in the stream (assigned at emission)
``event``                 event type, one of :data:`EVENT_TYPES`
``scan``                  scan name (survey input set, campaign scan, ...)
``epoch``                 scan epoch
``vtime``                 virtual-clock seconds into the scan
========================  =====================================================

Event types and their extra fields:

* ``scan_started``      — ``targets``, ``shards``, ``pps``
* ``progress``          — ``shard``, ``sent``, ``records``, ``lost``,
  ``loops`` (cumulative for that shard, snapshotted every N probes)
* ``loop_detected``     — ``router`` (first probe to hit that loop router)
* ``rate_limit_engaged``— ``router`` (first error that router suppressed)
* ``shard_finished``    — ``shard``, ``sent``, ``records``, ``lost``,
  ``loops``, ``duration``
* ``scan_finished``     — ``sent``, ``records``, ``lost``, ``loops``,
  ``duration``, ``stats`` (the final ``EngineStats`` counters)
* ``strategy_window``   — ``targets``, ``new_router_ips``,
  ``cumulative_router_ips``, ``dark_probes``, ``suppressed_errors``
  (one per epoch of a discovery-strategy race; ``scan`` is the strategy
  name)

Operational (crash-recovery) event types, emitted on the facade's
*separate* ops stream so the main stream stays byte-identical between a
resumed scan and an uninterrupted one:

* ``scan_checkpointed`` — ``shard`` (just completed), ``completed``,
  ``remaining``
* ``shard_retried``     — ``shard``, ``attempt``, ``error``
* ``scan_resumed``      — ``completed``, ``remaining``
* ``backend_selected``  — ``backend`` (omitted for the default ``sim``)
* ``unmatched_replies`` — ``backend``, ``count`` (replies that failed
  probe matching; omitted when zero)

Serialisation is deterministic by construction: keys sort, separators are
fixed, and every value is derived from the virtual clock and seeded
simulation state — two runs of the same configuration produce
byte-identical JSONL.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..atomicio import atomic_write_text

SCHEMA_VERSION = 1

EVENT_TYPES = (
    "scan_started",
    "progress",
    "loop_detected",
    "rate_limit_engaged",
    "shard_finished",
    "scan_finished",
    "strategy_window",
    # operational (crash-recovery / transport) stream
    "scan_checkpointed",
    "shard_retried",
    "scan_resumed",
    "ring_stats",
    "backend_selected",
    "unmatched_replies",
    # resilient transport (retry / breaker / quarantine) stream
    "backend_resilience",
    "breaker_transition",
    "batch_quarantined",
    "backend_warning",
)

__all__ = [
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "body_sort_key",
    "event_line",
    "events_to_jsonl",
    "make_event",
    "write_events",
]


def make_event(
    event: str, *, scan: str, epoch: int, vtime: float, **fields
) -> dict:
    """Build one schema-v1 event dict (``seq`` is assigned at emission)."""
    if event not in EVENT_TYPES:
        raise ValueError(f"unknown event type {event!r}")
    built: dict = {
        "schema": SCHEMA_VERSION,
        "event": event,
        "scan": scan,
        "epoch": epoch,
        "vtime": vtime,
    }
    built.update(fields)
    return built


def body_sort_key(event: dict) -> tuple:
    """Deterministic order for within-scan body events.

    Sorts by virtual time, then event type, then the event's integer
    discriminator (shard for progress, router for loop/rate-limit
    events) — a total order because (vtime, type, discriminator) is
    unique per event.
    """
    return (
        event["vtime"],
        event["event"],
        event.get("shard", event.get("router", 0)),
    )


def event_line(event: dict) -> str:
    """One event as its canonical JSON line (sorted keys, no spaces)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def events_to_jsonl(events: Iterable[dict]) -> str:
    """The whole stream as JSONL text (trailing newline, may be empty)."""
    lines = [event_line(event) for event in events]
    return "\n".join(lines) + "\n" if lines else ""


def write_events(events: Iterable[dict], path: str | Path) -> None:
    atomic_write_text(Path(path), events_to_jsonl(events))
