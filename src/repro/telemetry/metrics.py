"""Deterministic scan metrics: counters, gauges, histograms, a registry.

The paper's headline claims are *rate and counter* claims (Table 2
echo-reply rates, the Echo-vs-error rate-limiting asymmetry, Fig. 5
re-scan stability), so the simulator's observability layer is built on
plain, reproducible aggregates rather than wall-clock samplers:

* every metric lives on the scan's **virtual clock** — two runs of the
  same seed produce byte-identical exports,
* histograms use **fixed bucket edges** chosen at creation, so per-shard
  histograms merge by summing counts without re-bucketing,
* :meth:`MetricsRegistry.merge` is the deterministic shard-combination
  rule used by :mod:`repro.scanner.sharded` alongside ``EngineStats``:
  counters and histogram buckets add, gauges keep the maximum.

The Prometheus text exporter (:meth:`MetricsRegistry.to_prometheus`)
emits metric families sorted by name with a stable number format, making
the output suitable for golden-file regression tests.
"""

from __future__ import annotations

from bisect import bisect_left
from fractions import Fraction
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


def format_number(value: float) -> str:
    """Stable Prometheus-text rendering: integral floats print as ints."""
    if isinstance(value, bool):  # bools are ints; refuse the footgun
        raise TypeError("metric values must be numbers, not bool")
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN never belongs in a deterministic export
        raise ValueError("metric value is NaN")
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing count (probes sent, replies matched)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last scan duration, configured pps)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A fixed-edge histogram with cumulative Prometheus semantics.

    ``edges`` are the inclusive upper bounds of the finite buckets, in
    strictly increasing order; one implicit ``+Inf`` bucket catches the
    rest.  Edges are fixed at creation so shard histograms are mergeable
    and exports are deterministic.
    """

    __slots__ = ("name", "help", "edges", "counts", "total", "_sum")

    def __init__(self, name: str, edges: Iterable[float], help: str = "") -> None:
        self.name = name
        self.help = help
        self.edges = tuple(float(edge) for edge in edges)
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        # Exact rational accumulator: float addition is order-dependent,
        # and shard merges add observations in a different order than a
        # serial scan.  Fractions make the sum a function of the observed
        # multiset only, so exports stay byte-identical across shard
        # counts.  Histograms observe per *record* (rare next to probes),
        # so the exact arithmetic stays off the hot path.
        self._sum = Fraction(0)

    @property
    def sum(self) -> float:
        """The observation sum, correctly rounded to a float."""
        return float(self._sum)

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (count may be
        negative: the sharded merge retracts observations belonging to
        replay-suppressed error records)."""
        self.counts[bisect_left(self.edges, value)] += count
        self.total += count
        self._sum += Fraction(value) * count

    def cumulative(self) -> list[int]:
        """Cumulative ``le`` counts, one per finite edge plus ``+Inf``."""
        running = 0
        out = []
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.total})"


class MetricsRegistry:
    """A named collection of metrics with deterministic merge + export.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object, and asking with a
    conflicting kind (or histogram edges) is an error — the registry is
    the schema.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, edges: Iterable[float], help: str = ""
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            if existing.edges != tuple(float(e) for e in edges):
                raise ValueError(f"histogram {name!r} edges differ")
            return existing
        metric = Histogram(name, edges, help)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, kind, name: str, help: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        metric = kind(name, help)
        self._metrics[name] = metric
        return metric

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, object]:
        """Plain-data snapshot (stable key order) for tests and JSON."""
        out: dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
            else:
                out[name] = {
                    "edges": list(metric.edges),
                    "counts": list(metric.counts),
                    "total": metric.total,
                    "sum": metric.sum,
                }
        return out

    # ------------------------------------------------------------------ #
    # merge (the sharded-scan combination rule)
    # ------------------------------------------------------------------ #

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place and return self.

        Counters and histogram buckets add; gauges keep the maximum (a
        merged scan's "last duration" is the slowest shard's).  Metrics
        present only in ``other`` are adopted with their values.
        """
        for name, metric in other._metrics.items():
            if isinstance(metric, Counter):
                self.counter(name, metric.help).inc(metric.value)
            elif isinstance(metric, Gauge):
                mine = self.gauge(name, metric.help)
                mine.set(max(mine.value, metric.value))
            else:
                mine = self.histogram(name, metric.edges, metric.help)
                for index, count in enumerate(metric.counts):
                    mine.counts[index] += count
                mine.total += metric.total
                mine._sum += metric._sum
        return self

    # ------------------------------------------------------------------ #
    # Prometheus text exposition
    # ------------------------------------------------------------------ #

    def to_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format.

        Families are sorted by metric name and values use a fixed number
        format, so equal registries render byte-identically.
        """
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {format_number(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {format_number(metric.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = metric.cumulative()
                for edge, count in zip(metric.edges, cumulative):
                    lines.append(
                        f'{name}_bucket{{le="{format_number(edge)}"}} '
                        f"{format_number(count)}"
                    )
                lines.append(
                    f'{name}_bucket{{le="+Inf"}} '
                    f"{format_number(cumulative[-1])}"
                )
                lines.append(f"{name}_sum {format_number(metric.sum)}")
                lines.append(f"{name}_count {format_number(metric.total)}")
        return "\n".join(lines) + "\n" if lines else ""
