"""Inferring a router's ICMPv6 error rate limit from probe timing.

The paper flags "to what extent rate limiting techniques beyond those
proposed in RFC 4443 are deployed should be part of future work" (§7) and
cites the NDSS'23 side-channel of Pan et al. ("Your Router Is My Prober"):
a router's error token bucket is a measurable, shared resource.

This module implements the measurement: send a train of probes to
*unassigned* addresses behind one router at a chosen rate and watch which
ones come back.  Below the bucket rate everything passes; above it, the
pass fraction approaches ``bucket_rate / probe_rate``.  Sweeping rates and
fitting the knee estimates the bucket's refill rate; the initial
transient estimates its depth (burst).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.engine import SimulationEngine
from ..topology.entities import Subnet, World


@dataclass(frozen=True, slots=True)
class RatePoint:
    """One probe-train observation."""

    probe_rate: float
    sent: int
    received: int

    @property
    def pass_fraction(self) -> float:
        return self.received / self.sent if self.sent else 0.0

    @property
    def received_rate(self) -> float:
        """Errors per second actually emitted during the train."""
        return self.pass_fraction * self.probe_rate


@dataclass(frozen=True, slots=True)
class RateLimitEstimate:
    """The inferred token-bucket parameters."""

    rate: float  # tokens per second (refill)
    burst: float  # bucket depth estimate
    points: tuple[RatePoint, ...]

    def saturated_points(self) -> list[RatePoint]:
        return [p for p in self.points if p.pass_fraction < 0.95]


def probe_train(
    engine: SimulationEngine,
    subnet: Subnet,
    *,
    probe_rate: float,
    duration: float,
    start_time: float,
    probe_id_base: int,
) -> RatePoint:
    """Send probes to one unassigned in-subnet address at a fixed rate."""
    target = subnet.prefix.network + 0xDEAD0000
    while target in subnet.hosts or target == subnet.router_interface:
        target += 1
    count = max(1, int(probe_rate * duration))
    received = 0
    for index in range(count):
        time = start_time + index / probe_rate
        outcome = engine.probe(
            target, time, probe_id=probe_id_base + index
        )
        received += sum(1 for reply in outcome.replies if reply.is_error)
    return RatePoint(probe_rate=probe_rate, sent=count, received=received)


def infer_error_rate_limit(
    world: World,
    subnet: Subnet,
    *,
    probe_rates: tuple[float, ...] = (2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0),
    duration: float = 20.0,
    epoch: int = 7000,
) -> RateLimitEstimate:
    """Estimate the RFC 4443 token-bucket parameters of a subnet's router.

    Each rate gets its own fresh-bucket engine epoch (real measurements
    space trains far apart for the same reason).  The refill-rate estimate
    is the median *received rate* over saturated trains; the burst
    estimate comes from the excess passes of the most aggressive train
    over its steady-state expectation.
    """
    points: list[RatePoint] = []
    for index, probe_rate in enumerate(probe_rates):
        engine = SimulationEngine(world, epoch=epoch + index)
        points.append(
            probe_train(
                engine,
                subnet,
                probe_rate=probe_rate,
                duration=duration,
                start_time=0.0,
                probe_id_base=index << 20,
            )
        )
    saturated = [p for p in points if p.pass_fraction < 0.95]
    if saturated:
        received_rates = sorted(p.received_rate for p in saturated)
        rate = received_rates[len(received_rates) // 2]
        top = max(saturated, key=lambda p: p.probe_rate)
        burst = max(0.0, top.received - rate * duration)
    else:
        # Never saturated: the limit is at least the highest rate tried.
        rate = max(p.probe_rate for p in points)
        burst = 0.0
    return RateLimitEstimate(rate=rate, burst=burst, points=tuple(points))
