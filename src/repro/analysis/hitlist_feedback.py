"""Feeding SRA discoveries back into the community hitlist.

The paper commits to "provide our data as new source to further improve
the coverage of the hitlist service" (§5.2).  This module implements that
contribution pipeline: take scan results, keep router addresses that are
plausible hitlist entries (responsive, not aliased, not transient
per-region error sub-interfaces), and merge them into a hitlist with full
accounting of what was added, already known, or rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..addr.ipv6 import network_of
from ..hitlist.aliases import AliasedPrefixList
from ..hitlist.hitlist import Hitlist
from ..scanner.records import ScanRecord, ScanResult


@dataclass(slots=True)
class ContributionReport:
    """Outcome of one contribution run."""

    added: int = 0
    already_known: int = 0
    rejected_aliased: int = 0
    rejected_error_only: int = 0
    new_addresses: list[int] = field(default_factory=list)

    @property
    def considered(self) -> int:
        return (
            self.added
            + self.already_known
            + self.rejected_aliased
            + self.rejected_error_only
        )


def contribute_to_hitlist(
    hitlist: Hitlist,
    scans: Iterable[ScanResult],
    *,
    alias_list: AliasedPrefixList | None = None,
    include_error_sources: bool = False,
) -> ContributionReport:
    """Merge scan-discovered router addresses into ``hitlist``.

    By default only Echo-reply sources qualify — addresses that provably
    answer — matching the hitlist service's responsiveness requirement.
    Error-only sources can be included for an "extended" list (the TUM
    hitlist's traceroute-augmented variant does this).
    """
    report = ContributionReport()
    echo_sources: set[int] = set()
    error_sources: set[int] = set()
    for scan in scans:
        echo_sources |= scan.echo_sources()
        error_sources |= scan.error_sources()
    error_only = error_sources - echo_sources

    # Every source is considered, error-only ones included: an aliased
    # error-only address counts as rejected_aliased, not rejected_error_only
    # — the alias verdict holds whatever the reply type was.
    for source in sorted(echo_sources | error_only):
        if alias_list is not None and alias_list.contains_address(source):
            report.rejected_aliased += 1
            continue
        if not include_error_sources and source in error_only:
            report.rejected_error_only += 1
            continue
        if hitlist.add(source):
            report.added += 1
            report.new_addresses.append(source)
        else:
            report.already_known += 1
    return report


def contributing_sources(
    records: Iterable[ScanRecord],
    *,
    alias_list: AliasedPrefixList | None = None,
    include_error_sources: bool = False,
) -> list[int]:
    """Reply sources that qualify as hitlist contributions, sorted.

    The record-level twin of :func:`contribute_to_hitlist`'s acceptance
    rule (Echo sources unless ``include_error_sources``, never aliased),
    for consumers that react to raw scan records rather than merged
    :class:`ScanResult`\\ s — the ``hitlist-feedback`` discovery strategy
    feeds each epoch's records through this between scans.  The result
    depends only on the record *set* (sorted, deduplicated), so any
    record ordering — including a crash-resumed journal replay — yields
    the same answer.
    """
    echo_sources: set[int] = set()
    error_sources: set[int] = set()
    for record in records:
        if record.is_error:
            error_sources.add(record.source)
        else:
            echo_sources.add(record.source)
    error_only = error_sources - echo_sources
    accepted: list[int] = []
    for source in sorted(echo_sources | error_only):
        if alias_list is not None and alias_list.contains_address(source):
            continue
        if not include_error_sources and source in error_only:
            continue
        accepted.append(source)
    return accepted


def contributing_prefixes(
    records: Iterable[ScanRecord],
    *,
    prefix_length: int = 48,
    alias_list: AliasedPrefixList | None = None,
    include_error_sources: bool = False,
) -> list[int]:
    """Distinct ``/prefix_length`` networks of the contributing sources.

    These are the regions a feedback-driven scan expands around next
    epoch: a router that answered from a prefix is evidence the prefix
    is populated (Gasser et al.'s hitlist-seeded scanning rationale).
    """
    return sorted(
        {
            network_of(source, prefix_length)
            for source in contributing_sources(
                records,
                alias_list=alias_list,
                include_error_sources=include_error_sources,
            )
        }
    )
