"""Geographic and network-type distributions (Fig. 3, Fig. 10)."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable

from ..metadata.asn import ASNMapper
from ..metadata.astype import ASTypeDatabase
from ..metadata.geoip import GeoIPDatabase, continent_of


def country_distribution(
    addresses: Iterable[int], geo: GeoIPDatabase
) -> Counter[str]:
    """Router IPs per country — the Fig. 3 world map data."""
    counts: Counter[str] = Counter()
    for address in addresses:
        counts[geo.country_of(address) or "??"] += 1
    return counts


def country_shares(
    addresses: Iterable[int], geo: GeoIPDatabase
) -> list[tuple[str, float]]:
    """Country shares, descending (paper: IND 27 %, CHN 20 %)."""
    counts = country_distribution(addresses, geo)
    total = sum(counts.values())
    if total == 0:
        return []
    return [
        (country, count / total) for country, count in counts.most_common()
    ]


def continent_distribution(
    addresses: Iterable[int], geo: GeoIPDatabase
) -> Counter[str]:
    counts: Counter[str] = Counter()
    for address in addresses:
        counts[continent_of(geo.country_of(address))] += 1
    return counts


def type_distribution(
    addresses: Iterable[int],
    mapper: ASNMapper,
    types: ASTypeDatabase,
) -> Counter[str]:
    """Addresses per network type (Fig. 10b)."""
    counts: Counter[str] = Counter()
    for address in addresses:
        asn = mapper.asn_of(address)
        if asn is None:
            counts["unknown"] += 1
            continue
        as_type = types.type_of(asn)
        counts[as_type.value if as_type else "unknown"] += 1
    return counts


def continent_type_crosstab(
    addresses: Iterable[int],
    geo: GeoIPDatabase,
    mapper: ASNMapper,
    types: ASTypeDatabase,
) -> dict[str, Counter[str]]:
    """Per-continent network-type counts (Fig. 10a)."""
    table: dict[str, Counter[str]] = defaultdict(Counter)
    for address in addresses:
        continent = continent_of(geo.country_of(address))
        asn = mapper.asn_of(address)
        as_type = types.type_of(asn) if asn is not None else None
        table[continent][as_type.value if as_type else "unknown"] += 1
    return dict(table)


def isp_share(
    addresses: Iterable[int], mapper: ASNMapper, types: ASTypeDatabase
) -> float:
    """Share of addresses in ISP networks (paper: >80 % for SRA)."""
    counts = type_distribution(addresses, mapper, types)
    total = sum(counts.values())
    return counts.get("isp", 0) / total if total else 0.0
