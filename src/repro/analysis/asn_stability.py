"""Prevalence and stability of ASNs and prefixes across scans (§4).

The paper reports that over six consecutive scans ≈87 % of the announced
prefixes containing discovered router IPs remain unchanged, yielding a
stable AS set of ≈96 %.  This module computes exactly that: map each
scan's router IPs to BGP prefixes and origin ASNs, then measure how much
of each set persists from scan to scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..bgp.table import BGPTable
from ..scanner.records import ScanResult


@dataclass(slots=True)
class SetStability:
    """Per-epoch persistence of a set-valued observation."""

    sets: list[set] = field(default_factory=list)

    def add(self, observed: set) -> None:
        self.sets.append(observed)

    def persistence(self) -> list[float]:
        """Fraction of each scan's set already present in the previous."""
        shares = []
        for previous, current in zip(self.sets, self.sets[1:]):
            if current:
                shares.append(len(previous & current) / len(current))
        return shares

    def stable_core_share(self) -> float:
        """|intersection of all scans| / |union of all scans|."""
        if not self.sets:
            return 0.0
        union = set().union(*self.sets)
        if not union:
            return 0.0
        core = set(self.sets[0])
        for observed in self.sets[1:]:
            core &= observed
        return len(core) / len(union)

    def mean_persistence(self) -> float:
        shares = self.persistence()
        return sum(shares) / len(shares) if shares else 0.0


@dataclass(slots=True)
class ASNStabilityReport:
    """Prefix- and AS-level stability over a scan series."""

    prefixes: SetStability = field(default_factory=SetStability)
    asns: SetStability = field(default_factory=SetStability)

    def summary(self) -> dict[str, float]:
        return {
            "prefix_persistence": self.prefixes.mean_persistence(),
            "asn_persistence": self.asns.mean_persistence(),
            "prefix_stable_core": self.prefixes.stable_core_share(),
            "asn_stable_core": self.asns.stable_core_share(),
        }


def asn_stability(
    scans: Sequence[ScanResult], bgp: BGPTable
) -> ASNStabilityReport:
    """Map each scan's router IPs to prefixes/ASNs and measure stability.

    The paper's numbers (≈87 % prefixes, ≈96 % ASes stable) come from the
    six hitlist-/64 re-scans; pass that series here.
    """
    report = ASNStabilityReport()
    for scan in scans:
        prefixes = set()
        asns = set()
        for source in scan.sources():
            prefix = bgp.matching_prefix(source)
            if prefix is not None:
                prefixes.add(prefix)
            asn = bgp.origin_of(source)
            if asn is not None:
                asns.add(asn)
        report.prefixes.add(prefixes)
        report.asns.add(asns)
    return report
