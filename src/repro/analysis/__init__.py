"""Analysis: cross-dataset comparison, loops, geo/type distributions, reports."""

from .asn_stability import ASNStabilityReport, SetStability, asn_stability
from .comparison import SourceComparison
from .geodist import (
    continent_distribution,
    continent_type_crosstab,
    country_distribution,
    country_shares,
    isp_share,
    type_distribution,
)
from .hitlist_feedback import ContributionReport, contribute_to_hitlist
from .loops import LoopAnalysis
from .ratelimit_infer import (
    RateLimitEstimate,
    RatePoint,
    infer_error_rate_limit,
    probe_train,
)
from .report import (
    format_count,
    format_percent,
    render_ccdf,
    render_shares,
    render_table,
)

__all__ = [
    "ASNStabilityReport",
    "ContributionReport",
    "LoopAnalysis",
    "RateLimitEstimate",
    "RatePoint",
    "SetStability",
    "SourceComparison",
    "asn_stability",
    "continent_distribution",
    "continent_type_crosstab",
    "country_distribution",
    "contribute_to_hitlist",
    "country_shares",
    "format_count",
    "format_percent",
    "infer_error_rate_limit",
    "isp_share",
    "probe_train",
    "render_ccdf",
    "render_shares",
    "render_table",
    "type_distribution",
]
