"""Routing-loop and amplification analysis (§6, Fig. 8, Table 4).

Works purely on scan output: every Time Exceeded record whose target lies
beyond the transit path is evidence of a loop; the record's ``count`` is
the amplification the probe suffered.  Grouping by source router and by
/48 reproduces the paper's loop statistics.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ..metadata.geoip import GeoIPDatabase
from ..scanner.records import ScanResult

SLASH48_SHIFT = 128 - 48


@dataclass(slots=True)
class LoopAnalysis:
    """Loop/amplification aggregates extracted from one or more scans."""

    # router source address -> set of looping /48 networks (ints)
    loops_per_router: dict[int, set[int]] = field(default_factory=dict)
    # router source address -> maximum amplification factor observed
    amplification_per_router: dict[int, int] = field(default_factory=dict)
    # /48 network -> max amplification observed for probes into it
    amplification_per_slash48: dict[int, int] = field(default_factory=dict)

    # ---------------- construction ---------------- #

    @classmethod
    def from_scans(cls, *scans: ScanResult) -> "LoopAnalysis":
        analysis = cls()
        for scan in scans:
            analysis.ingest(scan)
        return analysis

    def ingest(self, scan: ScanResult) -> None:
        for record in scan.records:
            if not record.is_time_exceeded:
                continue
            slash48 = (record.target >> SLASH48_SHIFT) << SLASH48_SHIFT
            self.loops_per_router.setdefault(record.source, set()).add(slash48)
            if record.count > self.amplification_per_router.get(record.source, 0):
                self.amplification_per_router[record.source] = record.count
            if record.count > self.amplification_per_slash48.get(slash48, 0):
                self.amplification_per_slash48[slash48] = record.count

    # ---------------- headline numbers ---------------- #

    @property
    def looping_slash48s(self) -> set[int]:
        result: set[int] = set()
        for subnets in self.loops_per_router.values():
            result |= subnets
        return result

    @property
    def looping_routers(self) -> set[int]:
        return set(self.loops_per_router)

    @property
    def amplifying_routers(self) -> set[int]:
        """Routers that sent more than one reply to a single request."""
        return {
            source
            for source, factor in self.amplification_per_router.items()
            if factor > 1
        }

    def single_subnet_router_share(self) -> float:
        """Fraction of looping routers responsible for exactly one /48
        (paper: ~60 %)."""
        if not self.loops_per_router:
            return 0.0
        singles = sum(
            1 for subnets in self.loops_per_router.values() if len(subnets) == 1
        )
        return singles / len(self.loops_per_router)

    # ---------------- Fig. 8 series ---------------- #

    def amplification_ccdf(self) -> list[tuple[int, float]]:
        """(factor, fraction of amplifying routers with factor >= x)."""
        factors = sorted(
            factor
            for factor in self.amplification_per_router.values()
            if factor > 1
        )
        return _ccdf(factors)

    def loops_per_router_ccdf(self) -> list[tuple[int, float]]:
        """(loop count, fraction of looping routers with >= that many)."""
        counts = sorted(len(s) for s in self.loops_per_router.values())
        return _ccdf(counts)

    def amplification_share_below(self, threshold: int = 10) -> float:
        """Share of amplifying routers with factor <= threshold (98 %)."""
        amplifying = [
            factor
            for factor in self.amplification_per_router.values()
            if factor > 1
        ]
        if not amplifying:
            return 0.0
        return sum(1 for f in amplifying if f <= threshold) / len(amplifying)

    # ---------------- Table 4 ---------------- #

    def table4a(self, geo: GeoIPDatabase, n: int = 5) -> list[dict[str, object]]:
        """Top countries by looping /48 count."""
        loops_by_country: Counter[str] = Counter()
        routers_by_country: dict[str, set[int]] = defaultdict(set)
        for router, subnets in self.loops_per_router.items():
            country = geo.country_of(router) or "??"
            loops_by_country[country] += len(subnets)
            routers_by_country[country].add(router)
        total = sum(loops_by_country.values())
        rows = []
        for country, count in loops_by_country.most_common(n):
            rows.append(
                {
                    "country": country,
                    "looping_48s": count,
                    "share": count / total if total else 0.0,
                    "router_ips": len(routers_by_country[country]),
                }
            )
        return rows

    def table4b(self, geo: GeoIPDatabase, n: int = 5) -> list[dict[str, object]]:
        """Top countries by amplifying /48 count, with max factors."""
        ampl_by_country: Counter[str] = Counter()
        max_by_country: dict[str, int] = defaultdict(int)
        routers_by_country: dict[str, set[int]] = defaultdict(set)
        for slash48, factor in self.amplification_per_slash48.items():
            if factor <= 1:
                continue
            country = geo.country_of(slash48) or "??"
            ampl_by_country[country] += 1
        for router, factor in self.amplification_per_router.items():
            if factor <= 1:
                continue
            country = geo.country_of(router) or "??"
            routers_by_country[country].add(router)
            max_by_country[country] = max(max_by_country[country], factor)
        total = sum(ampl_by_country.values())
        rows = []
        for country, count in ampl_by_country.most_common(n):
            rows.append(
                {
                    "country": country,
                    "amplifying_48s": count,
                    "share": count / total if total else 0.0,
                    "router_ips": len(routers_by_country[country]),
                    "max_amplification": max_by_country[country],
                }
            )
        return rows


def _ccdf(sorted_values: list[int]) -> list[tuple[int, float]]:
    """CCDF points (value, P(X >= value)) over pre-sorted values."""
    if not sorted_values:
        return []
    total = len(sorted_values)
    points: list[tuple[int, float]] = []
    previous: int | None = None
    for index, value in enumerate(sorted_values):
        if value != previous:
            points.append((value, (total - index) / total))
            previous = value
    return points
