"""Cross-dataset comparison (§5, Table 3, Fig. 7/9).

Compares the SRA-discovered address set against the traceroute datasets,
the hitlist, and IXP flows — at the IP level (tiny overlaps) and at the AS
level (large overlaps), including the UpSet-style intersection counts
behind Figs. 7 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..datasets.common import AddressDataset
from ..metadata.asn import ASNMapper


@dataclass(slots=True)
class SourceComparison:
    """A bundle of datasets under one ASN mapper."""

    mapper: ASNMapper
    datasets: dict[str, AddressDataset] = field(default_factory=dict)

    def add(self, dataset: AddressDataset) -> None:
        self.datasets[dataset.name] = dataset

    # ---------------- IP level ---------------- #

    def ip_overlap(self, a: str, b: str) -> int:
        return len(self.datasets[a].overlap(self.datasets[b]))

    def ip_overlap_matrix(self) -> dict[tuple[str, str], int]:
        matrix: dict[tuple[str, str], int] = {}
        names = sorted(self.datasets)
        for a, b in combinations(names, 2):
            matrix[(a, b)] = self.ip_overlap(a, b)
        return matrix

    def exclusive_fraction(self, name: str) -> float:
        """Fraction of ``name``'s addresses found in no other dataset.

        The paper reports 97–99.9 % of SRA addresses are new (§1, §5).
        """
        dataset = self.datasets[name]
        if not dataset.addresses:
            return 0.0
        others = [d for n, d in self.datasets.items() if n != name]
        return len(dataset.exclusive(others)) / len(dataset.addresses)

    # ---------------- AS level ---------------- #

    def as_sets(self) -> dict[str, set[int]]:
        return {
            name: dataset.asns(self.mapper)
            for name, dataset in self.datasets.items()
        }

    def as_coverage(self, name: str) -> float:
        """Fraction of ``name``'s ASes that appear in at least one other
        dataset (paper: >99 % of SRA ASes are shared)."""
        sets = self.as_sets()
        own = sets[name]
        if not own:
            return 0.0
        others: set[int] = set()
        for other_name, as_set in sets.items():
            if other_name != name:
                others |= as_set
        return len(own & others) / len(own)

    def upset_counts(self) -> dict[frozenset[str], int]:
        """Exclusive intersection sizes for every dataset combination.

        This is the data behind an UpSet plot: each AS is counted once,
        under the exact combination of datasets containing it.
        """
        sets = self.as_sets()
        membership: dict[int, frozenset[str]] = {}
        for name, as_set in sets.items():
            for asn in as_set:
                current = membership.get(asn, frozenset())
                membership[asn] = current | {name}
        counts: dict[frozenset[str], int] = {}
        for combination in membership.values():
            counts[combination] = counts.get(combination, 0) + 1
        return counts

    def table3(self, n: int = 5) -> dict[str, list[tuple[int, float]]]:
        """Top-N ASes per data source with address shares (Table 3)."""
        return {
            name: dataset.top_asns(self.mapper, n)
            for name, dataset in self.datasets.items()
        }

    def highlighted_asns(self, reference: str = "sra", n: int = 5) -> set[int]:
        """ASNs in the reference top-N that also appear in some other
        source's top-N (the bold entries of Table 3)."""
        table = self.table3(n)
        if reference not in table:
            return set()
        reference_top = {asn for asn, _ in table[reference]}
        others: set[int] = set()
        for name, rows in table.items():
            if name != reference:
                others |= {asn for asn, _ in rows}
        return reference_top & others
