"""Plain-text rendering of tables and figure data.

The benchmark harness prints paper-style tables; these helpers keep the
formatting in one place (and testable).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_count(value: int | float) -> str:
    """Human-scale counts: 1234 -> '1.2k', 4200000 -> '4.2M'."""
    value = float(value)
    for threshold, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def format_percent(fraction: float, digits: int = 1) -> str:
    return f"{fraction * 100:.{digits}f}%"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Monospace table with column auto-sizing."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialised:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_ccdf(
    points: Sequence[tuple[int, float]],
    *,
    title: str,
    max_rows: int = 12,
) -> str:
    """A log-bucketed textual CCDF (stands in for the Fig. 8 plots)."""
    if not points:
        return f"{title}\n(no data)"
    # Pick representative thresholds: powers of ~4 within the value range.
    thresholds: list[int] = []
    value = 1
    limit = points[-1][0]
    while value <= limit and len(thresholds) < max_rows:
        thresholds.append(value)
        value = max(value + 1, value * 4)
    rows = []
    for threshold in thresholds:
        share = 0.0
        for point_value, point_share in points:
            if point_value >= threshold:
                share = point_share
                break
        rows.append((f">= {threshold}", format_percent(share, 2)))
    rows.append((f"max = {points[-1][0]}", format_percent(points[-1][1], 3)))
    return render_table(("value", "CCDF"), rows, title=title)


def render_shares(
    shares: Iterable[tuple[str, float]],
    *,
    title: str,
    limit: int | None = None,
) -> str:
    rows = []
    for index, (label, share) in enumerate(shares):
        if limit is not None and index >= limit:
            break
        rows.append((label, format_percent(share)))
    return render_table(("label", "share"), rows, title=title)
