"""Fig. 3: world-wide distribution of SRA-discovered router IPs.

Shape to reproduce: a strong skew towards Asia — India (paper: 27 %) and
China (20 %) dominate, with a long tail across >200 (scaled: dozens of)
countries.
"""

from __future__ import annotations

from ..analysis.geodist import country_shares
from ..analysis.report import render_shares
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    shares = country_shares(context.sra_router_ips, context.geo)
    return ExperimentReport(
        experiment_id="fig3",
        title="Country distribution of router IPs found with SRA probing",
        data={
            "shares": shares,
            "countries": len(shares),
        },
        text=render_shares(
            shares,
            title=(
                f"Fig. 3 — router IPs per country "
                f"({len(shares)} countries observed)"
            ),
            limit=15,
        ),
    )
