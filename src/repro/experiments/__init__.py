"""Experiments: one module per table/figure, a shared context, and a CLI."""

from .base import ExperimentReport
from .world import (
    ExperimentContext,
    ExperimentScale,
    custom_context,
    full_scale,
    get_context,
    quick_scale,
    scaled_with,
)

__all__ = [
    "ExperimentContext",
    "ExperimentReport",
    "ExperimentScale",
    "custom_context",
    "full_scale",
    "get_context",
    "quick_scale",
    "scaled_with",
]
