"""Fig. 5: SRA vs random probing of the hitlist /64 subnets.

Shape to reproduce: per scan, SRA probing discovers ~10 % more router IPs
than random probing; the Echo-reply population stays stable across scans
(rate limiting does not apply) while the random/error-based counts
fluctuate; a substantial set of router IPs is SRA-exclusive; and the
overlap of two consecutive scans stays below ~70 %.
"""

from __future__ import annotations

from statistics import mean

from ..analysis.report import format_count, format_percent, render_table
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    series = context.fig5_series
    rows = []
    for sra_scan, random_scan in zip(series.sra, series.random):
        rows.append(
            (
                sra_scan.epoch + 1,
                format_count(len(sra_scan.router_ips)),
                format_count(len(sra_scan.echo_router_ips)),
                format_count(len(random_scan.router_ips)),
            )
        )
    advantages = series.advantage_per_epoch()
    exclusive = series.sra_exclusive()
    overlaps = series.consecutive_overlap("sra")
    summary = render_table(
        ("scan", "SRA routers", "SRA echo routers", "random routers"),
        rows,
        title="Fig. 5 — SRA vs random probing per scan",
    )
    extras = render_table(
        ("metric", "value"),
        [
            ("mean SRA advantage", format_percent(mean(advantages)) if advantages else "n/a"),
            ("SRA-exclusive router IPs", format_count(len(exclusive))),
            (
                "mean consecutive-scan overlap",
                format_percent(mean(overlaps)) if overlaps else "n/a",
            ),
        ],
    )
    return ExperimentReport(
        experiment_id="fig5",
        title="SRA vs random probing of hitlist /64s",
        data={
            "per_epoch": [
                {
                    "epoch": sra_scan.epoch,
                    "sra_routers": len(sra_scan.router_ips),
                    "sra_echo_routers": len(sra_scan.echo_router_ips),
                    "random_routers": len(random_scan.router_ips),
                }
                for sra_scan, random_scan in zip(series.sra, series.random)
            ],
            "advantages": advantages,
            "sra_exclusive": len(exclusive),
            "consecutive_overlap": overlaps,
        },
        text=f"{summary}\n\n{extras}",
    )
