"""Table 2: effectiveness of the five SRA input sets.

Paper row shape (scaled): the Hitlist /64 input yields by far the highest
router-IP discovery rate (10.3 % vs <1 % for the artificial partitions),
the plain-BGP scan has a high *relative* reply rate but negligible
absolute yield, and the /48//64 partitions are error-dominated.
"""

from __future__ import annotations

from ..analysis.report import format_count, format_percent, render_table
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    rows = context.survey.table2_rows()
    rendered = render_table(
        (
            "source",
            "addresses",
            "responsive",
            "replies",
            "reply-rate",
            "router-IPs",
            "discovery",
        ),
        [
            (
                row["source"],
                format_count(row["addresses"]),
                format_count(row["responsive"]),
                format_count(row["replies"]),
                format_percent(row["reply_rate"]),
                format_count(row["router_ips"]),
                format_percent(row["discovery_rate"], 2),
            )
            for row in rows
        ],
        title="Table 2 — input-set effectiveness for SRA probing",
    )
    return ExperimentReport(
        experiment_id="table2",
        title="Input sets for Subnet-Router anycast probing",
        data={"rows": rows},
        text=rendered,
    )
