"""CLI runner: regenerate any table/figure of the paper.

Usage::

    sra-repro --scale quick table2 fig5
    sra-repro --scale full all
    python -m repro.experiments.runner fig8
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

from ..scanner.backends import backend_names
from ..scanner.checkpoint import CheckpointError
from ..scanner.sharded import ScanInterrupted, ShardFailedError
from ..telemetry.scan import ScanTelemetry
from .base import ExperimentReport
from .world import ExperimentContext, get_context

# Registry of experiment ids -> run functions.  Import here (not lazily)
# so `--list` and argument validation see everything.
from . import (  # noqa: E402
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig10,
    strategy_race,
    table1,
    table2,
    table3,
    table4,
)

EXPERIMENTS: dict[str, Callable[[ExperimentContext], ExperimentReport]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig10": fig10.run,
    "strategy-race": strategy_race.run,
}


def write_report_artifacts(report: ExperimentReport, report_dir: Path) -> list[Path]:
    """Persist one report under ``report_dir``; returns the paths written.

    Every report gets ``<id>.txt`` (the paper-style text).  Reports that
    carry a deterministic table (``table_jsonl`` in their data — today
    the strategy race) additionally get ``<id>.jsonl``, the bytes CI
    uploads as the comparison-table artifact.
    """
    report_dir.mkdir(parents=True, exist_ok=True)
    written = []
    text_path = report_dir / f"{report.experiment_id}.txt"
    text_path.write_text(str(report) + "\n", encoding="utf-8")
    written.append(text_path)
    table = report.data.get("table_jsonl")
    if table is not None:
        table_path = report_dir / f"{report.experiment_id}.jsonl"
        table_path.write_text(table, encoding="utf-8")
        written.append(table_path)
    return written


def resolve_experiment_ids(requested: list[str]) -> list[str]:
    """Expand 'all' and dedupe ids while preserving first-seen order.

    ``sra-repro table2 table2`` must run table2 once, not twice.  Raises
    ``ValueError`` for unknown ids.
    """
    if not requested or "all" in requested:
        return sorted(EXPERIMENTS)
    for experiment_id in requested:
        if experiment_id not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {experiment_id!r} "
                f"(choose from {', '.join(sorted(EXPERIMENTS))})"
            )
    return list(dict.fromkeys(requested))


def run_experiment(
    experiment_id: str, context: ExperimentContext
) -> ExperimentReport:
    """Run one experiment by id against a context."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    return runner(context)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sra-repro",
        description="Regenerate tables/figures of the SRA probing paper "
        "on the simulated IPv6 Internet.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (table1..table4, fig3..fig10, "
        "strategy-race) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="probe budgets: quick (seconds) or full (minutes)",
    )
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="split every scan across N parallel shards "
        "(default: one per core; results are identical at any count)",
    )
    parser.add_argument(
        "--pps",
        type=float,
        default=None,
        help="override the scale's survey probe rate",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="probes per engine batch (throughput dial; results are "
        "bit-identical for any value)",
    )
    parser.add_argument(
        "--backend-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry each failed backend batch up to N times before "
        "quarantining it (default: no resilience wrapper)",
    )
    parser.add_argument(
        "--backend-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-batch watchdog deadline; a hung backend batch is "
        "recovered and retried (default: no deadline)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=float,
        default=None,
        metavar="RATE",
        help="circuit-breaker open threshold as a batch failure rate in "
        "(0, 1]; an open breaker quarantines batches without probing "
        "until its cooldown expires (default: no breaker)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="probe backend for every campaign scan: 'sim' (default) or "
        "'wire-sim' (byte-accurate wire round trip; identical outputs, "
        "slower). 'raw' is refused — experiments run on the simulator",
    )
    parser.add_argument(
        "--checkpoint-dir",
        help="journal every campaign scan here; an interrupted run "
        "resumes from the journals and regenerates identical outputs",
    )
    parser.add_argument(
        "--report-dir",
        help="also write each report's text (and any deterministic "
        "table, e.g. strategy-race's comparison JSONL) to this "
        "directory",
    )
    parser.add_argument(
        "--telemetry-out",
        help="write the campaign's JSONL telemetry event stream here",
    )
    parser.add_argument(
        "--metrics-out",
        help="write the campaign's Prometheus-text metrics here",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)
    # One-line stderr + exit 2 for bad numeric knobs, matching sra-scan:
    # a non-positive rate would otherwise surface as a ValueError
    # traceback deep inside the first campaign scan.
    for problem in (
        "--pps must be positive"
        if args.pps is not None and args.pps <= 0
        else None,
        "--batch-size must be >= 1"
        if args.batch_size is not None and args.batch_size < 1
        else None,
        "--backend-retries must be >= 0"
        if args.backend_retries is not None and args.backend_retries < 0
        else None,
        "--backend-timeout must be positive"
        if args.backend_timeout is not None
        and not args.backend_timeout > 0  # NaN fails this comparison too
        else None,
        "--breaker-threshold must be in (0, 1]"
        if args.breaker_threshold is not None
        and not 0.0 < args.breaker_threshold <= 1.0  # rejects NaN as well
        else None,
    ):
        if problem is not None:
            print(f"sra-repro: {problem}", file=sys.stderr)
            return 2
    if args.backend is not None:
        if args.backend == "raw":
            print(
                "sra-repro: --backend raw is not allowed; experiments "
                "reproduce the paper on the simulator (use sra-scan "
                "--backend raw --i-am-authorized for real probing)",
                file=sys.stderr,
            )
            return 2
        if args.backend not in backend_names():
            print(
                f"sra-repro: unknown backend {args.backend!r} "
                f"(choose from {', '.join(backend_names())})",
                file=sys.stderr,
            )
            return 2
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be >= 1")
    for flag, value in (
        ("--checkpoint-dir", args.checkpoint_dir),
        ("--telemetry-out", args.telemetry_out),
        ("--metrics-out", args.metrics_out),
    ):
        if value and not Path(value).parent.is_dir():
            print(
                f"sra-repro: {flag}: directory "
                f"{str(Path(value).parent)!r} does not exist",
                file=sys.stderr,
            )
            return 2

    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    try:
        requested = resolve_experiment_ids(list(args.experiments))
    except ValueError as error:
        parser.error(str(error))

    context = get_context(
        args.scale,
        seed=args.seed,
        shards=args.shards,
        checkpoint_dir=args.checkpoint_dir,
        pps=args.pps,
        batch_size=args.batch_size,
        backend=args.backend,
        backend_retries=args.backend_retries,
        backend_timeout=args.backend_timeout,
        breaker_threshold=args.breaker_threshold,
    )
    telemetry = (
        ScanTelemetry() if (args.telemetry_out or args.metrics_out) else None
    )
    if telemetry is not None:
        # The context (and its cached runner, if campaigns already ran in
        # this process) must adopt the facade before experiments execute.
        context.telemetry = telemetry
        if "runner" in vars(context):
            context.runner.telemetry = telemetry
    for experiment_id in requested:
        started = time.perf_counter()
        try:
            report = run_experiment(experiment_id, context)
        except CheckpointError as error:
            print(f"sra-repro: checkpoint error: {error}", file=sys.stderr)
            return 4
        except ScanInterrupted as error:
            print(
                f"sra-repro: interrupted during {experiment_id}: {error}",
                file=sys.stderr,
            )
            if args.checkpoint_dir:
                print(
                    "sra-repro: re-run the same command to resume from "
                    f"{args.checkpoint_dir}",
                    file=sys.stderr,
                )
            return 5
        except ShardFailedError as error:
            print(f"sra-repro: {error}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        print(report)
        print(f"[{experiment_id} regenerated in {elapsed:.1f}s]\n")
        if args.report_dir:
            for path in write_report_artifacts(report, Path(args.report_dir)):
                print(f"[wrote {path}]", file=sys.stderr)
    if telemetry is not None:
        if args.telemetry_out:
            telemetry.write_jsonl(args.telemetry_out)
        if args.metrics_out:
            telemetry.write_prometheus(args.metrics_out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
