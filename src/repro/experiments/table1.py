"""Table 1: methods overview — observed addresses per measurement method.

The paper's Table 1 contextualises SRA probing against random probing,
hitlists, and IXP flows by the number of addresses each method observes.
We regenerate the same inventory from the simulator's campaigns.
"""

from __future__ import annotations

from ..analysis.report import format_count, render_table
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    # Random probing discovers router addresses via error messages; take
    # the first random scan of the Fig. 5 series as the representative.
    random_routers = (
        len(context.fig5_series.random[0].router_ips)
        if context.fig5_series.random
        else 0
    )
    rows = [
        ("Random Probing", "Router", format_count(random_routers)),
        ("Hitlist", "Active End Hosts", format_count(len(context.hitlist))),
        (
            "IXP Flows",
            "Active End Hosts",
            format_count(len(context.ixp_capture.all_addresses())),
        ),
        (
            "Traceroute (Ark/Atlas)",
            "Router",
            format_count(len(context.ark_dataset) + len(context.atlas_dataset)),
        ),
        (
            "SRA Probing (this work)",
            "Router (Core and Periphery)",
            format_count(len(context.sra_router_ips)),
        ),
    ]
    data = {
        "random_probing_routers": random_routers,
        "hitlist_hosts": len(context.hitlist),
        "ixp_addresses": len(context.ixp_capture.all_addresses()),
        "ark_addresses": len(context.ark_dataset),
        "atlas_addresses": len(context.atlas_dataset),
        "sra_routers": len(context.sra_router_ips),
    }
    return ExperimentReport(
        experiment_id="table1",
        title="Active and passive IPv6 measurement methods",
        data=data,
        text=render_table(
            ("method", "discovery of", "observed addresses"),
            rows,
            title="Table 1 — methods overview",
        ),
    )
