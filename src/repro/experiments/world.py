"""Shared experiment context: the default world and derived artifacts.

Every table/figure experiment consumes the same world, hitlist, metadata
and (expensive) survey results; :class:`ExperimentContext` computes each
lazily and caches it, and :func:`get_context` memoises whole contexts per
(scale, seed) for the lifetime of the process — pytest benchmarks and the
CLI runner share one build.

Two scales ship by default:

* ``quick`` — a ~150-AS world with reduced probe budgets; every experiment
  finishes in seconds.  Used by the test suite.
* ``full``  — the 600-AS world with the paper-shaped budgets.  Used by the
  benchmark harness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import TYPE_CHECKING

from ..analysis.comparison import SourceComparison
from ..analysis.loops import LoopAnalysis
from ..core.probing import (
    ComparisonSeries,
    StabilityReport,
    VisibilityReport,
    run_sra_vs_random,
    run_stability,
    run_visibility,
)
from ..core.survey import SRASurvey, SurveyConfig, SurveyResult
from ..datasets.caida import run_ark_campaign
from ..datasets.common import AddressDataset
from ..datasets.ixp import IXPFlowDataset, run_ixp_capture
from ..datasets.ripeatlas import run_atlas_campaign
from ..datasets.tum import harvest_hitlist, published_alias_list
from ..hitlist.aliases import AliasedPrefixList
from ..hitlist.hitlist import Hitlist
from ..metadata.asn import ASNMapper
from ..metadata.astype import ASTypeDatabase
from ..metadata.geoip import GeoIPDatabase
from ..scanner.sharded import ShardedScanRunner
from ..telemetry.scan import ScanTelemetry
from ..topology.config import WorldConfig
from ..topology.entities import World
from ..topology.generator import build_world

if TYPE_CHECKING:
    from .strategy_race import RaceResult


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """Probe and dataset budgets for one experiment scale."""

    name: str
    world_config: WorldConfig
    survey_config: SurveyConfig
    hitlist_stale_fraction: float = 0.65
    fig5_targets: int = 20_000
    fig5_epochs: int = 6
    stability_targets: int = 20_000
    stability_epochs: int = 6
    visibility_days: int = 7
    visibility_max_routers: int = 30_000
    ark_max_prefixes: int | None = 800
    atlas_max_targets: int = 1_500
    ixp_packets: int = 2_000_000
    ixp_sample_rate: int = 256
    race_epochs: int = 4
    race_budget: int = 25_000


def _auto_shards(limit: int | None = None) -> int:
    """Shard count for experiment contexts: one per core by default.

    Sharded merges are deterministic, so any value yields identical
    tables/figures — this only tunes wall-clock time.  The
    ``SRA_MAX_SHARDS`` environment variable pins the count outright
    (CI runners and shared hosts advertise far more CPUs than they
    should be saturated with); otherwise every core gets a shard, up to
    ``limit`` when a caller passes one.
    """
    env = os.environ.get("SRA_MAX_SHARDS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"SRA_MAX_SHARDS must be an integer, got {env!r}"
            ) from None
    cores = os.cpu_count() or 1
    if limit is not None:
        cores = min(limit, cores)
    return max(1, cores)


def quick_scale(seed: int = 2024) -> ExperimentScale:
    return ExperimentScale(
        name="quick",
        world_config=WorldConfig(
            seed=seed,
            num_ases=150,
            num_tier1=6,
            num_tier2=30,
            mean_subnets_per_as=35.0,
            max_subnets_per_as=800,
        ),
        survey_config=SurveyConfig(
            seed=seed + 1,
            slash48_per_prefix=128,
            max_bgp_48=60_000,
            slash64_per_prefix=256,
            max_bgp_64=40_000,
            route6_per_prefix=64,
            max_route6=50_000,
            max_hitlist=30_000,
            shards=_auto_shards(),
            # Threads keep the quick scale light-weight (no per-run world
            # pickling) and safe under pytest workers.
            parallel="thread",
        ),
        fig5_targets=8_000,
        fig5_epochs=4,
        stability_targets=8_000,
        stability_epochs=6,
        visibility_max_routers=8_000,
        ark_max_prefixes=250,
        atlas_max_targets=600,
        ixp_packets=800_000,
        ixp_sample_rate=128,
        race_epochs=3,
        race_budget=4_000,
    )


def full_scale(seed: int = 2024) -> ExperimentScale:
    return ExperimentScale(
        name="full",
        world_config=WorldConfig(seed=seed),
        survey_config=SurveyConfig(
            seed=seed + 1,
            slash48_per_prefix=192,
            max_bgp_48=250_000,
            slash64_per_prefix=512,
            max_bgp_64=150_000,
            route6_per_prefix=96,
            max_route6=200_000,
            max_hitlist=None,
            shards=_auto_shards(),
            parallel="auto",
        ),
        fig5_targets=25_000,
        fig5_epochs=6,
        stability_targets=25_000,
        stability_epochs=6,
        visibility_max_routers=40_000,
        ark_max_prefixes=1_200,
        atlas_max_targets=2_500,
        ixp_packets=4_000_000,
        ixp_sample_rate=256,
    )


SCALES = {"quick": quick_scale, "full": full_scale}


@dataclass
class ExperimentContext:
    """Lazily-computed shared artifacts for one scale."""

    scale: ExperimentScale
    # Optional observability facade: set before the first campaign runs
    # (the cached runner adopts it) and every scan of every experiment
    # reports into one event stream / metrics registry.
    telemetry: "ScanTelemetry | None" = None
    _cache: dict = field(default_factory=dict, repr=False)

    # ---------------- foundations ---------------- #

    @cached_property
    def world(self) -> World:
        return build_world(self.scale.world_config)

    @cached_property
    def hitlist(self) -> Hitlist:
        return harvest_hitlist(
            self.world, stale_fraction=self.scale.hitlist_stale_fraction
        )

    @cached_property
    def alias_list(self) -> AliasedPrefixList:
        return published_alias_list(self.world)

    @cached_property
    def geo(self) -> GeoIPDatabase:
        return GeoIPDatabase.from_world(self.world)

    @cached_property
    def mapper(self) -> ASNMapper:
        return ASNMapper(self.world.bgp)

    @cached_property
    def astype(self) -> ASTypeDatabase:
        return ASTypeDatabase.from_world(self.world)

    # ---------------- campaigns ---------------- #

    @cached_property
    def runner(self) -> ShardedScanRunner:
        """The shared parallel scan executor for every campaign."""
        return ShardedScanRunner(
            self.world,
            shards=self.scale.survey_config.shards,
            executor=self.scale.survey_config.parallel,
            telemetry=self.telemetry,
            max_shard_retries=self.scale.survey_config.max_shard_retries,
            checkpoint_dir=self.scale.survey_config.checkpoint_dir,
        )

    @cached_property
    def survey(self) -> SurveyResult:
        return SRASurvey(
            self.world,
            self.hitlist,
            alias_list=self.alias_list,
            config=self.scale.survey_config,
            runner=self.runner,
        ).run()

    @cached_property
    def sra_router_ips(self) -> set[int]:
        return self.survey.all_router_ips()

    @cached_property
    def sra_dataset(self) -> AddressDataset:
        return AddressDataset(name="sra", addresses=set(self.sra_router_ips))

    @cached_property
    def hitlist_dataset(self) -> AddressDataset:
        return AddressDataset(
            name="tum-hitlist", addresses=set(self.hitlist.addresses())
        )

    @cached_property
    def hitlist_slash64_targets(self) -> list[int]:
        return self.hitlist.unique_slash64s()

    @cached_property
    def fig5_series(self) -> ComparisonSeries:
        import random

        targets = self.hitlist_slash64_targets
        if len(targets) > self.scale.fig5_targets:
            targets = random.Random(5).sample(targets, self.scale.fig5_targets)
        return run_sra_vs_random(
            self.world, targets, epochs=self.scale.fig5_epochs, runner=self.runner
        )

    @cached_property
    def stability(self) -> StabilityReport:
        import random

        targets = self.hitlist_slash64_targets
        if len(targets) > self.scale.stability_targets:
            targets = random.Random(6).sample(
                targets, self.scale.stability_targets
            )
        return run_stability(
            self.world,
            targets,
            epochs=self.scale.stability_epochs,
            runner=self.runner,
        )

    @cached_property
    def visibility(self) -> VisibilityReport:
        import random

        routers = self.sra_router_ips
        if len(routers) > self.scale.visibility_max_routers:
            routers = set(
                random.Random(7).sample(
                    sorted(routers), self.scale.visibility_max_routers
                )
            )
        return run_visibility(
            self.world,
            routers,
            days=self.scale.visibility_days,
            runner=self.runner,
        )

    @cached_property
    def ark_dataset(self) -> AddressDataset:
        return run_ark_campaign(
            self.world, max_prefixes=self.scale.ark_max_prefixes
        )

    @cached_property
    def atlas_dataset(self) -> AddressDataset:
        return run_atlas_campaign(
            self.world, self.hitlist, max_targets=self.scale.atlas_max_targets
        )

    @cached_property
    def ixp_capture(self) -> IXPFlowDataset:
        return run_ixp_capture(
            self.world,
            packets=self.scale.ixp_packets,
            sample_rate=self.scale.ixp_sample_rate,
        )

    @cached_property
    def comparison(self) -> SourceComparison:
        comparison = SourceComparison(mapper=self.mapper)
        comparison.add(self.sra_dataset)
        comparison.add(self.ixp_capture.as_dataset())
        comparison.add(self.ark_dataset)
        comparison.add(self.atlas_dataset)
        comparison.add(self.hitlist_dataset)
        return comparison

    @cached_property
    def strategy_race(self) -> "RaceResult":
        """The discovery-strategy race (``sra-repro strategy-race``)."""
        # Imported lazily: strategy_race imports core.probing helpers that
        # in turn reference this module under TYPE_CHECKING.
        from .strategy_race import run_strategy_race

        config = self.scale.survey_config
        return run_strategy_race(
            self.world,
            epochs=self.scale.race_epochs,
            budget=self.scale.race_budget,
            seed=config.seed,
            pps=config.pps,
            scan_duration=config.scan_duration,
            batch_size=config.batch_size,
            runner=self.runner,
            telemetry=self.telemetry,
        )

    @cached_property
    def loop_analysis(self) -> LoopAnalysis:
        """Loops seen in the BGP /48 scan (the paper's §6 data source)."""
        bgp48 = self.survey.input_sets["bgp-48"]
        return LoopAnalysis.from_scans(bgp48.result)


_CONTEXTS: dict[tuple, ExperimentContext] = {}


def get_context(
    scale: str = "quick",
    *,
    seed: int = 2024,
    shards: int | None = None,
    checkpoint_dir: str | None = None,
    pps: float | None = None,
    batch_size: int | None = None,
    backend: str | None = None,
    backend_retries: int | None = None,
    backend_timeout: float | None = None,
    breaker_threshold: float | None = None,
) -> ExperimentContext:
    """Process-level memoised context (scales: 'quick', 'full').

    ``shards`` overrides the scale's automatic shard count (results are
    identical either way; this tunes parallel scan execution only).
    ``checkpoint_dir`` makes every campaign scan journal per (scan,
    epoch) there — an interrupted ``sra-repro`` run resumes from those
    journals and regenerates identical tables/figures.  ``pps`` and
    ``batch_size`` override the scale's survey scanner knobs; a
    non-positive value raises :class:`ValueError` (the CLI rejects these
    before ever getting here).  ``backend`` selects the probe backend for
    every campaign scan — deterministic simulated backends only (the
    sharded runner refuses the rest), and ``sim``/``wire-sim`` produce
    identical outputs.  ``backend_retries``/``backend_timeout``/
    ``breaker_threshold`` configure the resilience layer around every
    campaign scan's backend (see
    :class:`repro.scanner.backends.RetryPolicy`); with the deterministic
    simulated backends and no fault injection the wrapper is an identity,
    so outputs stay byte-identical.
    """
    if pps is not None and pps <= 0:
        raise ValueError(f"pps must be positive, got {pps}")
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if backend_retries is not None and backend_retries < 0:
        raise ValueError(
            f"backend_retries must be >= 0, got {backend_retries}"
        )
    if backend_timeout is not None and not backend_timeout > 0:
        raise ValueError(
            f"backend_timeout must be positive, got {backend_timeout}"
        )
    if breaker_threshold is not None and not 0.0 < breaker_threshold <= 1.0:
        raise ValueError(
            f"breaker_threshold must be in (0, 1], got {breaker_threshold}"
        )
    key = (
        scale,
        seed,
        shards,
        checkpoint_dir,
        pps,
        batch_size,
        backend,
        backend_retries,
        backend_timeout,
        breaker_threshold,
    )
    if key not in _CONTEXTS:
        try:
            factory = SCALES[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
            ) from None
        built = factory(seed)
        overrides = {}
        if shards is not None:
            overrides["shards"] = shards
        if checkpoint_dir is not None:
            overrides["checkpoint_dir"] = checkpoint_dir
        if pps is not None:
            overrides["pps"] = pps
        if batch_size is not None:
            overrides["batch_size"] = batch_size
        if backend is not None:
            overrides["backend"] = backend
        if backend_retries is not None:
            overrides["backend_retries"] = backend_retries
        if backend_timeout is not None:
            overrides["backend_timeout"] = backend_timeout
        if breaker_threshold is not None:
            overrides["breaker_threshold"] = breaker_threshold
        if overrides:
            built = replace(
                built,
                survey_config=replace(built.survey_config, **overrides),
            )
        _CONTEXTS[key] = ExperimentContext(scale=built)
    return _CONTEXTS[key]


def custom_context(scale: ExperimentScale) -> ExperimentContext:
    """An uncached context for ablations with modified configs."""
    return ExperimentContext(scale=scale)


def scaled_with(scale: ExperimentScale, **overrides) -> ExperimentScale:
    """A copy of ``scale`` with field overrides (for ablations)."""
    return replace(scale, **overrides)
