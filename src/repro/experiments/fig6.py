"""Fig. 6: visibility (a) and stability (b) of discovered router IPs.

Shape to reproduce:

* (a) only a minority (paper: 28 M / 133 M ≈ 21 %) of SRA-discovered
  routers answer *direct* Echo requests on every daily re-probe; the large
  majority (>70 %) never answers directly,
* (b) re-probing the same SRA address keeps revealing the *same* router IP
  for ≥66 % of targets across six scans; changes are rare (≤7 %) and the
  no-response share grows slowly with churn.
"""

from __future__ import annotations

from ..analysis.asn_stability import asn_stability
from ..analysis.report import format_percent, render_table
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    visibility = context.visibility
    stability = context.stability
    vis_shares = visibility.shares()
    vis_table = render_table(
        ("class", "share"),
        [(name, format_percent(share)) for name, share in vis_shares.items()],
        title=(
            "Fig. 6a — visibility: daily direct probing of "
            f"{len(visibility.probed)} router IPs for "
            f"{len(visibility.daily_responsive)} days"
        ),
    )
    stab_rows = [
        (
            index + 1,
            format_percent(epoch["same"]),
            format_percent(epoch["changed"]),
            format_percent(epoch["no_response"]),
        )
        for index, epoch in enumerate(stability.epochs)
    ]
    stab_table = render_table(
        ("scan", "same router", "changed", "no response"),
        stab_rows,
        title="Fig. 6b — stability: re-probing the same SRA addresses",
    )
    # §4 "Prevalence and stability of ASNs and IPv6 prefixes": map each
    # consecutive scan's router IPs to prefixes/ASNs (paper: ~87 % of
    # prefixes unchanged, ~96 % stable AS set).
    asn_report = asn_stability(
        [scan.result for scan in context.fig5_series.sra], context.world.bgp
    )
    asn_summary = asn_report.summary()
    asn_table = render_table(
        ("metric", "value"),
        [
            ("prefix persistence (scan-to-scan)",
             format_percent(asn_summary["prefix_persistence"])),
            ("ASN persistence (scan-to-scan)",
             format_percent(asn_summary["asn_persistence"])),
            ("stable AS core across all scans",
             format_percent(asn_summary["asn_stable_core"])),
        ],
        title="§4 — ASN/prefix stability over consecutive scans",
    )
    return ExperimentReport(
        experiment_id="fig6",
        title="Visibility and stability of discovered router IPs",
        data={
            "visibility": vis_shares,
            "stability": stability.epochs,
            "asn_stability": asn_summary,
        },
        text=f"{vis_table}\n\n{stab_table}\n\n{asn_table}",
    )
