"""Table 3: top-5 ASes per data source + §5 overlap percentages.

Shape to reproduce: every data source is dominated by a *different* set of
ASNs (diversity), SRA's top AS holds ~11 % of its addresses, IXP flows are
far more concentrated (top AS ~43 %), and the IP-level overlaps between
SRA and everything else are tiny (94–99.9 % of SRA addresses are new).
"""

from __future__ import annotations

from ..analysis.report import format_percent, render_table
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    comparison = context.comparison
    table = comparison.table3(5)
    highlighted = comparison.highlighted_asns(reference="sra", n=5)

    headers = ["rank"]
    names = ["sra", "ixp-flows", "caida-ark", "ripe-atlas", "tum-hitlist"]
    for name in names:
        headers.extend([f"{name} ASN", "share"])
    rows = []
    for rank in range(5):
        row: list[object] = [rank + 1]
        for name in names:
            entries = table.get(name, [])
            if rank < len(entries):
                asn, share = entries[rank]
                marker = "*" if name == "sra" and asn in highlighted else ""
                row.extend([f"AS{asn}{marker}", format_percent(share)])
            else:
                row.extend(["-", "-"])
        rows.append(row)

    exclusives = {
        name: comparison.exclusive_fraction(name) for name in comparison.datasets
    }
    overlap_rows = [
        (f"{a} ∩ {b}", count)
        for (a, b), count in sorted(comparison.ip_overlap_matrix().items())
    ]
    text = "\n\n".join(
        [
            render_table(
                headers, rows, title="Table 3 — top 5 ASes per data source"
            ),
            render_table(
                ("pair", "shared IPs"),
                overlap_rows,
                title="IP-level overlaps between sources",
            ),
            render_table(
                ("source", "exclusive share"),
                [
                    (name, format_percent(frac))
                    for name, frac in sorted(exclusives.items())
                ],
                title="Share of addresses seen in no other source",
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="table3",
        title="Top ASes per data source and cross-source overlap",
        data={
            "table3": {name: list(entries) for name, entries in table.items()},
            "highlighted": sorted(highlighted),
            "exclusive_fractions": exclusives,
            "ip_overlaps": {
                f"{a}|{b}": count
                for (a, b), count in comparison.ip_overlap_matrix().items()
            },
        },
        text=text,
    )
