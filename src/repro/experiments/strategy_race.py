"""The strategy race: SRA probing vs. the field, one world, one budget.

Runs every registered discovery strategy (``sra-anycast``,
``random-baseline``, ``entropy-clustered``, ``hitlist-feedback``) on the
same world under a shared per-epoch probe budget and emits a
deterministic comparison table:

* **yield** — new and cumulative router IPs per epoch (the paper's core
  comparison: does SRA find periphery routers the others miss?),
* **stability** — Jaccard overlap of consecutive epochs' router IPs
  (Fig. 5's re-scan stability, per strategy),
* **rate-limit exposure** — RFC 4443 suppressions the strategy's probes
  triggered (error-hungry strategies burn router token buckets),
* **telescope exposure** — probes landing in unallocated space, from the
  :class:`~repro.scanner.strategies.telescope.Telescope` observer.

Every strategy scans through the same (optionally sharded) substrate
with the same pacing rule, and adaptive strategies observe each epoch's
merged records before producing the next window — so the whole table is
a deterministic function of (world seed, race seed, budget), byte
identical across shard counts and across interrupt+resume (pinned by
the golden and fault tests).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from ..core.probing import _scan
from ..scanner.pacing import paced_pps
from ..scanner.strategies import Telescope, build_strategy, strategy_names
from ..scanner.zmapv6 import ScanConfig
from .base import ExperimentReport

if TYPE_CHECKING:
    from ..scanner.sharded import ShardedScanRunner
    from ..telemetry.scan import ScanTelemetry
    from ..topology.entities import World
    from .world import ExperimentContext

# Race scans live in their own epoch band so world dynamics (staleness,
# per-epoch behaviour) never collide with the table/figure campaigns.
EPOCH_BASE = 3000


@dataclass(slots=True)
class StrategyEpochRow:
    """One (strategy, epoch) line of the comparison table."""

    strategy: str
    epoch: int
    targets: int
    records: int
    new_router_ips: int
    cumulative_router_ips: int
    overlap: float | None  # Jaccard vs previous epoch; None for epoch 0
    suppressed_errors: int
    dark_probes: int
    dark_share: float


@dataclass(slots=True)
class StrategySummary:
    """One strategy's totals across the race."""

    strategy: str
    probes: int
    router_ips: int
    echo_router_ips: int
    mean_overlap: float
    suppressed_errors: int
    dark_probes: int
    dark_share: float


@dataclass(slots=True)
class RaceResult:
    """The full race: per-epoch rows plus per-strategy summaries."""

    epochs: int
    budget: int
    seed: int
    rows: list[StrategyEpochRow] = field(default_factory=list)
    summaries: list[StrategySummary] = field(default_factory=list)

    def to_table_jsonl(self) -> str:
        """The comparison table as deterministic JSONL.

        Fixed key order, fixed separators, rows before summaries — the
        bytes the golden test and the CI artifact pin.
        """
        lines = [
            json.dumps({"kind": "epoch", **asdict(row)}, sort_keys=False)
            for row in self.rows
        ]
        lines += [
            json.dumps({"kind": "summary", **asdict(summary)}, sort_keys=False)
            for summary in self.summaries
        ]
        return "\n".join(lines) + "\n" if lines else ""

    def summary_for(self, strategy: str) -> StrategySummary:
        for summary in self.summaries:
            if summary.strategy == strategy:
                return summary
        raise KeyError(strategy)


def _jaccard(current: set[int], previous: set[int]) -> float | None:
    union = current | previous
    return len(current & previous) / len(union) if union else 0.0


def run_strategy_race(
    world: "World",
    *,
    strategies: "tuple[str, ...] | None" = None,
    epochs: int = 4,
    budget: int = 10_000,
    seed: int = 97,
    pps: float = 50_000.0,
    scan_duration: float = 6.0,
    batch_size: int = 1024,
    runner: "ShardedScanRunner | None" = None,
    telemetry: "ScanTelemetry | None" = None,
    epoch_base: int = EPOCH_BASE,
) -> RaceResult:
    """Race the strategies head-to-head under one probe budget.

    Strategies run in sorted-name order, each over the same epoch band
    ``epoch_base..epoch_base+epochs`` so every strategy faces identical
    world states.  Passing a ``runner`` shards each epoch's scan —
    merge determinism makes the result identical at any shard count.
    """
    if epochs < 1:
        raise ValueError(f"race needs at least one epoch, got {epochs}")
    names = tuple(strategies) if strategies is not None else strategy_names()
    race = RaceResult(epochs=epochs, budget=budget, seed=seed)
    for name in names:
        strategy = build_strategy(name, world, seed=seed, budget=budget)
        telescope = Telescope(world)
        cumulative: set[int] = set()
        echo_cumulative: set[int] = set()
        previous_ips: set[int] | None = None
        probes = suppressed_total = dark_total = records_total = 0
        overlaps: list[float] = []
        for index in range(epochs):
            window = strategy.window(index)
            paced = paced_pps(len(window), scan_duration, pps)
            result = _scan(
                world,
                ScanConfig(
                    pps=paced, seed=seed + index, batch_size=batch_size
                ),
                window,
                name=f"race-{name}-e{index}",
                epoch=epoch_base + index,
                runner=runner,
                telemetry=telemetry,
            )
            watched = telescope.observe_window(
                window, strategy=name, epoch=index
            )
            epoch_ips = result.sources()
            new_ips = len(epoch_ips - cumulative)
            cumulative |= epoch_ips
            echo_cumulative |= result.echo_sources()
            overlap = (
                _jaccard(epoch_ips, previous_ips)
                if previous_ips is not None
                else None
            )
            if overlap is not None:
                overlaps.append(overlap)
            previous_ips = epoch_ips
            stats = result.engine_stats
            suppressed = stats.suppressed_errors if stats is not None else 0
            race.rows.append(
                StrategyEpochRow(
                    strategy=name,
                    epoch=index,
                    targets=len(window),
                    records=result.received,
                    new_router_ips=new_ips,
                    cumulative_router_ips=len(cumulative),
                    overlap=overlap,
                    suppressed_errors=suppressed,
                    dark_probes=watched.dark,
                    dark_share=watched.dark_share,
                )
            )
            probes += len(window)
            records_total += result.received
            suppressed_total += suppressed
            dark_total += watched.dark
            if telemetry is not None:
                telemetry.strategy_window_finished(
                    strategy=name,
                    epoch=index,
                    targets=len(window),
                    new_router_ips=new_ips,
                    cumulative_router_ips=len(cumulative),
                    dark_probes=watched.dark,
                    suppressed_errors=suppressed,
                )
            # Feed the epoch's merged records back *after* bookkeeping:
            # adaptive strategies shape the next window from exactly the
            # records a resumed run reconstructs from its journal.
            strategy.observe(result.records)
        race.summaries.append(
            StrategySummary(
                strategy=name,
                probes=probes,
                router_ips=len(cumulative),
                echo_router_ips=len(echo_cumulative),
                mean_overlap=(
                    sum(overlaps) / len(overlaps) if overlaps else 0.0
                ),
                suppressed_errors=suppressed_total,
                dark_probes=dark_total,
                dark_share=dark_total / probes if probes else 0.0,
            )
        )
    return race


def format_race_table(race: RaceResult) -> str:
    """The comparison table as aligned text (the report body)."""
    lines = [
        f"Strategy race: {race.epochs} epochs x {race.budget} probe budget "
        f"(seed {race.seed})",
        "",
        f"{'strategy':<18} {'epoch':>5} {'targets':>8} {'new':>6} "
        f"{'cum':>6} {'overlap':>8} {'supp':>6} {'dark':>6}",
    ]
    for row in race.rows:
        overlap = f"{row.overlap:.3f}" if row.overlap is not None else "-"
        lines.append(
            f"{row.strategy:<18} {row.epoch:>5} {row.targets:>8} "
            f"{row.new_router_ips:>6} {row.cumulative_router_ips:>6} "
            f"{overlap:>8} {row.suppressed_errors:>6} {row.dark_probes:>6}"
        )
    lines.append("")
    lines.append(
        f"{'strategy':<18} {'probes':>8} {'routers':>8} {'echo':>6} "
        f"{'overlap':>8} {'supp':>6} {'dark%':>6}"
    )
    for summary in race.summaries:
        lines.append(
            f"{summary.strategy:<18} {summary.probes:>8} "
            f"{summary.router_ips:>8} {summary.echo_router_ips:>6} "
            f"{summary.mean_overlap:>8.3f} {summary.suppressed_errors:>6} "
            f"{summary.dark_share:>6.1%}"
        )
    return "\n".join(lines)


def run(context: "ExperimentContext") -> ExperimentReport:
    """``sra-repro strategy-race``: the head-to-head comparison table."""
    race = context.strategy_race
    return ExperimentReport(
        experiment_id="strategy-race",
        title="Discovery-strategy race: SRA vs. the field",
        data={
            "epochs": race.epochs,
            "budget": race.budget,
            "seed": race.seed,
            "rows": [asdict(row) for row in race.rows],
            "summaries": [asdict(summary) for summary in race.summaries],
            "table_jsonl": race.to_table_jsonl(),
        },
        text=format_race_table(race),
    )
