"""Fig. 7/9: AS-level overlap between all data sources (UpSet plot data).

Shape to reproduce: while IP-level overlap is tiny, >99 % of the ASes seen
by SRA probing also appear in at least one other source; RIPE Atlas
contributes a sizeable set of exclusive ASes (probes live inside member
networks).
"""

from __future__ import annotations

from ..analysis.report import format_percent, render_table
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    comparison = context.comparison
    as_sets = comparison.as_sets()
    upset = comparison.upset_counts()
    total = sum(upset.values())
    rows = [
        ("+".join(sorted(combo)), count, format_percent(count / total, 2))
        for combo, count in sorted(
            upset.items(), key=lambda item: item[1], reverse=True
        )
    ]
    sizes = render_table(
        ("source", "ASes"),
        [(name, len(asns)) for name, asns in sorted(as_sets.items())],
        title="AS set sizes per source",
    )
    intersections = render_table(
        ("combination", "ASes", "share"),
        rows[:16],
        title="Fig. 7/9 — exclusive intersections (UpSet data, top 16)",
    )
    sra_coverage = comparison.as_coverage("sra")
    coverage = f"SRA ASes also seen elsewhere: {format_percent(sra_coverage, 2)}"
    return ExperimentReport(
        experiment_id="fig7",
        title="AS-level overlap between data sources",
        data={
            "as_set_sizes": {name: len(asns) for name, asns in as_sets.items()},
            "upset": {
                "+".join(sorted(combo)): count for combo, count in upset.items()
            },
            "sra_as_coverage": sra_coverage,
        },
        text=f"{sizes}\n\n{intersections}\n\n{coverage}",
    )
