"""Fig. 8: amplification-factor CCDF (a) and loops-per-router CCDF (b).

Shape to reproduce: ~98 % of amplifying routers have factors ≤10 while a
handful exceed 10^5 (a); the majority of looping routers are responsible
for a single /48 while a few connect orders of magnitude more (b).
"""

from __future__ import annotations

from ..analysis.report import format_percent, render_ccdf, render_table
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    analysis = context.loop_analysis
    amp_ccdf = analysis.amplification_ccdf()
    loops_ccdf = analysis.loops_per_router_ccdf()
    headline = render_table(
        ("metric", "value"),
        [
            ("looping /48s observed", len(analysis.looping_slash48s)),
            ("looping router IPs", len(analysis.looping_routers)),
            ("amplifying router IPs", len(analysis.amplifying_routers)),
            (
                "single-subnet looping routers",
                format_percent(analysis.single_subnet_router_share()),
            ),
            (
                "amplification <= 10 (share of amplifying routers)",
                format_percent(analysis.amplification_share_below(10), 2),
            ),
            (
                "max amplification factor",
                max(
                    analysis.amplification_per_router.values(), default=0
                ),
            ),
        ],
        title="Routing loops and amplification — headline numbers (§6)",
    )
    text = "\n\n".join(
        [
            headline,
            render_ccdf(
                amp_ccdf, title="Fig. 8a — amplification factor per router"
            ),
            render_ccdf(
                loops_ccdf, title="Fig. 8b — looping /48 subnets per router"
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="fig8",
        title="Routing loops and amplification factors",
        data={
            "looping_slash48s": len(analysis.looping_slash48s),
            "looping_routers": len(analysis.looping_routers),
            "amplifying_routers": len(analysis.amplifying_routers),
            "single_subnet_share": analysis.single_subnet_router_share(),
            "amplification_ccdf": amp_ccdf,
            "loops_per_router_ccdf": loops_ccdf,
        },
        text=text,
    )
