"""Common experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(slots=True)
class ExperimentReport:
    """One regenerated table/figure: machine-readable data + paper-style text."""

    experiment_id: str
    title: str
    data: dict[str, Any] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:
        header = f"=== {self.experiment_id}: {self.title} ==="
        return f"{header}\n{self.text}"
