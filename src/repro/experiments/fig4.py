"""Fig. 4: Echo / Error / Both classification of replying router IPs.

Shape to reproduce: the Hitlist /64 scan has by far the highest Echo-reply
share (paper: 35.2 %), the plain-BGP scan comes second (25.1 %), and all
artificially partitioned inputs are error-dominated (86–92 % errors), with
the "Both" class largest for the /48 and /64 BGP partitions.
"""

from __future__ import annotations

from ..analysis.report import format_percent, render_table
from ..core.survey import INPUT_SET_NAMES
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    shares: dict[str, dict[str, float]] = {}
    for name in INPUT_SET_NAMES:
        result = context.survey.input_sets.get(name)
        if result is not None:
            shares[name] = result.response_type_shares()
    rows = []
    for kind in ("echo", "error", "both"):
        rows.append(
            [kind]
            + [format_percent(shares[name][kind], 2) for name in shares]
        )
    return ExperimentReport(
        experiment_id="fig4",
        title="ICMP response types per scan",
        data={"shares": shares},
        text=render_table(
            ["class"] + list(shares),
            rows,
            title="Fig. 4 — router-IP response classes per input set",
        ),
    )
