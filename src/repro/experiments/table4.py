"""Table 4: top countries for routing loops (a) and amplification (b).

Shape to reproduce: Brazil leads the looping-/48 count (paper: 26 %) with
*many* distinct looping routers, Germany/Czechia/Netherlands concentrate
loops on few routers, and the maximum amplification factors are extreme
(>10^5) only in Germany and the USA while Brazil/China max out around 50.
"""

from __future__ import annotations

from ..analysis.report import format_percent, render_table
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    analysis = context.loop_analysis
    geo = context.geo
    rows_a = analysis.table4a(geo, n=5)
    rows_b = analysis.table4b(geo, n=5)
    text = "\n\n".join(
        [
            render_table(
                ("country", "looping /48", "share", "router IPs"),
                [
                    (
                        row["country"],
                        row["looping_48s"],
                        format_percent(row["share"]),
                        row["router_ips"],
                    )
                    for row in rows_a
                ],
                title="Table 4a — top countries by looping /48 subnets",
            ),
            render_table(
                (
                    "country",
                    "ampl. /48",
                    "share",
                    "router IPs",
                    "max ampl. [x]",
                ),
                [
                    (
                        row["country"],
                        row["amplifying_48s"],
                        format_percent(row["share"]),
                        row["router_ips"],
                        row["max_amplification"],
                    )
                    for row in rows_b
                ],
                title="Table 4b — top countries by amplifying /48 subnets",
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="table4",
        title="Routing loops and amplification by country",
        data={"loops": rows_a, "amplification": rows_b},
        text=text,
    )
