"""Fig. 10 (Appendix E): IP addresses per continent and network type.

Shape to reproduce: router IPs discovered by SRA probing belong
overwhelmingly (>80 %) to ISP networks on every continent; IXP flow data
shows a similar ISP dominance, while hitlist/traceroute sources carry a
visible hosting-network fraction.
"""

from __future__ import annotations

from ..analysis.geodist import (
    continent_type_crosstab,
    isp_share,
    type_distribution,
)
from ..analysis.report import format_percent, render_table
from .base import ExperimentReport
from .world import ExperimentContext


def run(context: ExperimentContext) -> ExperimentReport:
    crosstab = continent_type_crosstab(
        context.sra_router_ips, context.geo, context.mapper, context.astype
    )
    type_labels = ("isp", "hosting", "business", "education", "content", "unknown")
    continent_rows = []
    for continent, counts in sorted(
        crosstab.items(), key=lambda item: -sum(item[1].values())
    ):
        continent_rows.append(
            [continent]
            + [counts.get(label, 0) for label in type_labels]
        )
    per_source = {}
    for name, dataset in context.comparison.datasets.items():
        distribution = type_distribution(
            dataset.addresses, context.mapper, context.astype
        )
        total = sum(distribution.values())
        per_source[name] = {
            label: distribution.get(label, 0) / total if total else 0.0
            for label in type_labels
        }
    source_rows = [
        [name]
        + [format_percent(shares[label]) for label in type_labels]
        for name, shares in sorted(per_source.items())
    ]
    text = "\n\n".join(
        [
            render_table(
                ["continent", *type_labels],
                continent_rows,
                title="Fig. 10a — SRA router IPs per continent and type",
            ),
            render_table(
                ["source", *type_labels],
                source_rows,
                title="Fig. 10b — network-type mix per data source",
            ),
            (
                "SRA ISP share: "
                + format_percent(
                    isp_share(
                        context.sra_router_ips, context.mapper, context.astype
                    )
                )
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="fig10",
        title="Distribution of IP addresses across network types",
        data={
            "continent_crosstab": {
                continent: dict(counts) for continent, counts in crosstab.items()
            },
            "per_source_type_shares": per_source,
        },
        text=text,
    )
