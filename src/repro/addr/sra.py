"""Subnet-Router anycast (SRA) address construction (RFC 4291 §2.6.1).

The SRA address of a subnet is the subnet prefix with all host (interface
identifier) bits set to zero.  Syntactically it is a unicast address; every
router is required to support it for each subnet it has an interface on.
"""

from __future__ import annotations

from .ipv6 import IPv6Prefix, network_of


def sra_address(prefix: IPv6Prefix) -> int:
    """The Subnet-Router anycast address of ``prefix`` (all host bits 0)."""
    return prefix.network


def sra_of(address: int, subnet_length: int) -> int:
    """SRA address of the ``/subnet_length`` subnet containing ``address``.

    This is the "hitlist" construction from the paper: take the first
    ``subnet_length`` bits of a host address and zero the rest, e.g. the
    /64 SRA for a host 2001:db8:1::abcd is 2001:db8:1::.
    """
    return network_of(address, subnet_length)


def is_sra_candidate(address: int, subnet_length: int) -> bool:
    """True if ``address`` has all host bits zero under ``subnet_length``.

    Used by the alias filter: a reply *sourced* from an SRA-shaped address
    (the ``::0`` address we probed) indicates an aliased network, because
    SRA addresses are typically not assigned to hosts.
    """
    return network_of(address, subnet_length) == address
