"""ZMap-style address-space permutation for stateless scanning.

ZMap iterates a multiplicative cyclic group modulo a prime ``p`` slightly
larger than the target count: ``x_{i+1} = (g * x_i) mod p``.  The walk
visits every element of ``[1, p)`` exactly once in pseudo-random order with
O(1) state, which is what makes the scanner stateless and restartable while
spreading probes across networks (avoiding per-router bursts).

We reproduce that scheme for index spaces (the scanner permutes *indices*
into its target list rather than raw 128-bit addresses).
"""

from __future__ import annotations

import random
from typing import Iterator


def _is_probable_prime(n: int, *, rounds: int = 24) -> bool:
    """Miller-Rabin primality test (deterministic enough at 24 rounds)."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    rng = random.Random(0xC0FFEE ^ n)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """The smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1
    while not _is_probable_prime(candidate):
        candidate += 2
    return candidate


class CyclicPermutation:
    """A pseudo-random permutation of ``range(size)`` with O(1) state.

    Internally walks the multiplicative group mod ``p = next_prime(size+1)``
    and skips values ``> size`` ("cycle walking"), so every index in
    ``[0, size)`` appears exactly once.
    """

    def __init__(self, size: int, seed: int) -> None:
        if size <= 0:
            raise ValueError("permutation size must be positive")
        self.size = size
        self.prime = next_prime(size + 1)
        rng = random.Random(seed)
        # Any g with large multiplicative order works for scan dispersion;
        # we pick a random g in [2, p-1) and verify it is a generator by
        # factoring p-1 only for small primes, else accept (order divides
        # p-1 and is overwhelmingly large for random g).
        self.generator = self._pick_generator(rng)
        self.start = rng.randrange(1, self.prime)
        # Sequential-seek cursor for __getitem__ when cycle-walking makes
        # output positions non-computable: (next output position, the walk
        # value reached just after it was emitted).
        self._cursor_position = 0
        self._cursor_value = self.start

    def _pick_generator(self, rng: random.Random) -> int:
        if self.prime <= 3:
            return self.prime - 1
        factors = _factorize(self.prime - 1)
        while True:
            g = rng.randrange(2, self.prime - 1)
            if all(pow(g, (self.prime - 1) // f, self.prime) != 1 for f in factors):
                return g

    def __iter__(self) -> Iterator[int]:
        value = self.start
        first = True
        while first or value != self.start:
            first = False
            if value <= self.size:
                yield value - 1
            value = (value * self.generator) % self.prime

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------- #
    # indexable-sequence view: seekable with O(1) state
    # ------------------------------------------------------------- #

    def value_at(self, step: int) -> int:
        """The raw group element after ``step`` walk steps, in O(log step).

        ``value_at(0)`` is the start element; cycle-walking skips are
        *not* applied — this is the primitive sharded scanners seek with
        (zmap shard *i* of *N* starts at ``value_at(i)`` and multiplies
        by ``g**N`` per probe).
        """
        if step < 0:
            raise IndexError("walk step must be >= 0")
        return (self.start * pow(self.generator, step, self.prime)) % self.prime

    def __getitem__(self, position: int) -> int:
        """The ``position``-th element of the output permutation.

        When ``prime == size + 1`` the walk never skips, so walk steps
        equal output positions and the lookup is one modular
        exponentiation.  Otherwise cycle-walking makes output positions
        data-dependent; a resumable cursor serves monotonically
        increasing positions in amortised O(prime / size) and restarts
        from the front on a backwards seek — still O(1) *memory*, which
        is the property streaming scans need.
        """
        if position < 0:
            position += self.size
        if not 0 <= position < self.size:
            raise IndexError(position)
        if self.prime == self.size + 1:
            return self.value_at(position) - 1
        if position < self._cursor_position:
            self._cursor_position = 0
            self._cursor_value = self.start
        value = self._cursor_value
        emitted = self._cursor_position
        while True:
            if value <= self.size:
                if emitted == position:
                    # Resume *after* this output next time.
                    self._cursor_position = emitted + 1
                    self._cursor_value = (value * self.generator) % self.prime
                    return value - 1
                emitted += 1
            value = (value * self.generator) % self.prime


def _factorize(n: int) -> set[int]:
    """Prime factors of n (trial division + Pollard rho for large cofactors)."""
    factors: set[int] = set()
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        while n % p == 0:
            factors.add(p)
            n //= p
    if n == 1:
        return factors
    stack = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if _is_probable_prime(m):
            factors.add(m)
            continue
        d = _pollard_rho(m)
        stack.append(d)
        stack.append(m // d)
    return factors


def _pollard_rho(n: int) -> int:
    if n % 2 == 0:
        return 2
    rng = random.Random(0xF00D ^ n)
    while True:
        x = rng.randrange(2, n)
        y, c, d = x, rng.randrange(1, n), 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = _gcd(abs(x - y), n)
        if d != n:
            return d


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
