"""ZMap-style address-space permutation for stateless scanning.

ZMap iterates a multiplicative cyclic group modulo a prime ``p`` slightly
larger than the target count: ``x_{i+1} = (g * x_i) mod p``.  The walk
visits every element of ``[1, p)`` exactly once in pseudo-random order with
O(1) state, which is what makes the scanner stateless and restartable while
spreading probes across networks (avoiding per-router bursts).

We reproduce that scheme for index spaces (the scanner permutes *indices*
into its target list rather than raw 128-bit addresses).
"""

from __future__ import annotations

import random
from typing import Iterator


def _is_probable_prime(n: int, *, rounds: int = 24) -> bool:
    """Miller-Rabin primality test (deterministic enough at 24 rounds)."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    rng = random.Random(0xC0FFEE ^ n)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """The smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1
    while not _is_probable_prime(candidate):
        candidate += 2
    return candidate


class CyclicPermutation:
    """A pseudo-random permutation of ``range(size)`` with O(1) state.

    Internally walks the multiplicative group mod ``p = next_prime(size+1)``
    and skips values ``> size`` ("cycle walking"), so every index in
    ``[0, size)`` appears exactly once.
    """

    def __init__(self, size: int, seed: int) -> None:
        if size <= 0:
            raise ValueError("permutation size must be positive")
        self.size = size
        self.prime = next_prime(size + 1)
        rng = random.Random(seed)
        # Any g with large multiplicative order works for scan dispersion;
        # we pick a random g in [2, p-1) and verify it is a generator by
        # factoring p-1 only for small primes, else accept (order divides
        # p-1 and is overwhelmingly large for random g).
        self.generator = self._pick_generator(rng)
        self.start = rng.randrange(1, self.prime)

    def _pick_generator(self, rng: random.Random) -> int:
        if self.prime <= 3:
            return self.prime - 1
        factors = _factorize(self.prime - 1)
        while True:
            g = rng.randrange(2, self.prime - 1)
            if all(pow(g, (self.prime - 1) // f, self.prime) != 1 for f in factors):
                return g

    def __iter__(self) -> Iterator[int]:
        value = self.start
        first = True
        while first or value != self.start:
            first = False
            if value <= self.size:
                yield value - 1
            value = (value * self.generator) % self.prime

    def __len__(self) -> int:
        return self.size


def _factorize(n: int) -> set[int]:
    """Prime factors of n (trial division + Pollard rho for large cofactors)."""
    factors: set[int] = set()
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        while n % p == 0:
            factors.add(p)
            n //= p
    if n == 1:
        return factors
    stack = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if _is_probable_prime(m):
            factors.add(m)
            continue
        d = _pollard_rho(m)
        stack.append(d)
        stack.append(m // d)
    return factors


def _pollard_rho(n: int) -> int:
    if n % 2 == 0:
        return 2
    rng = random.Random(0xF00D ^ n)
    while True:
        x = rng.randrange(2, n)
        y, c, d = x, rng.randrange(1, n), 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = _gcd(abs(x - y), n)
        if d != n:
            return d


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
