"""Random target-address generation for the random-probing baseline.

The paper's random-probing comparison (Fig. 5) draws, for each /64 subnet,
one random address with non-zero host bits — the straw-man the SRA method is
measured against.  Drawing a *random* interface identifier has an almost-zero
chance of hitting an assigned host, so replies come from routers as ICMPv6
error messages (subject to rate limiting) rather than Echo replies.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

from .ipv6 import ADDRESS_BITS, IPv6Prefix


def random_address_in(prefix: IPv6Prefix, rng: random.Random) -> int:
    """A uniformly random address inside ``prefix`` with host bits != 0."""
    span = prefix.num_addresses
    if span == 1:
        return prefix.network
    return prefix.network + rng.randrange(1, span)


def random_targets(
    subnets: Iterable[IPv6Prefix], rng: random.Random
) -> Iterator[int]:
    """One random in-subnet address per subnet (the Fig. 5 baseline)."""
    for subnet in subnets:
        yield random_address_in(subnet, rng)


def random_targets_for_sras(
    sra_addresses: Iterable[int], subnet_length: int, rng: random.Random
) -> Iterator[int]:
    """Random-probing targets for the same /``subnet_length`` subnets as
    a list of SRA addresses, enabling apples-to-apples SRA vs random runs."""
    span = 1 << (ADDRESS_BITS - subnet_length)
    for sra in sra_addresses:
        yield sra + rng.randrange(1, span)
