"""Partitioning the routable address space into SRA probing targets.

Implements the paper's three-stage construction (§3.1, Fig. 2):

* **Stage 1** — probe the SRA address of each announced prefix unchanged.
* **Stage 2** — partition every announcement into /48 subnets (all values of
  the 16-bit block following the announced prefix).  Announcements more
  specific than /48 contribute the SRA of their /48 *supernet*, unless that
  supernet is covered by another announcement.
* **Stage 3** — partition /48 announcements further into /64 subnets.

Plus the two non-BGP constructions:

* **Route(6)** — for each registered route6 prefix, up to ``k`` *random*
  /64 subnets (the paper uses k = 10 000).
* **Hitlist** — the /64 SRA of every host address on a hitlist, deduplicated.

Real-world stage 2/3 yields billions of targets; all generators stream and
accept an optional per-prefix sample budget so scaled-down experiments stay
cheap while preserving the selection semantics.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from .ipv6 import IPv6Prefix, network_of
from .sra import sra_of

STAGE2_LENGTH = 48
STAGE3_LENGTH = 64


def stage1_targets(announcements: Iterable[IPv6Prefix]) -> Iterator[int]:
    """SRA address of every announced prefix, as announced (Stage 1)."""
    seen: set[int] = set()
    for prefix in announcements:
        target = prefix.network
        if target not in seen:
            seen.add(target)
            yield target


def _covered_by_other(
    prefix: IPv6Prefix, announcements: Sequence[IPv6Prefix]
) -> bool:
    return any(other != prefix and other.covers(prefix) for other in announcements)


def stage2_targets(
    announcements: Sequence[IPv6Prefix],
    *,
    max_per_prefix: int | None = None,
    rng: random.Random | None = None,
) -> Iterator[int]:
    """SRA addresses of the /48 partition of all announcements (Stage 2).

    Announcements more specific than /48 are lifted to their /48 supernet
    unless another announcement covers that supernet (the paper found ~3 k
    such more-specifics).  With ``max_per_prefix`` set, at most that many
    /48 subnets are drawn per announcement — uniformly at random when an
    ``rng`` is given, else the first ones in address order.
    """
    seen: set[int] = set()
    for prefix in announcements:
        if prefix.length > STAGE2_LENGTH:
            supernet = prefix.supernet(STAGE2_LENGTH)
            if _covered_by_other(supernet, announcements):
                continue
            candidates: Iterable[IPv6Prefix] = (supernet,)
        else:
            candidates = _partition(prefix, STAGE2_LENGTH, max_per_prefix, rng)
        for subnet in candidates:
            if subnet.network not in seen:
                seen.add(subnet.network)
                yield subnet.network


def stage3_targets(
    announcements: Iterable[IPv6Prefix],
    *,
    max_per_prefix: int | None = None,
    rng: random.Random | None = None,
) -> Iterator[int]:
    """SRA addresses of the /64 partition of /48 announcements (Stage 3).

    Per the paper, only announcements of length exactly /48 are expanded
    (expanding everything would explode the target count), and nothing more
    specific than a /64 is generated.
    """
    seen: set[int] = set()
    for prefix in announcements:
        if prefix.length != STAGE2_LENGTH:
            continue
        for subnet in _partition(prefix, STAGE3_LENGTH, max_per_prefix, rng):
            if subnet.network not in seen:
                seen.add(subnet.network)
                yield subnet.network


def _partition(
    prefix: IPv6Prefix,
    new_length: int,
    max_per_prefix: int | None,
    rng: random.Random | None,
) -> Iterator[IPv6Prefix]:
    count = 1 << (new_length - prefix.length) if new_length > prefix.length else 1
    if max_per_prefix is None or max_per_prefix >= count:
        yield from prefix.subnets(new_length)
        return
    if rng is None:
        indices: Iterable[int] = range(max_per_prefix)
    else:
        indices = rng.sample(range(count), max_per_prefix)
    for index in indices:
        yield prefix.nth_subnet(new_length, index)


def route6_targets(
    route6_prefixes: Iterable[IPv6Prefix],
    *,
    per_prefix: int = 10_000,
    rng: random.Random,
) -> Iterator[int]:
    """Up to ``per_prefix`` random /64 SRA addresses per route6 object.

    Mirrors the paper's IRR construction: nearly half the route6 objects are
    /48s, so 10 k random /64s cover only ~15 % of each /48's 65 536 /64s —
    the sampling (not enumeration) is deliberate and load-bearing for the
    error-dominated response mix the paper reports for this input.
    """
    seen: set[int] = set()
    for prefix in route6_prefixes:
        if prefix.length > STAGE3_LENGTH:
            target = network_of(prefix.network, STAGE3_LENGTH)
            if target not in seen:
                seen.add(target)
                yield target
            continue
        count = 1 << (STAGE3_LENGTH - prefix.length)
        if count <= per_prefix:
            for subnet in prefix.subnets(STAGE3_LENGTH):
                if subnet.network not in seen:
                    seen.add(subnet.network)
                    yield subnet.network
            continue
        for index in _sample_indices(count, per_prefix, rng):
            target = prefix.nth_subnet(STAGE3_LENGTH, index).network
            if target not in seen:
                seen.add(target)
                yield target


def _sample_indices(count: int, k: int, rng: random.Random) -> Iterator[int]:
    if count <= 1 << 24:
        yield from rng.sample(range(count), k)
        return
    # Address spaces too large for random.sample's population: draw with
    # rejection; collision probability is negligible at these densities.
    chosen: set[int] = set()
    while len(chosen) < k:
        index = rng.randrange(count)
        if index not in chosen:
            chosen.add(index)
            yield index


def hitlist_targets(
    host_addresses: Iterable[int], *, subnet_length: int = STAGE3_LENGTH
) -> Iterator[int]:
    """Distinct /64 SRA addresses cut from hitlist host addresses.

    The paper turns the 2.5 B-address TUM hitlist into 700 M distinct /64
    targets this way; it is the highest-yield input because each /64 was
    observed to contain an active host at some point.
    """
    seen: set[int] = set()
    for address in host_addresses:
        target = sra_of(address, subnet_length)
        if target not in seen:
            seen.add(target)
            yield target
