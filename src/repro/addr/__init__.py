"""IPv6 address primitives: parsing, prefixes, SRA construction, partitioning."""

from .ipv6 import (
    ADDRESS_BITS,
    MAX_ADDRESS,
    AddressError,
    IPv6Prefix,
    common_prefix_length,
    format_address,
    host_bits,
    network_of,
    parse_address,
    prefix_mask,
)
from .partition import (
    STAGE2_LENGTH,
    STAGE3_LENGTH,
    hitlist_targets,
    route6_targets,
    stage1_targets,
    stage2_targets,
    stage3_targets,
)
from .permutation import CyclicPermutation, next_prime
from .randomgen import random_address_in, random_targets, random_targets_for_sras
from .sra import is_sra_candidate, sra_address, sra_of

__all__ = [
    "ADDRESS_BITS",
    "MAX_ADDRESS",
    "AddressError",
    "IPv6Prefix",
    "CyclicPermutation",
    "STAGE2_LENGTH",
    "STAGE3_LENGTH",
    "common_prefix_length",
    "format_address",
    "hitlist_targets",
    "host_bits",
    "is_sra_candidate",
    "network_of",
    "next_prime",
    "parse_address",
    "prefix_mask",
    "random_address_in",
    "random_targets",
    "random_targets_for_sras",
    "route6_targets",
    "sra_address",
    "sra_of",
    "stage1_targets",
    "stage2_targets",
    "stage3_targets",
]
