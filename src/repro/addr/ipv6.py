"""Integer-backed IPv6 address and prefix primitives.

The scanner and simulator handle millions of addresses, so the hot-path
representation is a plain ``int`` in ``[0, 2**128)``.  :class:`IPv6Prefix`
is a small immutable value object; free functions operate directly on ints
so tight loops never allocate.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Iterator

ADDRESS_BITS = 128
MAX_ADDRESS = (1 << ADDRESS_BITS) - 1

# Precomputed mask tables, one entry per prefix length 0..128.  Mask math
# sits under every LPM probe and prefix normalisation, so the hot path
# indexes these tuples instead of shifting 128-bit ints on every call.
_NETWORK_MASKS: tuple[int, ...] = tuple(
    MAX_ADDRESS ^ ((1 << (ADDRESS_BITS - length)) - 1) if length else 0
    for length in range(ADDRESS_BITS + 1)
)
_HOST_MASKS: tuple[int, ...] = tuple(
    mask ^ MAX_ADDRESS for mask in _NETWORK_MASKS
)


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def parse_address(text: str) -> int:
    """Parse an IPv6 address in any RFC 4291 textual form to an int."""
    try:
        return int(ipaddress.IPv6Address(text))
    except (ipaddress.AddressValueError, ValueError) as exc:
        raise AddressError(f"invalid IPv6 address: {text!r}") from exc


def format_address(value: int) -> str:
    """Render an int as compressed IPv6 text (RFC 5952).

    Validation is one range check; the formatting itself is direct group
    math rather than an ``ipaddress.IPv6Address`` round trip, which would
    re-validate the value a second time (and costs ~4x as much — this runs
    once per row in every CSV/JSONL export).
    """
    if not 0 <= value <= MAX_ADDRESS:
        raise AddressError(f"address out of range: {value:#x}")
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]
    # RFC 5952 §4.2: compress the leftmost longest run of >=2 zero groups.
    best_start = -1
    best_len = 1
    run_start = 0
    run_len = 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_len == 0:
                run_start = index
            run_len += 1
            if run_len > best_len:
                best_start = run_start
                best_len = run_len
        else:
            run_len = 0
    if best_start < 0:
        return ":".join(f"{group:x}" for group in groups)
    head = ":".join(f"{group:x}" for group in groups[:best_start])
    tail = ":".join(f"{group:x}" for group in groups[best_start + best_len :])
    return f"{head}::{tail}"


def prefix_mask(length: int) -> int:
    """Network mask for a prefix of ``length`` bits, as an int."""
    if not 0 <= length <= ADDRESS_BITS:
        raise AddressError(f"invalid prefix length: {length}")
    return _NETWORK_MASKS[length]


# ---------------------------------------------------------------------- #
# int-pair (hi, lo) columns
# ---------------------------------------------------------------------- #

_WORD_MASK = (1 << 64) - 1


def split_address(value: int) -> tuple[int, int]:
    """A 128-bit address as a ``(hi, lo)`` pair of 64-bit words.

    The columnar probe batches and the shared-memory shard transport
    store addresses as parallel ``array('Q')`` hi/lo columns — machine
    words instead of arbitrary-precision ints — and this is the one
    definition of that packing.
    """
    return value >> 64, value & _WORD_MASK


def join_address(hi: int, lo: int) -> int:
    """Inverse of :func:`split_address`."""
    return (hi << 64) | lo


def split_into(values, index_range, hi_out, lo_out) -> None:
    """Fill hi/lo columns from ``values`` over ``index_range``, in bulk."""
    for i in index_range:
        value = values[i]
        hi_out[i] = value >> 64
        lo_out[i] = value & _WORD_MASK


def network_of(address: int, length: int) -> int:
    """The network (lowest) address of ``address``'s ``/length`` prefix."""
    if not 0 <= length <= ADDRESS_BITS:
        raise AddressError(f"invalid prefix length: {length}")
    return address & _NETWORK_MASKS[length]


def host_bits(address: int, length: int) -> int:
    """The host part of ``address`` under a ``/length`` prefix."""
    if not 0 <= length <= ADDRESS_BITS:
        raise AddressError(f"invalid prefix length: {length}")
    return address & _HOST_MASKS[length]


@dataclass(frozen=True, slots=True, order=True)
class IPv6Prefix:
    """An IPv6 prefix (network, length) with the network bits normalised.

    Ordering is (network, length), which groups covering prefixes before
    their more specifics and keeps sorted prefix lists trie-friendly.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= ADDRESS_BITS:
            raise AddressError(f"invalid prefix length: {self.length}")
        if not 0 <= self.network <= MAX_ADDRESS:
            raise AddressError(f"network out of range: {self.network:#x}")
        if self.network & ~prefix_mask(self.length) & MAX_ADDRESS:
            raise AddressError(
                f"host bits set in {format_address(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv6Prefix":
        """Parse ``2001:db8::/32`` notation; host bits must be zero."""
        if "/" not in text:
            raise AddressError(f"missing prefix length: {text!r}")
        addr_text, _, len_text = text.partition("/")
        try:
            length = int(len_text)
        except ValueError as exc:
            raise AddressError(f"invalid prefix length: {len_text!r}") from exc
        return cls(parse_address(addr_text), length)

    @classmethod
    def of(cls, address: int, length: int) -> "IPv6Prefix":
        """Prefix of the given length containing ``address``."""
        return cls(network_of(address, length), length)

    def __str__(self) -> str:
        return f"{format_address(self.network)}/{self.length}"

    def __contains__(self, address: int) -> bool:
        return network_of(address, self.length) == self.network

    @property
    def first(self) -> int:
        """The lowest address in the prefix (== the SRA address)."""
        return self.network

    @property
    def last(self) -> int:
        """The highest address in the prefix."""
        return self.network | _HOST_MASKS[self.length]

    @property
    def num_addresses(self) -> int:
        return 1 << (ADDRESS_BITS - self.length)

    def covers(self, other: "IPv6Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        return (
            other.length >= self.length
            and network_of(other.network, self.length) == self.network
        )

    def supernet(self, length: int) -> "IPv6Prefix":
        """The covering prefix of the given (shorter or equal) length."""
        if length > self.length:
            raise AddressError(
                f"supernet length {length} more specific than /{self.length}"
            )
        return IPv6Prefix.of(self.network, length)

    def subnets(self, new_length: int) -> Iterator["IPv6Prefix"]:
        """Iterate all subnets of ``new_length`` in address order.

        Careful: a /32 has 2**16 /48 subnets and 2**32 /64 subnets; callers
        partitioning to /64 should stream, not materialise.
        """
        if new_length < self.length:
            raise AddressError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        if new_length > ADDRESS_BITS:
            raise AddressError(f"invalid prefix length: {new_length}")
        step = 1 << (ADDRESS_BITS - new_length)
        for network in range(self.network, self.last + 1, step):
            yield IPv6Prefix(network, new_length)

    def nth_subnet(self, new_length: int, index: int) -> "IPv6Prefix":
        """The ``index``-th /``new_length`` subnet without iteration."""
        if new_length < self.length:
            raise AddressError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        count = 1 << (new_length - self.length)
        if not 0 <= index < count:
            raise AddressError(f"subnet index {index} out of range (0..{count - 1})")
        step = 1 << (ADDRESS_BITS - new_length)
        return IPv6Prefix(self.network + index * step, new_length)


def common_prefix_length(a: int, b: int) -> int:
    """Length of the longest common prefix of two addresses."""
    diff = a ^ b
    if diff == 0:
        return ADDRESS_BITS
    return ADDRESS_BITS - diff.bit_length()
