"""A ZMapv6-style stateless scanner over a pluggable probe backend.

Reproduces the operational properties of the paper's modified ZMapv6:

* **stateless**: the probed target rides in the ICMPv6 payload and is
  recovered from replies (Echo) or from the quoted packet (errors) — no
  per-probe state table,
* **permuted order**: targets are visited through a cyclic-group
  permutation so probes to one network are spread over the whole scan,
* **paced**: a fixed packets-per-second budget on a virtual clock (the
  paper scans at 200 k pps; rate limiting depends on this),
* **sharded**: the permutation can be split across shards, as zmap does
  for multi-machine scans.

The scanner itself never touches a wire or an engine directly — it
drives a :class:`~repro.scanner.backends.base.ProbeBackend` (``sim``,
``wire-sim``, or the opt-in ``raw``; see :mod:`repro.scanner.backends`),
chosen by ``ScanConfig.backend``.  Everything above the backend seam —
permutation, pacing, sharding, record building, telemetry — is backend
agnostic, and the ``sim`` path is byte-identical to the pre-seam scanner
(pinned by the determinism suite and the benchmark seam gate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import islice
from typing import Callable, Iterable, Iterator, Sequence

from ..netsim.engine import (
    FLAG_LOOPED,
    FLAG_LOST,
    FLAG_REPLY,
    ProbeColumns,
    ProbeResult,
    SimulationEngine,
)
from ..telemetry.events import make_event
from ..telemetry.scan import (
    HotPathCollector,
    ScanTelemetry,
    ShardTelemetry,
    collector_events,
    populate_registry,
    record_metrics,
)
from .backends import (
    BackendSpec,
    ProbeBackend,
    ResilienceStats,
    ResilientBackend,
    RetryPolicy,
    build_backend,
    make_backend_spec,
)
from .records import ScanRecord, ScanResult
from .stream import IndexWindow, RecordSink, shard_positions, stream_buffered


@dataclass(frozen=True, slots=True)
class ScanConfig:
    """Scanner knobs; defaults mirror the paper's setup, scaled down."""

    pps: float = 50_000.0
    hop_limit: int = 64
    seed: int = 1
    # Deprecated alias for ``backend="wire-sim"``; kept so existing
    # configs and journals keep meaning the same scan.  Setting it maps
    # the default backend to "wire-sim" in __post_init__.
    wire_format: bool = False
    shard: int = 0
    shards: int = 1
    permute: bool = True
    key: bytes = b"sra-probing-key-0123456789abcdef"
    # Probes handed to the engine per probe_batch() call.  Results are
    # bit-identical for any value (1 forces the legacy per-probe path);
    # larger batches amortise per-probe Python overhead until the chunk
    # bookkeeping itself stops mattering — past ~1k there is nothing left
    # to win.  Memory cost is one ProbeResult list per batch.
    batch_size: int = 1024
    # Telemetry progress cadence: emit one `progress` event every N
    # probes (0 = none).  Snapshots land at fixed probe-count boundaries,
    # so the event stream is identical for every batch_size; it only
    # takes effect when a scan runs with telemetry capture enabled.
    progress_every: int = 0
    # Which probe backend executes the scan: "sim" (default), "wire-sim"
    # (byte-accurate wire round trip over the simulator), or "raw"
    # (raw-socket ICMPv6; never default, requires authorized=True).
    backend: str = "sim"
    # Explicit authorization for backends that probe real networks
    # (--i-am-authorized); ignored by the simulated backends.
    authorized: bool = False
    # Backend-level resilience (retry/timeout/backoff, circuit breaker,
    # quarantine): when set, the scanner wraps its backend in a
    # ResilientBackend.  Rides this config across pickle boundaries to
    # pool workers and into the checkpoint config key; None (default)
    # keeps the pre-resilience failure semantics, byte for byte.
    retry_policy: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.pps <= 0:
            raise ValueError("pps must be positive")
        if self.retry_policy is not None and not isinstance(
            self.retry_policy, RetryPolicy
        ):
            raise ValueError("retry_policy must be a RetryPolicy (or None)")
        if not 1 <= self.hop_limit <= 255:
            raise ValueError("hop_limit must be in [1, 255]")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if not 0 <= self.shard < self.shards:
            raise ValueError("shard must be in [0, shards)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.progress_every < 0:
            raise ValueError("progress_every must be >= 0")
        if self.wire_format:
            if self.backend == "sim":
                # The deprecated flag selects the backend it used to be.
                object.__setattr__(self, "backend", "wire-sim")
            elif self.backend != "wire-sim":
                raise ValueError(
                    "wire_format is a deprecated alias for "
                    f"backend='wire-sim'; it conflicts with backend="
                    f"{self.backend!r}"
                )

    def backend_spec(self) -> BackendSpec:
        """The picklable recipe for this config's backend.

        This — not a live backend — is what crosses pickle boundaries:
        sharded pool workers and checkpoint journals carry the spec and
        rebuild the backend locally, the same protocol ``StreamSpec``
        and ``WorldRef`` use.
        """
        if self.backend == "wire-sim":
            return make_backend_spec("wire-sim", key=self.key)
        if self.backend == "raw":
            return make_backend_spec(
                "raw", key=self.key, authorized=self.authorized, pps=self.pps
            )
        return make_backend_spec(self.backend)


class ZMapV6Scanner:
    """Drives a probe backend like zmap drives a NIC.

    ``engine`` may be a :class:`SimulationEngine` (wrapped in the backend
    ``config.backend`` names — the compatible default) or any
    :class:`~repro.scanner.backends.base.ProbeBackend` directly.

    Telemetry comes in two modes, both off by default and costing nothing
    on the hot path when off:

    * ``telemetry=`` — a :class:`ScanTelemetry` facade; the scanner emits
      the full event stream (``scan_started`` ... ``scan_finished``) and
      merges its metrics into the facade's registry after each scan,
    * ``capture_telemetry=True`` — raw capture only: after each scan,
      :attr:`last_capture` holds a picklable :class:`ShardTelemetry`
      (progress events, per-shard registry, first loop / suppression
      sightings) for a coordinator to merge — the sharded runner's mode.
    """

    def __init__(
        self,
        engine: SimulationEngine | ProbeBackend,
        config: ScanConfig | None = None,
        *,
        telemetry: ScanTelemetry | None = None,
        capture_telemetry: bool = False,
    ) -> None:
        self.config = config or ScanConfig()
        if isinstance(engine, ProbeBackend):
            self.backend = engine
        else:
            # Rebuild-from-spec is the same code path pool workers run,
            # so a locally-built scanner and a worker-built one agree.
            self.backend = build_backend(
                self.config.backend_spec(),
                world=engine.world,
                engine=engine,
            )
        policy = self.config.retry_policy
        if policy is not None and not isinstance(self.backend, ResilientBackend):
            self.backend = ResilientBackend(
                self.backend, policy, shard=self.config.shard
            )
        # Back-compat alias: simulated backends expose the engine they
        # wrap; wire backends have none.
        self.engine = getattr(self.backend, "engine", None)
        self.telemetry = telemetry
        self.capture_telemetry = capture_telemetry or telemetry is not None
        self.last_resilience: ResilienceStats | None = None
        self.last_capture: ShardTelemetry | None = None
        self._capture: ShardTelemetry | None = None
        self._emit: Callable[[ScanRecord], None] | None = None

    def scan(
        self,
        targets: Sequence[int] | Iterable[int],
        *,
        name: str = "scan",
        epoch: int | None = None,
        sink: RecordSink | None = None,
    ) -> ScanResult:
        """Probe every target once; returns the matched reply records.

        ``targets`` may be any sequence — a list, a
        :class:`~repro.scanner.targets.TargetList`, or a lazy
        :class:`~repro.scanner.stream.TargetStream`; non-sequence
        iterables are materialised.  With a ``sink``, matched records
        stream to it in probe order instead of buffering in
        ``result.records`` (``result.records_streamed`` counts them);
        everything else — counters, telemetry events, metrics — is
        byte-identical to the buffered path.
        """
        config = self.config
        backend = self.backend
        backend.open()
        if epoch is not None:
            backend.new_epoch(epoch)
        # Duck-typed: anything indexable with a length scans in place
        # (materialising here would defeat O(1)-memory target streams).
        if isinstance(targets, Sequence) or (
            hasattr(targets, "__getitem__") and hasattr(targets, "__len__")
        ):
            target_list = targets
        else:
            target_list = list(targets)
        result = ScanResult(name=name, epoch=backend.epoch)
        unmatched_before = backend.unmatched_replies
        resilience_before = (
            backend.resilience.copy()
            if isinstance(backend, ResilientBackend)
            else None
        )
        capture: ShardTelemetry | None = None
        collector: HotPathCollector | None = None
        if self.capture_telemetry:
            capture = ShardTelemetry()
            collector = HotPathCollector()
            if self.telemetry is not None:
                self.telemetry.scan_started(
                    scan=name,
                    epoch=result.epoch,
                    targets=len(target_list),
                    shards=config.shards,
                    pps=config.pps,
                )
                self.telemetry.backend_selected(
                    scan=name, epoch=result.epoch, backend=backend.name
                )
        self._capture = capture
        self._emit = self._record_emitter(result, sink, capture)
        if collector is not None:
            backend.telemetry = collector
        try:
            if config.batch_size == 1:
                sent, last_position = self._scan_single(target_list, result)
            elif backend.supports_columns:
                sent, last_position = self._scan_batched(target_list, result)
            else:
                sent, last_position = self._scan_batches(target_list, result)
        finally:
            if collector is not None:
                backend.telemetry = None
            self._capture = None
            self._emit = None
        result.sent = sent
        result.duration = (last_position + 1) / config.pps if sent else 0.0
        result.engine_stats = replace(backend.stats)
        result.unmatched_replies = backend.unmatched_replies - unmatched_before
        if resilience_before is not None:
            delta = backend.resilience.since(resilience_before)
            result.faulted_probes = delta.faulted_probes
            self.last_resilience = delta
        else:
            self.last_resilience = None
        if capture is not None and collector is not None:
            capture.first_loop = dict(collector.first_loop)
            capture.first_suppressed = dict(collector.first_suppressed)
            # A streaming sink already observed its records incrementally;
            # fold in the engine-stat counters only (records=()).
            populate_registry(
                capture.registry,
                result,
                records=() if sink is not None else None,
            )
            self.last_capture = capture
            if self.telemetry is not None:
                body = list(capture.events)
                body.extend(
                    collector_events(
                        scan=name,
                        epoch=result.epoch,
                        first_loop=capture.first_loop,
                        first_suppressed=capture.first_suppressed,
                    )
                )
                self.telemetry.emit_sorted(body)
                self.telemetry.merge_registry(capture.registry)
                self.telemetry.scan_finished(
                    scan=name,
                    epoch=result.epoch,
                    result=result,
                    targets_buffered=stream_buffered(target_list),
                )
                self.telemetry.unmatched_replies_recorded(
                    scan=name,
                    epoch=result.epoch,
                    backend=backend.name,
                    count=result.unmatched_replies,
                )
                self.telemetry.backend_resilience_recorded(
                    scan=name,
                    epoch=result.epoch,
                    shard=config.shard,
                    stats=self.last_resilience,
                )
                for message in backend.pop_warnings():
                    self.telemetry.backend_warning_recorded(
                        scan=name,
                        epoch=result.epoch,
                        backend=backend.name,
                        message=message,
                    )
        return result

    def _record_emitter(
        self,
        result: ScanResult,
        sink: RecordSink | None,
        capture: ShardTelemetry | None,
    ) -> Callable[[ScanRecord], None]:
        """The per-record hot-path call: buffer, or stream-and-observe.

        Without a sink this is literally ``result.records.append`` — the
        buffered path pays nothing for the streaming machinery.  With a
        sink, each record is forwarded and (when telemetry is on) the
        record-derived metrics are observed incrementally, producing the
        exact registry :func:`populate_registry` would build at scan end.
        """
        if sink is None:
            return result.records.append
        sink_emit = sink.emit
        metrics = record_metrics(capture.registry) if capture is not None else None

        def emit(record: ScanRecord) -> None:
            sink_emit(record)
            result.records_streamed += 1
            if metrics is not None:
                record_counter, flood, vtimes, amplification = metrics
                record_counter.inc()
                flood.inc(record.count - 1)
                vtimes.observe(record.time)
                amplification.observe(record.count)

        return emit

    def _scan_single(
        self, target_list: Sequence[int], result: ScanResult
    ) -> tuple[int, int]:
        """Per-probe scan loop: column-less backends and ``batch_size=1``."""
        config = self.config
        backend = self.backend
        probe = backend.probe
        capture = self._capture
        emit = self._emit
        every = config.progress_every if capture is not None else 0
        epoch_bits = backend.epoch << 32
        hop_limit = config.hop_limit
        sent = 0
        last_position = -1
        for position, index in self._probe_positions(len(target_list)):
            target = target_list[index]
            # Pace on the *global* permutation position, not the shard-local
            # send counter: every shard of a multi-shard scan then shares one
            # virtual clock, exactly as zmap's multi-machine shards share
            # wall-clock time — and a sharded run becomes time-identical to
            # the serial run of the same seed/epoch.
            time = position / config.pps
            probe_id = epoch_bits | index
            outcome = probe(target, time, hop_limit=hop_limit, probe_id=probe_id)
            sent += 1
            last_position = position
            if outcome.looped:
                result.loops_observed += 1
            if outcome.lost:
                result.lost += 1
            else:
                for reply in outcome.replies:
                    emit(
                        ScanRecord(
                            target=target,
                            source=reply.source,
                            icmp_type=int(reply.icmp_type),
                            code=reply.code,
                            count=reply.count,
                            time=time,
                        )
                    )
            if every and sent % every == 0:
                capture.events.append(
                    make_event(
                        "progress",
                        scan=result.name,
                        epoch=result.epoch,
                        vtime=time,
                        shard=config.shard,
                        sent=sent,
                        records=result.received,
                        lost=result.lost,
                        loops=result.loops_observed,
                    )
                )
        return sent, last_position

    def _scan_batches(
        self, target_list: Sequence[int], result: ScanResult
    ) -> tuple[int, int]:
        """Chunked scan loop over ``send_batch`` for column-less backends.

        The probe sequence, record order, and telemetry events are
        byte-identical to :meth:`_scan_single` — outcomes are processed
        probe by probe in chunk order — but sends reach the backend in
        ``batch_size`` groups, which is what lets the raw backend pace a
        whole batch and pay its receive linger once per batch instead of
        once per probe.
        """
        config = self.config
        backend = self.backend
        send_batch = backend.send_batch
        capture = self._capture
        emit = self._emit
        every = config.progress_every if capture is not None else 0
        epoch_bits = backend.epoch << 32
        hop_limit = config.hop_limit
        pps = config.pps
        sent = 0
        last_position = -1
        positions = self._probe_positions(len(target_list))
        while True:
            chunk = list(islice(positions, config.batch_size))
            if not chunk:
                break
            batch_targets = [target_list[index] for _, index in chunk]
            batch_times = [position / pps for position, _ in chunk]
            batch_ids = [epoch_bits | index for _, index in chunk]
            outcomes = send_batch(
                batch_targets,
                batch_times,
                hop_limit=hop_limit,
                probe_ids=batch_ids,
            )
            last_position = chunk[-1][0]
            for offset, outcome in enumerate(outcomes):
                sent += 1
                if outcome.looped:
                    result.loops_observed += 1
                if outcome.lost:
                    result.lost += 1
                else:
                    for reply in outcome.replies:
                        emit(
                            ScanRecord(
                                target=batch_targets[offset],
                                source=reply.source,
                                icmp_type=int(reply.icmp_type),
                                code=reply.code,
                                count=reply.count,
                                time=batch_times[offset],
                            )
                        )
                if every and sent % every == 0:
                    capture.events.append(
                        make_event(
                            "progress",
                            scan=result.name,
                            epoch=result.epoch,
                            vtime=batch_times[offset],
                            shard=config.shard,
                            sent=sent,
                            records=result.received,
                            lost=result.lost,
                            loops=result.loops_observed,
                        )
                    )
        return sent, last_position

    def _scan_batched(
        self, target_list: Sequence[int], result: ScanResult
    ) -> tuple[int, int]:
        """Chunked scan loop over the backend's columnar kernel.

        Same probe order, times, and ids as :meth:`_scan_single` — the
        chunking is invisible in the results (the determinism regression
        tests pin this).  Each batch reuses one :class:`ProbeColumns`
        buffer; :class:`ScanRecord` rows are built straight from the
        packed columns, so the per-probe dataclasses never exist here.
        """
        config = self.config
        backend = self.backend
        pps = config.pps
        hop_limit = config.hop_limit
        epoch_bits = backend.epoch << 32
        probe_columns = backend.probe_columns
        append_record = self._emit
        capture = self._capture
        every = config.progress_every if capture is not None else 0
        progress = (0, 0, 0, 0)
        sent = 0
        last_position = -1
        loops_observed = 0
        probes_lost = 0
        flag_looped = FLAG_LOOPED
        flag_reply = FLAG_REPLY
        cols = ProbeColumns()
        need_ids = backend.needs_probe_ids
        positions = self._probe_positions(len(target_list))
        while True:
            chunk = list(islice(positions, config.batch_size))
            if not chunk:
                break
            batch_targets = [target_list[index] for _, index in chunk]
            batch_times = [position / pps for position, _ in chunk]
            batch_ids = (
                [epoch_bits | index for _, index in chunk] if need_ids else None
            )
            probe_columns(
                batch_targets,
                batch_times,
                hop_limit=hop_limit,
                probe_ids=batch_ids,
                out=cols,
            )
            sent += len(chunk)
            last_position = chunk[-1][0]
            flags = cols.flags
            source_hi = cols.source_hi
            source_lo = cols.source_lo
            icmp_col = cols.icmp_type
            code_col = cols.code
            count_col = cols.count
            for offset in range(len(chunk)):
                f = flags[offset]
                if not f:  # probed, no reply — the common quiet row
                    continue
                if f & flag_reply:
                    if f & flag_looped:
                        loops_observed += 1
                    append_record(
                        ScanRecord(
                            target=batch_targets[offset],
                            source=(source_hi[offset] << 64) | source_lo[offset],
                            icmp_type=icmp_col[offset],
                            code=code_col[offset],
                            count=count_col[offset],
                            time=batch_times[offset],
                        )
                    )
                elif f & flag_looped:
                    loops_observed += 1
                else:  # FLAG_LOST
                    probes_lost += 1
            if every:
                progress = self._capture_batch_progress(
                    capture, result, cols, batch_times, every, progress
                )
        result.loops_observed += loops_observed
        result.lost += probes_lost
        return sent, last_position

    def _capture_batch_progress(
        self,
        capture: ShardTelemetry,
        result: ScanResult,
        cols: ProbeColumns,
        batch_times: Sequence[float],
        every: int,
        progress: tuple[int, int, int, int],
    ) -> tuple[int, int, int, int]:
        """Emit the ``progress`` events a batch crosses.

        A second pass over the batch's flag column, run only when
        telemetry is on, so the record-building hot loop above stays
        untouched.  It reconstructs the cumulative counters probe by
        probe (every reply row becomes exactly one record), which makes
        the progress stream byte-identical to the per-probe path's for
        any ``batch_size``.
        """
        shard = self.config.shard
        sent, n_records, lost, loops = progress
        flags = cols.flags
        for offset in range(cols.n):
            f = flags[offset]
            sent += 1
            if f & FLAG_LOOPED:
                loops += 1
            if f & FLAG_LOST:
                lost += 1
            elif f & FLAG_REPLY:
                n_records += 1
            if sent % every == 0:
                capture.events.append(
                    make_event(
                        "progress",
                        scan=result.name,
                        epoch=result.epoch,
                        vtime=batch_times[offset],
                        shard=shard,
                        sent=sent,
                        records=n_records,
                        lost=lost,
                        loops=loops,
                    )
                )
        return sent, n_records, lost, loops

    def _probe_order(self, size: int) -> Iterable[int]:
        """The target indices this shard visits, in probe order."""
        return (index for _, index in self._probe_positions(size))

    def _probe_positions(self, size: int) -> Iterator[tuple[int, int]]:
        """Yield ``(global_position, target_index)`` for this shard.

        Delegates to :func:`repro.scanner.stream.shard_positions`, the
        shared definition of the permuted visit order and its shard
        windows (pairwise disjoint; position-ordered union == serial).
        """
        config = self.config
        return shard_positions(
            size,
            seed=config.seed,
            epoch=self.backend.epoch,
            window=IndexWindow(config.shard, config.shards),
            permute=config.permute,
        )

    def _send_probe(self, target: int, time: float, probe_id: int) -> ProbeResult:
        """Back-compat shim for callers that drove one probe at a time."""
        return self.backend.probe(
            target, time, hop_limit=self.config.hop_limit, probe_id=probe_id
        )
