"""A ZMapv6-style stateless scanner over the simulation engine.

Reproduces the operational properties of the paper's modified ZMapv6:

* **stateless**: the probed target rides in the ICMPv6 payload and is
  recovered from replies (Echo) or from the quoted packet (errors) — no
  per-probe state table,
* **permuted order**: targets are visited through a cyclic-group
  permutation so probes to one network are spread over the whole scan,
* **paced**: a fixed packets-per-second budget on a virtual clock (the
  paper scans at 200 k pps; rate limiting depends on this),
* **sharded**: the permutation can be split across shards, as zmap does
  for multi-machine scans.

With ``wire_format=True`` every probe and reply is round-tripped through
the byte-accurate packet codecs — slower, but it proves the matching
actually works on the wire format; large campaigns keep it off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import islice
from typing import Callable, Iterable, Iterator, Sequence

from ..netsim.engine import (
    FLAG_LOOPED,
    FLAG_LOST,
    FLAG_REPLY,
    ProbeColumns,
    ProbeResult,
    SimulationEngine,
)
from ..packet.icmpv6 import (
    ICMPv6Message,
    ICMPv6Type,
    echo_reply_for,
    error_message,
)
from ..packet.ipv6hdr import HEADER_LENGTH, IPv6Header
from ..packet.probe import build_probe_packet, extract_probe
from ..telemetry.events import make_event
from ..telemetry.scan import (
    HotPathCollector,
    ScanTelemetry,
    ShardTelemetry,
    collector_events,
    populate_registry,
    record_metrics,
)
from .records import ScanRecord, ScanResult
from .stream import IndexWindow, RecordSink, shard_positions, stream_buffered


@dataclass(frozen=True, slots=True)
class ScanConfig:
    """Scanner knobs; defaults mirror the paper's setup, scaled down."""

    pps: float = 50_000.0
    hop_limit: int = 64
    seed: int = 1
    wire_format: bool = False
    shard: int = 0
    shards: int = 1
    permute: bool = True
    key: bytes = b"sra-probing-key-0123456789abcdef"
    # Probes handed to the engine per probe_batch() call.  Results are
    # bit-identical for any value (1 forces the legacy per-probe path);
    # larger batches amortise per-probe Python overhead until the chunk
    # bookkeeping itself stops mattering — past ~1k there is nothing left
    # to win.  Memory cost is one ProbeResult list per batch.
    batch_size: int = 1024
    # Telemetry progress cadence: emit one `progress` event every N
    # probes (0 = none).  Snapshots land at fixed probe-count boundaries,
    # so the event stream is identical for every batch_size; it only
    # takes effect when a scan runs with telemetry capture enabled.
    progress_every: int = 0

    def __post_init__(self) -> None:
        if self.pps <= 0:
            raise ValueError("pps must be positive")
        if not 1 <= self.hop_limit <= 255:
            raise ValueError("hop_limit must be in [1, 255]")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if not 0 <= self.shard < self.shards:
            raise ValueError("shard must be in [0, shards)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.progress_every < 0:
            raise ValueError("progress_every must be >= 0")


class ZMapV6Scanner:
    """Drives the engine like zmap drives a NIC.

    Telemetry comes in two modes, both off by default and costing nothing
    on the hot path when off:

    * ``telemetry=`` — a :class:`ScanTelemetry` facade; the scanner emits
      the full event stream (``scan_started`` ... ``scan_finished``) and
      merges its metrics into the facade's registry after each scan,
    * ``capture_telemetry=True`` — raw capture only: after each scan,
      :attr:`last_capture` holds a picklable :class:`ShardTelemetry`
      (progress events, per-shard registry, first loop / suppression
      sightings) for a coordinator to merge — the sharded runner's mode.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        config: ScanConfig | None = None,
        *,
        telemetry: ScanTelemetry | None = None,
        capture_telemetry: bool = False,
    ) -> None:
        self.engine = engine
        self.config = config or ScanConfig()
        self.telemetry = telemetry
        self.capture_telemetry = capture_telemetry or telemetry is not None
        self.last_capture: ShardTelemetry | None = None
        self._capture: ShardTelemetry | None = None
        self._emit: Callable[[ScanRecord], None] | None = None

    def scan(
        self,
        targets: Sequence[int] | Iterable[int],
        *,
        name: str = "scan",
        epoch: int | None = None,
        sink: RecordSink | None = None,
    ) -> ScanResult:
        """Probe every target once; returns the matched reply records.

        ``targets`` may be any sequence — a list, a
        :class:`~repro.scanner.targets.TargetList`, or a lazy
        :class:`~repro.scanner.stream.TargetStream`; non-sequence
        iterables are materialised.  With a ``sink``, matched records
        stream to it in probe order instead of buffering in
        ``result.records`` (``result.records_streamed`` counts them);
        everything else — counters, telemetry events, metrics — is
        byte-identical to the buffered path.
        """
        config = self.config
        if epoch is not None:
            self.engine.new_epoch(epoch)
        # Duck-typed: anything indexable with a length scans in place
        # (materialising here would defeat O(1)-memory target streams).
        if isinstance(targets, Sequence) or (
            hasattr(targets, "__getitem__") and hasattr(targets, "__len__")
        ):
            target_list = targets
        else:
            target_list = list(targets)
        result = ScanResult(name=name, epoch=self.engine.epoch)
        capture: ShardTelemetry | None = None
        collector: HotPathCollector | None = None
        if self.capture_telemetry:
            capture = ShardTelemetry()
            collector = HotPathCollector()
            if self.telemetry is not None:
                self.telemetry.scan_started(
                    scan=name,
                    epoch=result.epoch,
                    targets=len(target_list),
                    shards=config.shards,
                    pps=config.pps,
                )
        self._capture = capture
        self._emit = self._record_emitter(result, sink, capture)
        if collector is not None:
            self.engine.telemetry = collector
        try:
            if config.wire_format or config.batch_size == 1:
                sent, last_position = self._scan_single(target_list, result)
            else:
                sent, last_position = self._scan_batched(target_list, result)
        finally:
            if collector is not None:
                self.engine.telemetry = None
            self._capture = None
            self._emit = None
        result.sent = sent
        result.duration = (last_position + 1) / config.pps if sent else 0.0
        result.engine_stats = replace(self.engine.stats)
        if capture is not None and collector is not None:
            capture.first_loop = dict(collector.first_loop)
            capture.first_suppressed = dict(collector.first_suppressed)
            # A streaming sink already observed its records incrementally;
            # fold in the engine-stat counters only (records=()).
            populate_registry(
                capture.registry,
                result,
                records=() if sink is not None else None,
            )
            self.last_capture = capture
            if self.telemetry is not None:
                body = list(capture.events)
                body.extend(
                    collector_events(
                        scan=name,
                        epoch=result.epoch,
                        first_loop=capture.first_loop,
                        first_suppressed=capture.first_suppressed,
                    )
                )
                self.telemetry.emit_sorted(body)
                self.telemetry.merge_registry(capture.registry)
                self.telemetry.scan_finished(
                    scan=name,
                    epoch=result.epoch,
                    result=result,
                    targets_buffered=stream_buffered(target_list),
                )
        return result

    def _record_emitter(
        self,
        result: ScanResult,
        sink: RecordSink | None,
        capture: ShardTelemetry | None,
    ) -> Callable[[ScanRecord], None]:
        """The per-record hot-path call: buffer, or stream-and-observe.

        Without a sink this is literally ``result.records.append`` — the
        buffered path pays nothing for the streaming machinery.  With a
        sink, each record is forwarded and (when telemetry is on) the
        record-derived metrics are observed incrementally, producing the
        exact registry :func:`populate_registry` would build at scan end.
        """
        if sink is None:
            return result.records.append
        sink_emit = sink.emit
        metrics = record_metrics(capture.registry) if capture is not None else None

        def emit(record: ScanRecord) -> None:
            sink_emit(record)
            result.records_streamed += 1
            if metrics is not None:
                record_counter, flood, vtimes, amplification = metrics
                record_counter.inc()
                flood.inc(record.count - 1)
                vtimes.observe(record.time)
                amplification.observe(record.count)

        return emit

    def _scan_single(
        self, target_list: Sequence[int], result: ScanResult
    ) -> tuple[int, int]:
        """Per-probe scan loop: wire-format mode and ``batch_size=1``."""
        config = self.config
        capture = self._capture
        emit = self._emit
        every = config.progress_every if capture is not None else 0
        sent = 0
        last_position = -1
        for position, index in self._probe_positions(len(target_list)):
            target = target_list[index]
            # Pace on the *global* permutation position, not the shard-local
            # send counter: every shard of a multi-shard scan then shares one
            # virtual clock, exactly as zmap's multi-machine shards share
            # wall-clock time — and a sharded run becomes time-identical to
            # the serial run of the same seed/epoch.
            time = position / config.pps
            probe_id = (self.engine.epoch << 32) | index
            outcome = self._send_probe(target, time, probe_id)
            sent += 1
            last_position = position
            if outcome.looped:
                result.loops_observed += 1
            if outcome.lost:
                result.lost += 1
            else:
                for reply in outcome.replies:
                    emit(
                        ScanRecord(
                            target=target,
                            source=reply.source,
                            icmp_type=int(reply.icmp_type),
                            code=reply.code,
                            count=reply.count,
                            time=time,
                        )
                    )
            if every and sent % every == 0:
                capture.events.append(
                    make_event(
                        "progress",
                        scan=result.name,
                        epoch=result.epoch,
                        vtime=time,
                        shard=config.shard,
                        sent=sent,
                        records=result.received,
                        lost=result.lost,
                        loops=result.loops_observed,
                    )
                )
        return sent, last_position

    def _scan_batched(
        self, target_list: Sequence[int], result: ScanResult
    ) -> tuple[int, int]:
        """Chunked scan loop over :meth:`SimulationEngine.probe_columns`.

        Same probe order, times, and ids as :meth:`_scan_single` — the
        chunking is invisible in the results (the determinism regression
        tests pin this).  Each batch reuses one :class:`ProbeColumns`
        buffer; :class:`ScanRecord` rows are built straight from the
        packed columns, so the per-probe dataclasses never exist here.
        """
        config = self.config
        pps = config.pps
        hop_limit = config.hop_limit
        epoch_bits = self.engine.epoch << 32
        probe_columns = self.engine.probe_columns
        append_record = self._emit
        capture = self._capture
        every = config.progress_every if capture is not None else 0
        progress = (0, 0, 0, 0)
        sent = 0
        last_position = -1
        loops_observed = 0
        probes_lost = 0
        flag_looped = FLAG_LOOPED
        flag_reply = FLAG_REPLY
        cols = ProbeColumns()
        # probe_ids exist only to decorrelate the loss draw; with loss off
        # the engine never reads them, so skip building the column.
        need_ids = self.engine.world.packet_loss > 0.0
        positions = self._probe_positions(len(target_list))
        while True:
            chunk = list(islice(positions, config.batch_size))
            if not chunk:
                break
            batch_targets = [target_list[index] for _, index in chunk]
            batch_times = [position / pps for position, _ in chunk]
            batch_ids = (
                [epoch_bits | index for _, index in chunk] if need_ids else None
            )
            probe_columns(
                batch_targets,
                batch_times,
                hop_limit=hop_limit,
                probe_ids=batch_ids,
                out=cols,
            )
            sent += len(chunk)
            last_position = chunk[-1][0]
            flags = cols.flags
            source_hi = cols.source_hi
            source_lo = cols.source_lo
            icmp_col = cols.icmp_type
            code_col = cols.code
            count_col = cols.count
            for offset in range(len(chunk)):
                f = flags[offset]
                if not f:  # probed, no reply — the common quiet row
                    continue
                if f & flag_reply:
                    if f & flag_looped:
                        loops_observed += 1
                    append_record(
                        ScanRecord(
                            target=batch_targets[offset],
                            source=(source_hi[offset] << 64) | source_lo[offset],
                            icmp_type=icmp_col[offset],
                            code=code_col[offset],
                            count=count_col[offset],
                            time=batch_times[offset],
                        )
                    )
                elif f & flag_looped:
                    loops_observed += 1
                else:  # FLAG_LOST
                    probes_lost += 1
            if every:
                progress = self._capture_batch_progress(
                    capture, result, cols, batch_times, every, progress
                )
        result.loops_observed += loops_observed
        result.lost += probes_lost
        return sent, last_position

    def _capture_batch_progress(
        self,
        capture: ShardTelemetry,
        result: ScanResult,
        cols: ProbeColumns,
        batch_times: Sequence[float],
        every: int,
        progress: tuple[int, int, int, int],
    ) -> tuple[int, int, int, int]:
        """Emit the ``progress`` events a batch crosses.

        A second pass over the batch's flag column, run only when
        telemetry is on, so the record-building hot loop above stays
        untouched.  It reconstructs the cumulative counters probe by
        probe (every reply row becomes exactly one record), which makes
        the progress stream byte-identical to the per-probe path's for
        any ``batch_size``.
        """
        shard = self.config.shard
        sent, n_records, lost, loops = progress
        flags = cols.flags
        for offset in range(cols.n):
            f = flags[offset]
            sent += 1
            if f & FLAG_LOOPED:
                loops += 1
            if f & FLAG_LOST:
                lost += 1
            elif f & FLAG_REPLY:
                n_records += 1
            if sent % every == 0:
                capture.events.append(
                    make_event(
                        "progress",
                        scan=result.name,
                        epoch=result.epoch,
                        vtime=batch_times[offset],
                        shard=shard,
                        sent=sent,
                        records=n_records,
                        lost=lost,
                        loops=loops,
                    )
                )
        return sent, n_records, lost, loops

    def _probe_order(self, size: int) -> Iterable[int]:
        """The target indices this shard visits, in probe order."""
        return (index for _, index in self._probe_positions(size))

    def _probe_positions(self, size: int) -> Iterator[tuple[int, int]]:
        """Yield ``(global_position, target_index)`` for this shard.

        Delegates to :func:`repro.scanner.stream.shard_positions`, the
        shared definition of the permuted visit order and its shard
        windows (pairwise disjoint; position-ordered union == serial).
        """
        config = self.config
        return shard_positions(
            size,
            seed=config.seed,
            epoch=self.engine.epoch,
            window=IndexWindow(config.shard, config.shards),
            permute=config.permute,
        )

    def _send_probe(self, target: int, time: float, probe_id: int) -> ProbeResult:
        config = self.config
        if not config.wire_format:
            return self.engine.probe(
                target, time, hop_limit=config.hop_limit, probe_id=probe_id
            )
        return self._send_probe_wire(target, time, probe_id)

    def _send_probe_wire(self, target: int, time: float, probe_id: int) -> ProbeResult:
        """Full wire-format round trip: encode the probe, decode it, probe
        the engine, synthesise reply bytes, and re-match via the payload."""
        config = self.config
        vantage = self.engine.world.vantage
        assert vantage is not None
        wire = build_probe_packet(
            src=vantage.address,
            target=target,
            probe_id=probe_id,
            key=config.key,
            hop_limit=config.hop_limit,
            identifier=probe_id & 0xFFFF,
            sequence=(probe_id >> 16) & 0xFFFF,
        )
        header = IPv6Header.decode(wire)
        request = ICMPv6Message.decode(
            wire[HEADER_LENGTH:], src=header.src, dst=header.dst
        )
        outcome = self.engine.probe(
            header.dst, time, hop_limit=header.hop_limit, probe_id=probe_id
        )
        matched = []
        for reply in outcome.replies:
            if reply.icmp_type is ICMPv6Type.ECHO_REPLY:
                message = echo_reply_for(request)
            else:
                message = error_message(reply.icmp_type, reply.code, wire)
            # Receive path: decode bytes, then recover the probed target.
            raw = message.encode(reply.source, vantage.address)
            decoded = ICMPv6Message.decode(
                raw, src=reply.source, dst=vantage.address
            )
            extraction = extract_probe(decoded, config.key)
            if extraction is None:
                continue  # unmatched traffic; zmap drops it
            payload, original_target = extraction
            if payload.probe_id != probe_id or original_target != target:
                continue
            matched.append(reply)
        if len(matched) == len(outcome.replies):
            return outcome
        return ProbeResult(
            target=outcome.target,
            time=outcome.time,
            epoch=outcome.epoch,
            replies=tuple(matched),
            lost=outcome.lost,
            looped=outcome.looped,
            amplification=outcome.amplification,
            transit_hops=outcome.transit_hops,
        )
