"""Streaming targets and record sinks: the constant-memory scan pipeline.

The paper's operational pipeline is a Go address generator *streaming*
targets into a stateless ZMapv6 — neither side ever holds the 28.2 B
target list in memory.  This module gives the reproduction the same
shape:

* :class:`TargetStream` — a named, length-known, index-seekable,
  provenance-carrying sequence of probe targets.  Implementations range
  from a thin list wrapper (:class:`ListStream`) through lazily-realised
  generator output (:class:`LazyStream`) to fully *computable* streams
  (:class:`SubnetPartitionStream`) whose ``stream[i]`` is pure
  arithmetic and whose memory footprint is O(1) in target count.
* :class:`StreamSpec` — a picklable recipe for rebuilding a stream from
  a :class:`~repro.topology.entities.World`.  Sharded scans ship
  ``(spec, index window)`` to pool workers instead of pickled target
  lists, so worker memory stays O(1) in target count too.
* :class:`RecordSink` — where matched reply records go.  The in-memory
  sink preserves today's :class:`~repro.scanner.records.ScanResult`
  semantics; the JSONL/CSV sinks write rows as they are matched (byte
  identical to ``ScanResult.write_jsonl``/``write_csv`` output); the
  counting sink keeps aggregates only.
* :func:`shard_positions` — the single source of truth for the
  zmap-style permuted visit order and its shard windows, shared by the
  serial scanner and the sharded runner.

Determinism contract: a stream yields exactly the same target sequence
as the materialised list it replaces, and sinks receive records in probe
order, so streamed scans are byte-identical to the list path.
"""

from __future__ import annotations

import importlib
from abc import abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, NamedTuple

from ..addr.ipv6 import ADDRESS_BITS, IPv6Prefix
from ..addr.permutation import CyclicPermutation
from ..atomicio import partial_path, replace_partial
from .records import ScanRecord, record_csv_row, record_jsonl_line

if TYPE_CHECKING:  # specs rebuild streams from a world; ducks otherwise
    from ..topology.entities import World

__all__ = [
    "CountingSink",
    "CsvSink",
    "IndexWindow",
    "JsonlSink",
    "LazyStream",
    "ListStream",
    "MemorySink",
    "PermutedStream",
    "RecordSink",
    "StreamSpec",
    "SubnetPartitionStream",
    "TargetStream",
    "as_stream",
    "build_stream",
    "register_stream_builder",
    "shard_positions",
    "stream_buffered",
]


# --------------------------------------------------------------------- #
# permuted visit order and shard windows
# --------------------------------------------------------------------- #


class IndexWindow(NamedTuple):
    """One shard's slice of the permuted visit order.

    Shard ``shard`` of ``shards`` takes every ``shards``-th slot of the
    global probe order starting at slot ``shard`` — zmap's sharding rule.
    Windows are pairwise disjoint and their position-ordered union is
    exactly the serial order (pinned by a hypothesis property test).
    """

    shard: int = 0
    shards: int = 1


def shard_positions(
    size: int,
    *,
    seed: int,
    epoch: int = 0,
    window: IndexWindow = IndexWindow(),
    permute: bool = True,
) -> Iterator[tuple[int, int]]:
    """Yield ``(global_position, target_index)`` for one shard window.

    The global position is the probe's slot in the full (serial) visit
    order; pacing on it gives every shard of a multi-shard scan the same
    virtual clock as the serial scan.  This generator is O(1) in memory:
    the permutation walks a cyclic group, never a materialised list.
    """
    shard, shards = window
    if not 0 <= shard < shards:
        raise ValueError("window shard must be in [0, shards)")
    if size == 0:
        return
    if not permute:
        for index in range(shard, size, shards):
            yield index, index
        return
    permutation = CyclicPermutation(size, seed=seed ^ epoch)
    if shards == 1:
        yield from enumerate(permutation)
        return
    for position, index in enumerate(permutation):
        if position % shards == shard:
            yield position, index


# --------------------------------------------------------------------- #
# stream specs: picklable provenance, rebuildable against a world
# --------------------------------------------------------------------- #

_STREAM_BUILDERS: dict[str, Callable[..., "TargetStream"]] = {}


@dataclass(frozen=True)
class StreamSpec:
    """A picklable recipe: which registered builder recreates the stream.

    ``module`` is imported before lookup so pool workers that never
    imported the registering module (e.g. ``repro.core.survey``) still
    resolve the builder.  ``kwargs`` is a tuple of ``(key, value)``
    pairs, keeping the spec hashable and pickle-stable.
    """

    builder: str
    module: str
    kwargs: tuple[tuple[str, object], ...] = ()

    def arguments(self) -> dict[str, object]:
        return dict(self.kwargs)


def register_stream_builder(
    name: str, fn: Callable[..., "TargetStream"]
) -> Callable[..., "TargetStream"]:
    """Register ``fn(world, **kwargs) -> TargetStream`` under ``name``."""
    _STREAM_BUILDERS[name] = fn
    return fn


def make_spec(builder: str, module: str, **kwargs) -> StreamSpec:
    return StreamSpec(
        builder=builder, module=module, kwargs=tuple(sorted(kwargs.items()))
    )


def build_stream(spec: StreamSpec, world: "World") -> "TargetStream":
    """Rebuild the stream a spec describes against a world."""
    if spec.builder not in _STREAM_BUILDERS:
        importlib.import_module(spec.module)
    try:
        builder = _STREAM_BUILDERS[spec.builder]
    except KeyError:
        raise ValueError(
            f"no stream builder registered as {spec.builder!r}"
        ) from None
    return builder(world, **spec.arguments())


# --------------------------------------------------------------------- #
# target streams
# --------------------------------------------------------------------- #


class TargetStream(Sequence):
    """A named, ordered sequence of probe targets (ints).

    Subclasses provide ``__len__`` and ``__getitem__``; the ``Sequence``
    mixins supply iteration and membership.  Being a ``Sequence`` means
    every existing scan entry point accepts a stream wherever it accepts
    a target list — the refactor's compatibility contract.

    ``buffered`` reports how many target values the stream currently
    holds in memory (the telemetry ``targets_buffered`` gauge); fully
    computable streams report 0.  ``spec()`` returns a picklable rebuild
    recipe when the stream has one, letting sharded scans ship the spec
    instead of the data.

    Slice contract (uniform across every implementation, pinned by the
    strategy contract suite): ``stream[i:j:k]`` returns a plain
    ``list[int]`` equal to ``list(stream)[i:j:k]``, and negative integer
    indices count from the end.  Implementations route slices through
    :meth:`_slice` unless the backing container already obeys this.
    """

    name: str = "targets"
    subnet_length: int | None = None

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __getitem__(self, index):  # pragma: no cover - signature only
        ...

    def _slice(self, index: slice) -> list[int]:
        """Uniform slice semantics: a plain list of the selected targets."""
        return [self[i] for i in range(*index.indices(len(self)))]

    @property
    def buffered(self) -> int:
        """Target values currently resident in memory."""
        return len(self)

    def spec(self) -> StreamSpec | None:
        """Picklable provenance, or None when the stream is data-only."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, n={len(self)})"


class ListStream(TargetStream):
    """A stream over an already-materialised target list."""

    __slots__ = ("name", "subnet_length", "targets", "_spec")

    def __init__(
        self,
        targets: Sequence[int],
        *,
        name: str = "targets",
        subnet_length: int | None = None,
        spec: StreamSpec | None = None,
    ) -> None:
        self.targets = targets
        self.name = name
        self.subnet_length = subnet_length
        self._spec = spec

    def __len__(self) -> int:
        return len(self.targets)

    def __getitem__(self, index):
        if isinstance(index, slice):
            # Arbitrary Sequence backings (TargetList included) may hand
            # back their own container type; the slice contract says list.
            selected = self.targets[index]
            return selected if isinstance(selected, list) else list(selected)
        return self.targets[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self.targets)

    def spec(self) -> StreamSpec | None:
        return self._spec


class LazyStream(TargetStream):
    """Generator-backed stream: realises its targets on first access.

    Wraps the five input-set generators without changing their output:
    ``factory()`` is called once, on first length/index access, and the
    values are buffered so repeated scans see the same targets.

    ``after`` chains streams whose factories share one RNG (the survey's
    /48, /64 and route6 sets draw from a single ``random.Random``):
    realising a stream first ensures every predecessor has consumed its
    draws, so the realisation *order* — and therefore every sampled
    target — is identical to the eager build, no matter which stream is
    touched first.

    ``release()`` drops the buffer once a scan is done with it; the
    survey uses this to scan the five Table 2 sets without ever
    co-residing them.  A released stream cannot be re-realised (its RNG
    draws are spent), so further access raises :class:`RuntimeError`.
    """

    __slots__ = (
        "name",
        "subnet_length",
        "_factory",
        "_targets",
        "_consumed",
        "_released",
        "_after",
        "_spec",
    )

    def __init__(
        self,
        factory: Callable[[], Iterable[int]],
        *,
        name: str = "targets",
        subnet_length: int | None = None,
        after: "LazyStream | None" = None,
        spec: StreamSpec | None = None,
    ) -> None:
        self.name = name
        self.subnet_length = subnet_length
        self._factory = factory
        self._targets: list[int] | None = None
        self._consumed = False
        self._released = False
        self._after = after
        self._spec = spec

    # -- realisation machinery -- #

    def _ensure_consumed(self) -> None:
        """Run the factory (consuming its RNG draws) if it never ran."""
        if not self._consumed:
            self._realise()

    def _realise(self) -> list[int]:
        if self._released:
            raise RuntimeError(
                f"stream {self.name!r} was released; its targets are gone"
            )
        if self._targets is None:
            if self._after is not None:
                self._after._ensure_consumed()
            self._targets = list(self._factory())
            self._consumed = True
        return self._targets

    @property
    def realised(self) -> bool:
        return self._targets is not None

    def release(self) -> None:
        """Drop the realised buffer (constant-memory campaigns call this
        after scanning).  Safe to call on an unrealised stream."""
        self._targets = None
        self._released = True

    # -- sequence protocol -- #

    def __len__(self) -> int:
        return len(self._realise())

    def __getitem__(self, index):
        # The realised buffer is a plain list, so integer indices, negative
        # indices and slices all follow the uniform TargetStream contract.
        return self._realise()[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._realise())

    @property
    def buffered(self) -> int:
        return len(self._targets) if self._targets is not None else 0

    def spec(self) -> StreamSpec | None:
        return self._spec


class SubnetPartitionStream(TargetStream):
    """The SRA addresses of a prefix's ``/length`` partition, computed.

    ``stream[i]`` is pure arithmetic — O(1) memory at any target count,
    which is what lets a 10⁶-target scan run with flat RSS.  This is the
    streaming twin of :meth:`repro.addr.ipv6.IPv6Prefix.subnets`.
    """

    __slots__ = ("name", "subnet_length", "prefix", "_step", "_count")

    def __init__(
        self,
        prefix: IPv6Prefix,
        subnet_length: int,
        *,
        name: str | None = None,
    ) -> None:
        if subnet_length < prefix.length or subnet_length > ADDRESS_BITS:
            raise ValueError(
                f"cannot partition /{prefix.length} into /{subnet_length}"
            )
        self.prefix = prefix
        self.subnet_length = subnet_length
        self.name = name or f"{prefix}@{subnet_length}"
        self._step = 1 << (ADDRESS_BITS - subnet_length)
        self._count = 1 << (subnet_length - prefix.length)

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._slice(index)
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        return self.prefix.network + index * self._step

    def __iter__(self) -> Iterator[int]:
        return iter(
            range(
                self.prefix.network,
                self.prefix.network + self._count * self._step,
                self._step,
            )
        )

    @property
    def buffered(self) -> int:
        return 0

    def spec(self) -> StreamSpec | None:
        return make_spec(
            "subnet-partition",
            __name__,
            network=self.prefix.network,
            prefix_length=self.prefix.length,
            subnet_length=self.subnet_length,
            name=self.name,
        )


def _build_subnet_partition(world, **kwargs) -> SubnetPartitionStream:
    return SubnetPartitionStream(
        IPv6Prefix(kwargs["network"], kwargs["prefix_length"]),
        kwargs["subnet_length"],
        name=kwargs.get("name"),
    )


register_stream_builder("subnet-partition", _build_subnet_partition)


class PermutedStream(TargetStream):
    """A lazy view of another stream in zmap's cyclic-permutation order.

    Iteration walks the multiplicative group with O(1) state.  Indexing
    seeks the permutation (O(1) when the group prime is ``size + 1``,
    amortised-sequential otherwise — see
    :meth:`repro.addr.permutation.CyclicPermutation.__getitem__`).
    """

    __slots__ = ("name", "subnet_length", "source", "permutation")

    def __init__(self, source: TargetStream | Sequence[int], seed: int) -> None:
        self.source = source
        size = len(source)
        if size == 0:
            raise ValueError("cannot permute an empty stream")
        self.permutation = CyclicPermutation(size, seed=seed)
        self.name = f"{getattr(source, 'name', 'targets')}~perm"
        self.subnet_length = getattr(source, "subnet_length", None)

    def __len__(self) -> int:
        return len(self.source)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._slice(index)
        return self.source[self.permutation[index]]

    def __iter__(self) -> Iterator[int]:
        source = self.source
        return (source[index] for index in self.permutation)

    @property
    def buffered(self) -> int:
        return stream_buffered(self.source)


def as_stream(
    targets,
    *,
    name: str | None = None,
    subnet_length: int | None = None,
) -> TargetStream:
    """Coerce lists, TargetLists, iterables, or streams to a stream."""
    if isinstance(targets, TargetStream):
        return targets
    inferred_name = name or getattr(targets, "name", None) or "targets"
    inferred_length = (
        subnet_length
        if subnet_length is not None
        else getattr(targets, "subnet_length", None)
    )
    if not isinstance(targets, Sequence):
        targets = list(targets)
    return ListStream(
        targets, name=inferred_name, subnet_length=inferred_length
    )


def stream_buffered(targets) -> int:
    """How many target values ``targets`` holds in memory right now."""
    if isinstance(targets, TargetStream):
        return targets.buffered
    try:
        return len(targets)
    except TypeError:
        return 0


# --------------------------------------------------------------------- #
# record sinks
# --------------------------------------------------------------------- #


class RecordSink:
    """Where matched reply records go, in probe order.

    ``emit`` is the hot-path call; ``close`` flushes and releases any
    underlying file handle.  Sinks count what they emit so callers can
    report totals without buffering records.  Sinks are context
    managers: ``with JsonlSink(path) as sink: scanner.scan(..., sink=sink)``.

    Crash safety: file-backed sinks stage their output at
    ``<dest>.partial`` and promote it to the final name only on a clean
    ``close()`` — the final path never holds a torn file.  ``abort()``
    (called by ``__exit__`` when the scan raised) releases the handle but
    leaves the clearly-labelled partial file behind for post-mortems.
    """

    emitted: int = 0

    def emit(self, record: ScanRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    def drain(self, records: Iterable[ScanRecord]) -> None:
        """Bulk-emit ``records`` in order (the post-merge drain path).

        The default is a tight ``emit`` loop; sinks with a cheaper bulk
        path (buffered writers, columnar stores) may override.
        """
        emit = self.emit
        for record in records:
            emit(record)

    def close(self) -> None:
        """Flush, release resources, and promote staged output."""

    def abort(self) -> None:
        """Release resources *without* promoting staged output."""
        self.close()

    def byte_offset(self) -> int | None:
        """Bytes flushed so far, for file-backed sinks (else ``None``)."""
        return None

    def __enter__(self) -> "RecordSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class MemorySink(RecordSink):
    """Buffer records in a list — today's ``ScanResult`` behaviour."""

    __slots__ = ("records",)

    def __init__(self, records: list[ScanRecord] | None = None) -> None:
        self.records: list[ScanRecord] = records if records is not None else []

    @property
    def emitted(self) -> int:
        return len(self.records)

    def emit(self, record: ScanRecord) -> None:
        self.records.append(record)


class JsonlSink(RecordSink):
    """Stream records to a JSONL file as they are matched.

    The bytes written are identical to ``ScanResult.write_jsonl`` on the
    buffered records — the streaming mode changes memory use, never
    output (pinned by the determinism tests).  Path destinations stage at
    ``<dest>.partial`` and promote atomically on clean close.
    """

    __slots__ = ("emitted", "_handle", "_owns", "_dest", "_bytes")

    def __init__(self, destination) -> None:
        self.emitted = 0
        self._bytes = 0
        if isinstance(destination, (str, Path)):
            self._dest = Path(destination)
            self._handle = open(
                partial_path(self._dest), "w", encoding="utf-8"
            )
            self._owns = True
        else:
            self._dest = None
            self._handle = destination
            self._owns = False

    def emit(self, record: ScanRecord) -> None:
        line = record_jsonl_line(record)
        self._handle.write(line)
        # Text-mode tell() returns opaque cookies; count encoded bytes
        # ourselves so checkpoints can journal a real file offset.
        self._bytes += len(line.encode("utf-8"))
        self.emitted += 1

    def byte_offset(self) -> int:
        return self._bytes

    def close(self) -> None:
        if self._owns and not self._handle.closed:
            self._handle.close()
            replace_partial(self._dest)

    def abort(self) -> None:
        if self._owns and not self._handle.closed:
            self._handle.close()


class CsvSink(RecordSink):
    """Stream records to CSV, byte-identical to ``ScanResult.write_csv``.

    Path destinations stage at ``<dest>.partial`` and promote atomically
    on clean close, like :class:`JsonlSink`.
    """

    __slots__ = ("emitted", "_handle", "_writer", "_owns", "_dest", "_counter")

    HEADER = ("target", "source", "icmp_type", "code", "count", "time")

    def __init__(self, destination) -> None:
        import csv

        self.emitted = 0
        if isinstance(destination, (str, Path)):
            self._dest = Path(destination)
            self._handle = open(
                partial_path(self._dest), "w", encoding="utf-8", newline=""
            )
            self._owns = True
        else:
            self._dest = None
            self._handle = destination
            self._owns = False
        self._counter = _ByteCountingWriter(self._handle)
        self._writer = csv.writer(self._counter)
        self._writer.writerow(self.HEADER)

    def emit(self, record: ScanRecord) -> None:
        self._writer.writerow(record_csv_row(record))
        self.emitted += 1

    def byte_offset(self) -> int:
        return self._counter.bytes_written

    def close(self) -> None:
        if self._owns and not self._handle.closed:
            self._handle.close()
            replace_partial(self._dest)

    def abort(self) -> None:
        if self._owns and not self._handle.closed:
            self._handle.close()


class _ByteCountingWriter:
    """A write() adapter that counts encoded bytes as they pass through
    (``csv.writer`` only needs ``write``)."""

    __slots__ = ("_handle", "bytes_written")

    def __init__(self, handle) -> None:
        self._handle = handle
        self.bytes_written = 0

    def write(self, text: str):
        self.bytes_written += len(text.encode("utf-8"))
        return self._handle.write(text)


class CountingSink(RecordSink):
    """Keep scan aggregates without storing a single record.

    Tracks the counters Table 2 needs — records, echo/error split, flood
    packets, distinct responsive targets and reply sources — in O(sources)
    memory (sets of distinct addresses, never records).
    """

    __slots__ = (
        "emitted",
        "echo",
        "errors",
        "flood_packets",
        "responsive_targets",
        "sources",
        "echo_sources",
        "error_sources",
    )

    def __init__(self) -> None:
        self.emitted = 0
        self.echo = 0
        self.errors = 0
        self.flood_packets = 0
        self.responsive_targets: set[int] = set()
        self.sources: set[int] = set()
        self.echo_sources: set[int] = set()
        self.error_sources: set[int] = set()

    def emit(self, record: ScanRecord) -> None:
        self.emitted += 1
        self.flood_packets += record.count - 1
        self.responsive_targets.add(record.target)
        self.sources.add(record.source)
        if record.icmp_type < 128:
            self.errors += 1
            self.error_sources.add(record.source)
        else:
            self.echo += 1
            self.echo_sources.add(record.source)

    def classify_sources(self) -> dict[str, set[int]]:
        """Echo-only / error-only / both partition (Fig. 4), like
        :meth:`ScanResult.classify_sources`."""
        return {
            "echo": self.echo_sources - self.error_sources,
            "error": self.error_sources - self.echo_sources,
            "both": self.echo_sources & self.error_sources,
        }


@dataclass(slots=True)
class TeeSink(RecordSink):
    """Fan one record stream out to several sinks."""

    sinks: tuple[RecordSink, ...] = field(default_factory=tuple)
    emitted: int = 0

    def emit(self, record: ScanRecord) -> None:
        for sink in self.sinks:
            sink.emit(record)
        self.emitted += 1

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def abort(self) -> None:
        for sink in self.sinks:
            sink.abort()

    def byte_offset(self) -> int | None:
        offsets = [sink.byte_offset() for sink in self.sinks]
        known = [offset for offset in offsets if offset is not None]
        return sum(known) if known else None


__all__.append("TeeSink")
