"""Scan result records and aggregation.

A :class:`ScanRecord` is one received reply row — what the paper's pipeline
gets out of ZMapv6 after matching replies back to probes.  A
:class:`ScanResult` aggregates a whole scan: counters, per-source views,
and the echo/error/both classification of router IPs (Fig. 4).
"""

from __future__ import annotations

import csv
import io
import json
from array import array
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from ..addr.ipv6 import format_address
from ..atomicio import atomic_write_text
from ..packet.icmpv6 import ICMPv6Type

if TYPE_CHECKING:  # avoid a hard scanner -> netsim import at module load
    from ..netsim.engine import EngineStats


@dataclass(slots=True)
class ScanRecord:
    """One reply: which probe triggered it and what came back.

    Immutable by convention; not ``frozen=True`` because scans create one
    per matched reply and the frozen ``__init__``'s per-field
    ``object.__setattr__`` detour costs ~3x on construction.
    """

    target: int
    source: int
    icmp_type: int
    code: int
    count: int = 1
    time: float = 0.0

    @property
    def is_echo(self) -> bool:
        return self.icmp_type == ICMPv6Type.ECHO_REPLY

    @property
    def is_error(self) -> bool:
        return self.icmp_type < 128

    @property
    def is_time_exceeded(self) -> bool:
        return self.icmp_type == ICMPv6Type.TIME_EXCEEDED


def record_jsonl_line(record: ScanRecord) -> str:
    """One record as its canonical JSONL line (with trailing newline).

    The single source of truth for the JSONL record format: both the
    post-scan ``ScanResult.write_jsonl`` and the streaming
    :class:`~repro.scanner.stream.JsonlSink` emit exactly these bytes.
    """
    return (
        json.dumps(
            {
                "target": format_address(record.target),
                "source": format_address(record.source),
                "icmp_type": record.icmp_type,
                "code": record.code,
                "count": record.count,
                "time": record.time,
            }
        )
        + "\n"
    )


@dataclass(slots=True)
class RecordColumns:
    """A list of :class:`ScanRecord` rows as packed parallel columns.

    Addresses are int-pair (hi, lo) ``array('Q')`` columns; the small
    fields are machine-width arrays.  This is the wire layout of the
    shared-memory shard transport (:mod:`repro.scanner.shmring`): every
    column exposes a flat buffer, so a shard can hand its records to the
    merge process without pickling a single Python object per row.

    ``from_records`` / ``to_records`` round-trip exactly — field for
    field, including ``count`` and the full float ``time``.
    """

    target_hi: array
    target_lo: array
    source_hi: array
    source_lo: array
    icmp_type: array  # 'B'
    code: array  # 'B'
    count: array  # 'Q'
    time: array  # 'd'

    def __len__(self) -> int:
        return len(self.icmp_type)

    @classmethod
    def empty(cls, n: int = 0) -> "RecordColumns":
        return cls(
            target_hi=array("Q", bytes(8 * n)),
            target_lo=array("Q", bytes(8 * n)),
            source_hi=array("Q", bytes(8 * n)),
            source_lo=array("Q", bytes(8 * n)),
            icmp_type=array("B", bytes(n)),
            code=array("B", bytes(n)),
            count=array("Q", bytes(8 * n)),
            time=array("d", bytes(8 * n)),
        )

    @classmethod
    def from_records(cls, records: "Iterable[ScanRecord]") -> "RecordColumns":
        rows = records if isinstance(records, list) else list(records)
        cols = cls.empty(len(rows))
        target_hi = cols.target_hi
        target_lo = cols.target_lo
        source_hi = cols.source_hi
        source_lo = cols.source_lo
        icmp_type = cols.icmp_type
        code = cols.code
        count = cols.count
        time = cols.time
        mask = (1 << 64) - 1
        for i, record in enumerate(rows):
            target_hi[i] = record.target >> 64
            target_lo[i] = record.target & mask
            source_hi[i] = record.source >> 64
            source_lo[i] = record.source & mask
            icmp_type[i] = record.icmp_type
            code[i] = record.code
            count[i] = record.count
            time[i] = record.time
        return cols

    def to_records(self) -> list[ScanRecord]:
        target_hi = self.target_hi
        target_lo = self.target_lo
        source_hi = self.source_hi
        source_lo = self.source_lo
        icmp_type = self.icmp_type
        code = self.code
        count = self.count
        time = self.time
        return [
            ScanRecord(
                target=(target_hi[i] << 64) | target_lo[i],
                source=(source_hi[i] << 64) | source_lo[i],
                icmp_type=icmp_type[i],
                code=code[i],
                count=count[i],
                time=time[i],
            )
            for i in range(len(icmp_type))
        ]


def record_csv_row(record: ScanRecord) -> list:
    """One record as its CSV row (shared with the streaming CSV sink)."""
    return [
        format_address(record.target),
        format_address(record.source),
        record.icmp_type,
        record.code,
        record.count,
        f"{record.time:.6f}",
    ]


@dataclass(slots=True)
class ScanResult:
    """All records of one scan plus send-side counters.

    A scan run with a streaming :class:`~repro.scanner.stream.RecordSink`
    does not buffer its records here; ``records_streamed`` counts the
    rows handed to the sink so the aggregate counters stay truthful.
    Record-derived views (:meth:`sources`, :meth:`classify_sources`, ...)
    are only meaningful for buffered scans — streaming consumers get the
    same aggregates from a :class:`~repro.scanner.stream.CountingSink`.
    """

    name: str
    epoch: int = 0
    sent: int = 0
    lost: int = 0
    records: list[ScanRecord] = field(default_factory=list)
    loops_observed: int = 0
    duration: float = 0.0
    # Snapshot of the driving engine's counters (suppressed errors, loop
    # hits, ...) so observability survives merging and parallel execution.
    engine_stats: "EngineStats | None" = None
    # Records emitted to an external RecordSink instead of `records`.
    records_streamed: int = 0
    # Inbound replies the backend could not match to an outstanding probe
    # (failed payload auth, unknown probe id).  Always 0 on the pure
    # simulator; the wire backends make this loss visible.
    unmatched_replies: int = 0
    # Probes quarantined by the resilience layer (ResilientBackend):
    # counted in `sent` and present as quiet no-reply rows, but their
    # silence is a transport fault, not a measurement — this counter is
    # what makes the partial result honest.
    faulted_probes: int = 0

    # ---------------- aggregate counters ---------------- #

    @property
    def received(self) -> int:
        """Matched replies (one per probe/source pair).

        Amplified duplicates are *not* counted here: scan tools dedup
        matched replies, and the paper notes that loop-amplified floods
        are "only visible in raw packet captures" (§7) — that raw volume
        is :attr:`flood_packets`.
        """
        return len(self.records) + self.records_streamed

    @property
    def flood_packets(self) -> int:
        """Unsolicited duplicate packets from loop amplification."""
        return sum(record.count - 1 for record in self.records)

    @property
    def responsive_targets(self) -> int:
        """Distinct probed targets that yielded at least one reply."""
        return len({record.target for record in self.records})

    @property
    def reply_rate(self) -> float:
        """Fraction of probed targets that got any reply."""
        return self.responsive_targets / self.sent if self.sent else 0.0

    # ---------------- source views ---------------- #

    def sources(self) -> set[int]:
        """All distinct reply source addresses."""
        return {record.source for record in self.records}

    def echo_sources(self) -> set[int]:
        return {record.source for record in self.records if record.is_echo}

    def error_sources(self) -> set[int]:
        return {record.source for record in self.records if record.is_error}

    def classify_sources(self) -> dict[str, set[int]]:
        """Partition sources into echo-only / error-only / both (Fig. 4)."""
        echo = self.echo_sources()
        error = self.error_sources()
        return {
            "echo": echo - error,
            "error": error - echo,
            "both": echo & error,
        }

    def echo_targets(self) -> set[int]:
        """Probed targets answered with an Echo reply (responsive SRAs)."""
        return {record.target for record in self.records if record.is_echo}

    def target_to_source(self) -> dict[int, int]:
        """Map each target to its (first) echo-reply source — the SRA→router
        binding used by the stability analysis (Fig. 6b)."""
        mapping: dict[int, int] = {}
        for record in self.records:
            if record.is_echo and record.target not in mapping:
                mapping[record.target] = record.source
        return mapping

    def amplified_records(self, threshold: int = 2) -> list[ScanRecord]:
        """Records whose reply count meets the amplification threshold."""
        return [record for record in self.records if record.count >= threshold]

    # ---------------- persistence ---------------- #

    def write_csv(self, path: str | Path) -> None:
        # Built in memory and written atomically (temp + rename + fsync):
        # a crash mid-write must never leave a torn CSV at the final path.
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(
            ["target", "source", "icmp_type", "code", "count", "time"]
        )
        for record in self.records:
            writer.writerow(record_csv_row(record))
        atomic_write_text(Path(path), out.getvalue())

    def write_jsonl(self, path: str | Path) -> None:
        text = "".join(record_jsonl_line(record) for record in self.records)
        atomic_write_text(Path(path), text)


def merge_results(name: str, results: Iterable[ScanResult]) -> ScanResult:
    """Concatenate several scans (e.g. shards) into one result.

    Shards of one scan run *concurrently* over the same virtual clock, so
    the merged wall-clock duration is the maximum, not the sum.  The epoch
    is carried over from the inputs (they are expected to agree; the first
    result wins when they do not).
    """
    merged = ScanResult(name=name)
    stats_seen: list[EngineStats] = []
    first = True
    for result in results:
        if first:
            merged.epoch = result.epoch
            first = False
        merged.sent += result.sent
        merged.lost += result.lost
        merged.loops_observed += result.loops_observed
        merged.records_streamed += result.records_streamed
        merged.unmatched_replies += result.unmatched_replies
        merged.faulted_probes += result.faulted_probes
        merged.duration = max(merged.duration, result.duration)
        merged.records.extend(result.records)
        if result.engine_stats is not None:
            stats_seen.append(result.engine_stats)
    if stats_seen:
        merged.engine_stats = merge_engine_stats(stats_seen)
    return merged


def merge_engine_stats(stats_list: "Iterable[EngineStats]") -> "EngineStats":
    """Sum per-shard engine counters field by field.

    An empty input yields all-zero stats (the merge of zero shards), and
    the inputs themselves are never mutated.
    """
    iterator = iter(stats_list)
    first = next(iterator, None)
    if first is None:
        from ..netsim.engine import EngineStats as _EngineStats

        return _EngineStats()
    total = type(first)()
    for stats in (first, *iterator):
        for spec in fields(stats):
            setattr(total, spec.name, getattr(total, spec.name) + getattr(stats, spec.name))
    return total


def iter_router_ips(results: Iterable[ScanResult]) -> Iterator[int]:
    """Distinct reply sources across many scans, in first-seen order."""
    seen: set[int] = set()
    for result in results:
        for record in result.records:
            if record.source not in seen:
                seen.add(record.source)
                yield record.source
